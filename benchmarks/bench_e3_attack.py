"""E3 — Lemmas 2–5 / Figure 2: break every sub-quadratic cheater.

The benchmark kernel is the full attack pipeline; each outcome carries a
from-scratch-verified violation witness.
"""

import os

import pytest
from conftest import write_json_report, write_report

from repro.experiments import CHEATERS, run_e3
from repro.lowerbound.driver import attack_weak_consensus
from repro.parallel import AttackJob, SweepScheduler
from repro.protocols.subquadratic import (
    committee_cheater_spec,
    leader_echo_spec,
    ring_token_spec,
    silent_cheater_spec,
)


def bench_e3_full_sweep(benchmark, report_dir):
    result = benchmark(run_e3, (8, 16))
    assert result.data["broken"] == len(result.data["outcomes"])
    write_report(report_dir, "e3_attack_sweep", result.report)


@pytest.mark.parametrize(
    "builder",
    [
        silent_cheater_spec,
        leader_echo_spec,
        committee_cheater_spec,
        ring_token_spec,
    ],
    ids=["silent", "leader-echo", "committee", "ring-token"],
)
def bench_e3_single_attack(benchmark, builder):
    """Per-cheater attack latency at the paper's t = 8 regime."""
    spec = builder(16, 8)
    outcome = benchmark(attack_weak_consensus, spec)
    assert outcome.found_violation


def _scaling_matrix(ts=(8, 16)):
    """The E3 cheater matrix as scheduler jobs (name-keyed, picklable)."""
    return [
        AttackJob(builder=name, n=t + 4, t=t)
        for name in CHEATERS
        for t in ts
    ]


def bench_e3_parallel_scaling(report_dir):
    """Sweep wall time vs worker count on the E3 cheater matrix.

    Not a pytest-benchmark kernel: one timed sweep per worker count is
    the measurement itself (SweepReport already records wall time and
    per-cell timings).  Asserts cross-backend bit-identity, then writes
    the scaling curve as JSON for EXPERIMENTS.md.
    """
    matrix = _scaling_matrix()
    runs = {}
    serial_values = None
    for jobs in (1, 2, 4, 8):
        report = SweepScheduler(jobs=jobs).run(matrix)
        report.raise_errors()
        if serial_values is None:
            serial_values = report.values()
        else:
            # The fan-out must not change a single verdict or witness.
            assert report.values() == serial_values
        runs[jobs] = report
    baseline = runs[1].wall_seconds
    payload = {
        "matrix": [list(job.key) for job in matrix],
        "cpu_count": os.cpu_count(),
        "baseline_wall_seconds": baseline,
        "runs": {
            str(jobs): {
                **report.to_payload(),
                "speedup_vs_serial": (
                    baseline / report.wall_seconds
                    if report.wall_seconds
                    else 0.0
                ),
            }
            for jobs, report in runs.items()
        },
    }
    write_json_report(report_dir, "e3_parallel_scaling", payload)


# ----------------------------------------------------------------------
# benchmark-observatory registration (`repro bench run`)
# ----------------------------------------------------------------------

from repro.obs.bench import register as _register


def _observatory_e3_sweep(ts):
    result = run_e3(ts)
    assert result.data["broken"] == len(result.data["outcomes"])
    return result


def _observatory_e3_ring_token_attack():
    outcome = attack_weak_consensus(ring_token_spec(12, 8))
    assert outcome.found_violation
    return outcome


_register("e3", "cheater_matrix_t8",
          lambda: _observatory_e3_sweep((8,)), quick=True)
_register("e3", "cheater_matrix_t8_t16",
          lambda: _observatory_e3_sweep((8, 16)))
_register("e3", "ring_token_attack_n12_t8",
          _observatory_e3_ring_token_attack, quick=True)
