"""E3 — Lemmas 2–5 / Figure 2: break every sub-quadratic cheater.

The benchmark kernel is the full attack pipeline; each outcome carries a
from-scratch-verified violation witness.
"""

import pytest
from conftest import write_report

from repro.experiments import run_e3
from repro.lowerbound.driver import attack_weak_consensus
from repro.protocols.subquadratic import (
    committee_cheater_spec,
    leader_echo_spec,
    ring_token_spec,
    silent_cheater_spec,
)


def bench_e3_full_sweep(benchmark, report_dir):
    result = benchmark(run_e3, (8, 16))
    assert result.data["broken"] == len(result.data["outcomes"])
    write_report(report_dir, "e3_attack_sweep", result.report)


@pytest.mark.parametrize(
    "builder",
    [
        silent_cheater_spec,
        leader_echo_spec,
        committee_cheater_spec,
        ring_token_spec,
    ],
    ids=["silent", "leader-echo", "committee", "ring-token"],
)
def bench_e3_single_attack(benchmark, builder):
    """Per-cheater attack latency at the paper's t = 8 regime."""
    spec = builder(16, 8)
    outcome = benchmark(attack_weak_consensus, spec)
    assert outcome.found_violation
