"""E1 — Theorem 2: correct weak consensus vs the t²/32 floor.

Regenerates the message-complexity-vs-t series for the correct
(broadcast-based) weak consensus protocol and asserts the paper's shape:
every point sits at or above the floor, and the growth is (at least)
quadratic on the proportional-population grid.
"""

from conftest import write_report

from repro.analysis.complexity import sweep
from repro.analysis.fitting import fit_sweep, is_superquadratic
from repro.analysis.tables import render_sweep
from repro.experiments import run_e1
from repro.protocols.weak_consensus import broadcast_weak_consensus_spec


def bench_e1_floor_series(benchmark, report_dir):
    result = benchmark(run_e1, 16)
    assert result.data["floor_violations"] == []
    write_report(report_dir, "e1_weak_consensus_floor", result.report)


def bench_e1_quadratic_shape_proportional_grid(benchmark, report_dir):
    """On n = 2t the fitted exponent must reach ~2 (Ω(t²) visible)."""

    def kernel():
        return sweep(
            lambda n, t: broadcast_weak_consensus_spec(n, t),
            [(2 * t, t) for t in (4, 8, 12, 16)],
            include_mixed=False,
        )

    points = benchmark(kernel)
    fit = fit_sweep(points)
    assert is_superquadratic(fit)
    write_report(
        report_dir,
        "e1_quadratic_shape",
        render_sweep(points) + f"\nfit: {fit.render()}",
    )


# ----------------------------------------------------------------------
# benchmark-observatory registration (`repro bench run`)
# ----------------------------------------------------------------------

from repro.obs.bench import register as _register


def _observatory_e1_floor_series(max_t):
    result = run_e1(max_t)
    assert result.data["floor_violations"] == []
    return result


_register(
    "e1", "floor_series_t8",
    lambda: _observatory_e1_floor_series(8), quick=True,
)
_register(
    "e1", "floor_series_t16",
    lambda: _observatory_e1_floor_series(16),
)
