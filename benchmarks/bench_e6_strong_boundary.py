"""E6 — Theorem 5: the n > 2t boundary for strong consensus."""

from conftest import write_report

from repro.experiments import run_e6
from repro.solvability.strong_consensus import strong_consensus_cc


def bench_e6_boundary_grid(benchmark, report_dir):
    result = benchmark(run_e6, 7)
    assert result.data["mismatches"] == []
    write_report(report_dir, "e6_strong_boundary", result.report)


def bench_e6_single_cc_decision(benchmark):
    """CC decision cost at the largest grid point (n=7, t=3)."""
    holds = benchmark(strong_consensus_cc, 7, 3)
    assert holds  # 7 > 6


# ----------------------------------------------------------------------
# benchmark-observatory registration (`repro bench run`)
# ----------------------------------------------------------------------

from repro.obs.bench import register as _register


def _observatory_e6_boundary():
    result = run_e6(7)
    assert result.data["mismatches"] == []
    return result


_register("e6", "boundary_grid_n7", _observatory_e6_boundary,
          quick=True)
