"""E2 — Figure 1: divergence bands under group isolation."""

from conftest import write_report

from repro.experiments import run_e2


def bench_e2_divergence_profile(benchmark, report_dir):
    result = benchmark(run_e2)
    isolate_at = result.data["isolate_at"]
    # Figure 1's bands: the isolated group's sends deviate from R+1 at
    # the earliest; everyone else one propagation step later.
    assert result.data["in_group_divergence"] >= isolate_at + 1
    assert result.data["outside_divergence"] >= isolate_at + 2
    write_report(report_dir, "e2_isolation_bands", result.report)


# ----------------------------------------------------------------------
# benchmark-observatory registration (`repro bench run`)
# ----------------------------------------------------------------------

from repro.obs.bench import register as _register


def _observatory_e2_divergence():
    result = run_e2()
    isolate_at = result.data["isolate_at"]
    assert result.data["in_group_divergence"] >= isolate_at + 1
    return result


_register("e2", "divergence_profile", _observatory_e2_divergence,
          quick=True)
