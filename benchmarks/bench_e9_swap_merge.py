"""E9/E10 — Lemmas 15 & 16: swap/merge construction throughput.

Benchmarks the two proof constructions with their full machine-checking
enabled — the cost shown here is the cost of *verifying the paper* on
each instance, not just of transforming traces.
"""

from conftest import write_report

from repro.experiments import run_e9
from repro.lowerbound.partition import canonical_partition
from repro.omission.isolation import isolate_group
from repro.omission.merge import MergeSpec, merge
from repro.omission.swap import swap_omission_checked
from repro.protocols.subquadratic import leader_echo_spec
from repro.protocols.weak_consensus import broadcast_weak_consensus_spec


def bench_e9_suite(benchmark, report_dir):
    result = benchmark(run_e9, 10, 4, 4)
    assert result.data["swap_checks"] > 0
    assert result.data["merge_checks"] > 0
    write_report(report_dir, "e9_swap_merge", result.report)


def bench_e9_single_checked_swap(benchmark):
    spec = leader_echo_spec(12, 6)
    execution = spec.run_uniform(0, isolate_group({11}, 1))
    result = benchmark(swap_omission_checked, execution, 11)
    assert 11 not in result.execution.faulty


def bench_e10_single_checked_merge(benchmark):
    n, t = 10, 4
    spec = broadcast_weak_consensus_spec(n, t)
    partition = canonical_partition(n, t)
    exec_b = spec.run_uniform(
        0, isolate_group(partition.group_b, 2)
    )
    exec_c = spec.run_uniform(
        0, isolate_group(partition.group_c, 3)
    )
    merge_spec = MergeSpec(
        group_b=partition.group_b,
        group_c=partition.group_c,
        round_b=2,
        round_c=3,
    )

    def kernel():
        return merge(merge_spec, exec_b, exec_c, spec.factory)

    merged = benchmark(kernel)
    assert merged.faulty == partition.group_b | partition.group_c


# ----------------------------------------------------------------------
# benchmark-observatory registration (`repro bench run`)
# ----------------------------------------------------------------------

from repro.obs.bench import register as _register


def _observatory_e9_suite(samples):
    result = run_e9(10, 4, samples)
    assert result.data["swap_checks"] > 0
    assert result.data["merge_checks"] > 0
    return result


_register("e9", "swap_merge_samples2",
          lambda: _observatory_e9_suite(2), quick=True)
_register("e9", "swap_merge_samples4",
          lambda: _observatory_e9_suite(4))
