"""Telemetry benchmarks: sampling overhead and export throughput.

The observability issue's performance bar is two-sided: telemetry must
be *free when off* and *cheap when on* (≤5% at the default interval).
The kernels here measure every piece of that budget in isolation — the
off-interval ``maybe_sample`` fast path (one clock read, one compare),
the full snapshot fold, the write-through sampled append, the two
export adapters and the incremental tail reader — each over synthetic
inputs large enough to dominate fixed costs.  Every kernel asserts its
shape claim, so a timing run doubles as a correctness run; the quick
tier feeds the committed ``benchmarks/baselines/BENCH_telemetry.json``
baseline and the CI ``telemetry-equivalence`` job.
"""

import atexit
import os
import shutil
import tempfile

from repro.obs.bench import benchmark_kernel
from repro.obs.export import chrome_trace, render_prometheus, registry_from_events
from repro.obs.ledger import LedgerEvent
from repro.obs.metrics import MetricsRegistry
from repro.obs.progress import SweepProgress
from repro.obs.telemetry import TelemetryBus
from repro.worldlog.store import LogTailer, WorldLog, read_worldlog

ROUNDS = 512
SNAPSHOTS = 64
TAIL_RECORDS = 2048

_SCRATCH = tempfile.mkdtemp(prefix="bench-telemetry")
atexit.register(shutil.rmtree, _SCRATCH, ignore_errors=True)


class _Event:
    """The one method the round tap reads off an engine round event."""

    @staticmethod
    def sent_by_correct():
        return 6


def _registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("engine.round").add(ROUNDS)
    registry.counter("cache.hits").add(300)
    registry.counter("cache.alias_hits").add(50)
    registry.counter("cache.misses").add(150)
    registry.gauge("bound.vs_floor").set(1.5)
    for index in range(64):
        registry.histogram("engine.round_seconds").record(
            0.001 * (index % 7 + 1)
        )
    return registry


def _synthetic_events() -> list[LedgerEvent]:
    """A span-and-counter stream shaped like a recorded attack run."""
    events: list[LedgerEvent] = []

    def emit(kind, name, ts, value=None, cell=None):
        events.append(
            LedgerEvent(
                kind=kind,
                name=name,
                ts=ts,
                value=value,
                run_id="bench",
                cell_id=cell,
                worker_id=1,
            )
        )

    clock = 0.0
    for index in range(96):
        cell = f"cell/{index:03d}"
        emit("span-start", "attack", clock, cell=cell)
        for round_index in range(16):
            clock += 0.001
            emit("counter", "engine.round", clock, value=1, cell=cell)
        emit("gauge", "cell.wall_seconds", clock, value=0.016, cell=cell)
        clock += 0.001
        emit("span-end", "attack", clock, cell=cell)
    return events


_EVENTS = _synthetic_events()


def _loaded_bus(log: WorldLog, clock=None) -> TelemetryBus:
    """A bus with every section attached — the worst-case fold."""
    kwargs = {} if clock is None else {"clock": clock}
    bus = TelemetryBus(
        log, interval=1.0, source="bench", metrics=_registry(), **kwargs
    )
    progress = SweepProgress(96, label="bench")
    progress.start("cell/000")
    bus.attach_progress(progress)
    tap = bus.round_tap(floor=8.0)
    tap.on_run_start(None, None, None)
    tap.rounds_seen = ROUNDS  # pre-counted rounds, no per-round pump
    tap.cum_messages = ROUNDS * 6
    bus.add_source("service", lambda: {"queued": 3, "busy": 1})
    return bus


@benchmark_kernel("telemetry", "maybe_sample_off_interval", quick=True)
def bench_maybe_sample_off_interval():
    """The per-round fast path: not-due polls must append nothing."""
    path = os.path.join(_SCRATCH, "idle.worldlog")
    with WorldLog.create(path, run_id="bench") as log:
        bus = _loaded_bus(log)
        bus.sample()  # arm the interval clock
        for _ in range(200_000):
            bus.maybe_sample()
        assert bus.samples == 1
    return bus


@benchmark_kernel("telemetry", "snapshot_fold", quick=True)
def bench_snapshot_fold():
    """Folding every attached section into one snapshot payload."""
    path = os.path.join(_SCRATCH, "fold.worldlog")
    with WorldLog.create(path, run_id="bench") as log:
        bus = _loaded_bus(log)
        for _ in range(SNAPSHOTS):
            payload = bus.build_snapshot()
    assert payload["rounds"]["seen"] == ROUNDS
    assert payload["cache_hit_rate"] == 0.7
    assert payload["service"]["queued"] == 3
    return payload


@benchmark_kernel("telemetry", "sampled_append", quick=True)
def bench_sampled_append():
    """Write-through sampled snapshots landing in a real world log."""
    path = os.path.join(_SCRATCH, "append.worldlog")
    with WorldLog.create(path, run_id="bench") as log:
        bus = _loaded_bus(log)
        for _ in range(SNAPSHOTS):
            bus.sample()
    records = read_worldlog(path)
    snaps = [r for r in records if r.kind == "telemetry.snapshot"]
    assert len(snaps) == SNAPSHOTS
    return snaps


@benchmark_kernel("telemetry", "prometheus_render", quick=True)
def bench_prometheus_render():
    """Event refold plus exposition text for a full recorded run."""
    registry = registry_from_events(_EVENTS)
    document = render_prometheus(registry.snapshot())
    assert "repro_engine_round_total 1536" in document
    assert "repro_span_attack_seconds_count 96" in document
    return document


@benchmark_kernel("telemetry", "chrome_render", quick=True)
def bench_chrome_render():
    """Chrome trace assembly for the same recorded run."""
    trace = chrome_trace(_EVENTS)
    events = trace["traceEvents"]
    spans = [entry for entry in events if entry["ph"] in ("B", "E")]
    assert len(spans) == 2 * 96
    return trace


@benchmark_kernel("telemetry", "tailer_full_poll", quick=True)
def bench_tailer_full_poll():
    """One cold poll over a multi-thousand-record log."""
    path = os.path.join(_SCRATCH, "tail.worldlog")
    if not os.path.exists(path):
        with WorldLog.create(path, run_id="bench") as log:
            for index in range(TAIL_RECORDS):
                log.append("trend.point", {"i": index})
    records = LogTailer(path).poll()
    assert len(records) == TAIL_RECORDS + 1  # + log.open header
    return records
