"""Ablations on the design choices DESIGN.md calls out.

* A1 — partition sizing: the paper fixes |B| = |C| = t/4; the attack
  works for any disjoint non-empty pair within the budget.  Sweep group
  sizes and confirm every partition still breaks the cheaters.
* A2 — committee size: growing the cheater's committee raises its cost
  but never saves it — the attack succeeds at every size (the only way
  out is Ω(t²), per Theorem 2).
* A3 — signature complexity: the Dolev–Reischuk Ω(nt) *signature* floor
  on the authenticated broadcast substrate (§6).
"""

from conftest import write_report

from repro.analysis.tables import render_table
from repro.lowerbound.driver import attack_weak_consensus
from repro.lowerbound.partition import ABCPartition
from repro.protocols.dolev_strong import dolev_strong_spec
from repro.protocols.subquadratic import (
    committee_cheater_spec,
    leader_echo_spec,
)
from repro.sim.metrics import (
    dolev_reischuk_signature_floor,
    signature_complexity,
)


def bench_a1_partition_sizing(benchmark, report_dir):
    """Every legal (|B|, |C|) split breaks the leader-echo cheater."""
    n, t = 16, 8

    def kernel():
        rows = []
        for size_b, size_c in [(1, 1), (2, 2), (4, 4), (1, 4), (3, 2)]:
            partition = ABCPartition(
                n=n,
                t=t,
                group_b=frozenset(
                    range(n - size_b - size_c, n - size_c)
                ),
                group_c=frozenset(range(n - size_c, n)),
            )
            outcome = attack_weak_consensus(
                leader_echo_spec(n, t), partition
            )
            rows.append(
                (
                    size_b,
                    size_c,
                    "broken" if outcome.found_violation else "SURVIVED",
                )
            )
        return rows

    rows = benchmark(kernel)
    assert all(row[2] == "broken" for row in rows)
    write_report(
        report_dir,
        "a1_partition_sizing",
        "A1 — attack vs partition sizing (leader-echo, n=16, t=8)\n"
        + render_table(("|B|", "|C|", "outcome"), rows),
    )


def bench_a2_committee_size(benchmark, report_dir):
    """No committee size rescues the committee cheater."""
    n, t = 20, 16

    def kernel():
        rows = []
        for size in (1, 2, 4, 8):
            spec = committee_cheater_spec(n, t, committee_size=size)
            messages = spec.run_uniform(0).message_complexity()
            outcome = attack_weak_consensus(spec)
            rows.append(
                (
                    size,
                    messages,
                    "broken" if outcome.found_violation else "SURVIVED",
                )
            )
        return rows

    rows = benchmark(kernel)
    assert all(row[2] == "broken" for row in rows)
    # Cost grows with the committee, uselessly.
    assert rows[-1][1] > rows[0][1]
    write_report(
        report_dir,
        "a2_committee_size",
        "A2 — attack vs committee size (n=20, t=16)\n"
        + render_table(("committee", "messages", "outcome"), rows),
    )


def bench_a4_paper_regime(benchmark, report_dir):
    """The paper's exact partition regime: t divisible by 8, |B|=|C|=t/4.

    Runs the attack at (n = t + 8, t = 16) with
    :func:`repro.lowerbound.partition.paper_partition` against the two
    cheaters with the richest dynamics.
    """
    from repro.lowerbound.partition import paper_partition
    from repro.protocols.subquadratic import ring_token_spec

    n, t = 24, 16

    def kernel():
        rows = []
        for builder in (leader_echo_spec, ring_token_spec):
            spec = builder(n, t)
            outcome = attack_weak_consensus(
                spec, paper_partition(n, t)
            )
            rows.append(
                (
                    spec.name,
                    outcome.bound.observed,
                    f"{outcome.bound.floor:.0f}",
                    "broken" if outcome.found_violation else "SURVIVED",
                )
            )
        return rows

    rows = benchmark(kernel)
    assert all(row[3] == "broken" for row in rows)
    write_report(
        report_dir,
        "a4_paper_regime",
        f"A4 — attack in the paper's t/4 partition regime (n={n}, t={t})\n"
        + render_table(
            ("protocol", "worst msgs", "t^2/32", "outcome"), rows
        ),
    )


def bench_a5_round_complexity(benchmark, report_dir):
    """Dolev–Strong attains the [52] t+1-round bound exactly."""
    from repro.analysis.latency import LatencyReport

    def kernel():
        rows = []
        for t in (2, 4, 8):
            spec = dolev_strong_spec(t + 4, t)
            report = LatencyReport.of(spec.run_uniform("v"))
            rows.append((t + 4, t, report.latest, t + 1))
        return rows

    rows = benchmark(kernel)
    assert all(latest == floor for _, _, latest, floor in rows)
    write_report(
        report_dir,
        "a5_round_complexity",
        "A5 — Dolev–Strong decision rounds vs the t+1 floor [52]\n"
        + render_table(("n", "t", "decided in", "t+1"), rows),
    )


def bench_a3_signature_floor(benchmark, report_dir):
    """Dolev–Strong signature counts against the Ω(nt) floor."""

    def kernel():
        rows = []
        for n, t in [(6, 2), (10, 4), (14, 6), (18, 8)]:
            execution = dolev_strong_spec(n, t).run_uniform("v")
            signatures = signature_complexity(execution)
            floor = dolev_reischuk_signature_floor(n, t)
            rows.append((n, t, signatures, floor, signatures / floor))
        return rows

    rows = benchmark(kernel)
    # Within a small constant of the floor at every point.
    assert all(row[2] >= row[3] / 4 for row in rows)
    write_report(
        report_dir,
        "a3_signature_floor",
        "A3 — Dolev–Strong signatures vs the Ω(nt) floor\n"
        + render_table(
            ("n", "t", "signatures", "n·t", "ratio"),
            [
                (n, t, s, f"{fl:.0f}", f"{ratio:.2f}")
                for n, t, s, fl, ratio in rows
            ],
        ),
    )


# ----------------------------------------------------------------------
# benchmark-observatory registration (`repro bench run`)
# ----------------------------------------------------------------------

from repro.obs.bench import register as _register


def _observatory_a1_partition_sizing():
    n, t = 16, 8
    for size_b, size_c in [(1, 1), (2, 2), (4, 4)]:
        partition = ABCPartition(
            n=n,
            t=t,
            group_b=frozenset(range(n - size_b - size_c, n - size_c)),
            group_c=frozenset(range(n - size_c, n)),
        )
        outcome = attack_weak_consensus(
            leader_echo_spec(n, t), partition
        )
        assert outcome.found_violation


def _observatory_a3_signature_floor():
    execution = dolev_strong_spec(10, 4).run_uniform("v")
    signatures = signature_complexity(execution)
    floor = dolev_reischuk_signature_floor(10, 4)
    assert signatures >= floor / 4


def _observatory_a5_round_complexity():
    from repro.analysis.latency import LatencyReport

    for t in (2, 4):
        spec = dolev_strong_spec(t + 4, t)
        report = LatencyReport.of(spec.run_uniform("v"))
        assert report.latest == t + 1


_register("a1", "partition_sizing_n16_t8",
          _observatory_a1_partition_sizing)
_register("a1", "signature_floor_n10_t4",
          _observatory_a3_signature_floor, quick=True)
_register("a1", "round_complexity_ds",
          _observatory_a5_round_complexity, quick=True)
