"""E4 — Algorithm 1: the zero-message reduction on real protocols."""

from conftest import write_report

from repro.experiments import run_e4
from repro.protocols.strong_consensus import (
    authenticated_strong_consensus_spec,
)
from repro.reductions.weak_from_any import reduce_weak_consensus
from repro.validity.standard import strong_consensus_problem


def bench_e4_reduction_table(benchmark, report_dir):
    result = benchmark(run_e4, 6, 2)
    assert result.data["max_overhead"] == 0
    write_report(report_dir, "e4_reduction", result.report)


def bench_e4_reduced_protocol_run(benchmark):
    """Latency of one reduced weak-consensus execution (inner = strong
    consensus over IC): measures that the combinator layer adds only
    negligible per-round work."""
    inner = authenticated_strong_consensus_spec(6, 2)
    reduced = reduce_weak_consensus(
        inner, strong_consensus_problem(6, 2)
    )

    def kernel():
        return reduced.run_uniform(0)

    execution = benchmark(kernel)
    assert set(execution.correct_decisions().values()) == {0}


# ----------------------------------------------------------------------
# benchmark-observatory registration (`repro bench run`)
# ----------------------------------------------------------------------

from repro.obs.bench import register as _register


def _observatory_e4_reduction():
    result = run_e4(6, 2)
    assert result.data["max_overhead"] == 0
    return result


_register("e4", "reduction_table_n6_t2", _observatory_e4_reduction,
          quick=True)
