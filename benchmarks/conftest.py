"""Benchmark-suite configuration.

Every ``bench_*`` module regenerates one DESIGN.md experiment (the
paper's "tables and figures"): the benchmarked callable *is* the
experiment kernel, and each bench asserts the experiment's shape claim so
a timing run doubles as a correctness run.  Reports are written to
``benchmarks/reports/`` for EXPERIMENTS.md.
"""

from __future__ import annotations

import pathlib

import pytest

REPORT_DIR = pathlib.Path(__file__).parent / "reports"


@pytest.fixture(scope="session")
def report_dir() -> pathlib.Path:
    """Directory collecting the rendered experiment reports."""
    REPORT_DIR.mkdir(exist_ok=True)
    return REPORT_DIR


def write_report(directory: pathlib.Path, name: str, text: str) -> None:
    """Persist one experiment's rendered report."""
    (directory / f"{name}.txt").write_text(text + "\n")


def write_json_report(
    directory: pathlib.Path, name: str, payload: object
) -> None:
    """Persist one machine-readable report (scaling curves etc.)."""
    import json

    (directory / f"{name}.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
