"""E8 — Corollary 1: external-validity agreement under the bound."""

from conftest import write_report

from repro.experiments import run_e8


def bench_e8_corollary1(benchmark, report_dir):
    result = benchmark(run_e8, 6, 2)
    assert result.data["decision_a"] != result.data["decision_b"]
    assert result.data["messages"] >= result.data["floor"]
    assert set(
        result.data["weak_zero"].correct_decisions().values()
    ) == {0}
    assert set(
        result.data["weak_one"].correct_decisions().values()
    ) == {1}
    write_report(report_dir, "e8_external_validity", result.report)


# ----------------------------------------------------------------------
# benchmark-observatory registration (`repro bench run`)
# ----------------------------------------------------------------------

from repro.obs.bench import register as _register


def _observatory_e8_corollary1():
    result = run_e8(6, 2)
    assert result.data["messages"] >= result.data["floor"]
    return result


_register("e8", "corollary1_n6_t2", _observatory_e8_corollary1,
          quick=True)
