"""Time-travel benchmarks: cursor throughput and diff wall time.

The replay cursor's promise is that stepping a past run is cheap enough
to be an everyday debugging tool, and the differ's promise is that
comparing two whole logs is an interactive operation — both measured
here over a synthetic sweep-shaped log (plan, per-cell span/round
events, terminal records, gather splice) large enough to dominate any
fixed cost.  Each kernel asserts its shape claim, so a timing run
doubles as a correctness run; the quick tier feeds the committed
``benchmarks/baselines/BENCH_worldlog_replay.json`` baseline and the CI
``worldlog-replay`` job.
"""

from repro.obs.bench import benchmark_kernel
from repro.worldlog.diffing import diff_logs
from repro.worldlog.record import Record
from repro.worldlog.replay import ReplayCursor, replay_state

CELLS = 48
ROUNDS_PER_CELL = 24


def _synthetic_log(run_id: str, jitter: float) -> list[Record]:
    """A deterministic sweep-shaped log (~2.5k records).

    ``jitter`` perturbs only wall-clock payload fields (timestamps and
    per-round seconds), never semantic content, so two builds with
    different jitter must diff empty — which
    ``bench_diff_timing_only_twins`` asserts while timing the comparison.
    """
    records: list[Record] = []
    tick = 0

    def append(kind, payload, cell_id=None):
        nonlocal tick
        records.append(
            Record(
                tick=tick,
                kind=kind,
                payload=payload,
                run_id=run_id,
                cell_id=cell_id,
                worker_id=1,
            )
        )
        tick += 1

    def event(ts, kind, name, value, cell, attrs):
        return {
            "ts": ts + jitter,
            "kind": kind,
            "name": name,
            "value": value,
            "run_id": run_id,
            "cell_id": cell,
            "worker_id": 1,
            "attrs": attrs,
        }

    append("log.open", {"schema": "repro.worldlog/v1"})
    append(
        "sweep.plan",
        {"jobs": [{"index": index} for index in range(CELLS)]},
    )
    clock = 0.0
    splice: list[tuple[dict, str]] = []
    for index in range(CELLS):
        cell = f"cell/{index:03d}"
        cell_events = [event(clock, "span-start", "attack", None, cell, {})]
        messages = 0
        for round_index in range(ROUNDS_PER_CELL):
            clock += 0.001
            messages += round_index % 5
            cell_events.append(
                event(
                    clock,
                    "counter",
                    "engine.round",
                    round_index % 5,
                    cell,
                    {
                        "round": round_index,
                        "run": 0,
                        "seconds": 0.001 + jitter,
                        "cum_messages": messages,
                        "vs_floor": messages / 32.0,
                    },
                )
            )
        clock += 0.001
        cell_events.append(
            event(clock, "counter", "cache.hits", index % 3, cell, {})
        )
        cell_events.append(
            event(clock, "gauge", "cell.wall_seconds", 0.5 + jitter, cell, {})
        )
        cell_events.append(event(clock, "span-end", "attack", None, cell, {}))
        splice.extend((payload, cell) for payload in cell_events)
        append(
            "cell.result",
            {"index": index, "result": {"wall_seconds": 0.5 + jitter}},
            cell,
        )
    append("gather.start", {})
    for payload, cell in splice:
        append("ledger.event", payload, cell)
    return records


_LOG_A = _synthetic_log("bench-a", jitter=0.0)
_LOG_B = _synthetic_log("bench-b", jitter=0.125)
_EVENTS = sum(1 for r in _LOG_A if r.kind == "ledger.event")


@benchmark_kernel("worldlog_replay", "cursor_forward_throughput", quick=True)
def bench_cursor_forward_throughput():
    """Full forward replay: records/sec is len(log)/measured seconds."""
    cursor = ReplayCursor(_LOG_A)
    while cursor.next() is not None:
        pass
    assert cursor.position == len(_LOG_A)
    state = cursor.state
    assert len(state.completed_cells) == CELLS
    assert len(state.events) == _EVENTS
    assert state.rounds_observed == CELLS * ROUNDS_PER_CELL
    return cursor


@benchmark_kernel("worldlog_replay", "cursor_backward_seeks", quick=True)
def bench_cursor_backward_seeks():
    """Snapshot-assisted backward seeks across the whole log."""
    cursor = ReplayCursor(_LOG_A)
    last_tick = _LOG_A[-1].tick
    cursor.seek(last_tick)
    for tick in range(last_tick, 0, -max(1, last_tick // 64)):
        state = cursor.seek(tick)
        assert state.tick <= tick
    state = cursor.seek(1)
    assert state.position == 2
    assert replay_state(_LOG_A[:2]) == state
    return cursor


@benchmark_kernel("worldlog_replay", "diff_timing_only_twins", quick=True)
def bench_diff_timing_only_twins():
    """Whole-log semantic diff of two timing-jittered twins: empty."""
    report = diff_logs(_LOG_A, _LOG_B)
    assert report.ok, report.render()
    assert report.compared == len(_LOG_A) - 1  # gather marker dropped
    return report
