"""E5 — Theorem 4: the solvability classification + Algorithm-2 runs."""

from conftest import write_report

from repro.experiments import run_e5
from repro.solvability.theorem import classify
from repro.validity.standard import interactive_consistency_problem


def bench_e5_classification_table(benchmark, report_dir):
    result = benchmark(run_e5, 4, 1)
    for row in result.data["rows"]:
        _, trivial, cc, auth, _, solved = row
        if trivial == "N":
            assert cc == "Y" and auth == "Y" and solved == "yes"
    write_report(report_dir, "e5_solvability", result.report)


def bench_e5_classify_ic(benchmark):
    """The heaviest classifier input: IC's output domain is |V|^n."""
    problem = interactive_consistency_problem(4, 1)
    report = benchmark(classify, problem)
    assert report.cc.holds
    assert not report.trivial


def bench_e5_resilience_grid(benchmark, report_dir):
    """Theorem 4 across (n, t): where each branch flips.

    Shows both thresholds at once: strong consensus loses CC at
    n <= 2t (Theorem 5), and *every* problem loses the unauthenticated
    branch at n <= 3t (Lemma 10) while keeping the authenticated one.
    """
    from repro.analysis.tables import render_table
    from repro.validity.standard import (
        strong_consensus_problem,
        weak_consensus_problem,
    )

    grid = [(4, 1), (7, 2), (5, 2), (6, 2), (4, 2)]

    def kernel():
        rows = []
        for n, t in grid:
            for builder, label in (
                (weak_consensus_problem, "weak"),
                (strong_consensus_problem, "strong"),
            ):
                report = classify(builder(n, t))
                rows.append(
                    (
                        label,
                        n,
                        t,
                        "Y" if report.cc.holds else "N",
                        "Y" if report.authenticated_solvable else "N",
                        "Y" if report.unauthenticated_solvable else "N",
                    )
                )
        return rows

    rows = benchmark(kernel)
    by_key = {
        (label, n, t): (cc, auth, unauth)
        for label, n, t, cc, auth, unauth in rows
    }
    # Weak consensus: always CC; unauth only when n > 3t.
    assert by_key[("weak", 4, 1)] == ("Y", "Y", "Y")
    assert by_key[("weak", 6, 2)] == ("Y", "Y", "N")
    # Strong consensus: CC dies at n <= 2t.
    assert by_key[("strong", 4, 2)] == ("N", "N", "N")
    assert by_key[("strong", 5, 2)][0] == "Y"
    write_report(
        report_dir,
        "e5_resilience_grid",
        "E5b — Theorem 4 branches across the (n, t) grid\n"
        + render_table(
            ("problem", "n", "t", "CC", "auth", "unauth"), rows
        ),
    )


# ----------------------------------------------------------------------
# benchmark-observatory registration (`repro bench run`)
# ----------------------------------------------------------------------

from repro.obs.bench import register as _register


def _observatory_e5_classification():
    result = run_e5(4, 1)
    for row in result.data["rows"]:
        _, trivial, cc, auth, _, solved = row
        if trivial == "N":
            assert cc == "Y" and auth == "Y" and solved == "yes"
    return result


def _observatory_e5_classify_ic():
    report = classify(interactive_consistency_problem(4, 1))
    assert report.cc.holds and not report.trivial
    return report


_register("e5", "classification_n4_t1",
          _observatory_e5_classification, quick=True)
_register("e5", "classify_ic_n4_t1", _observatory_e5_classify_ic)
