"""Bitmask round-kernel benchmarks (not a paper experiment).

Measures the compiled-by-representation fast path
(:mod:`repro.sim.kernel`) against the object engine on identical
workloads:

* the *representation pair* — one dense flood protocol with trivially
  cheap machines, so nearly all measured time is engine representation
  overhead (per-message objects vs per-round masks).  This pair carries
  the CI speedup gate: run ``python benchmarks/bench_kernel.py --gate
  8`` to fail when the kernel's advantage on loop minima decays;
* the *fork fan-out* — the Lemma-4 batched scan primitive
  (:class:`~repro.sim.kernel.PrefixForker` + ``fork_kernel``) vs
  fresh full-horizon kernel runs;
* the *end-to-end pair* — the full lower-bound attack under
  ``kernel="mask"`` vs ``kernel="object"``.

Both engines run the same machines, and every kernel result is
asserted against the object engine's, so a timing run doubles as an
equivalence run.
"""

from __future__ import annotations

import time

from repro.lowerbound.driver import attack_weak_consensus
from repro.omission.isolation import isolate_group
from repro.omission.masks import compile_omissions
from repro.protocols.subquadratic import ring_token_spec
from repro.sim.adversary import NoFaults
from repro.sim.kernel import (
    PrefixForker,
    fork_kernel,
    no_faults_compiled,
    run_kernel,
)
from repro.sim.process import Process
from repro.sim.simulator import SimulationConfig, run_execution

FLOOD_N = 48
FLOOD_ROUNDS = 6


class EchoFlood(Process):
    """All-to-all broadcast with near-zero machine cost.

    ``outgoing`` returns a prebuilt row and ``deliver`` only decides at
    the horizon, so a timed run measures the *engine's* per-message /
    per-mask cost rather than protocol logic.
    """

    def __init__(self, pid, n, t, proposal, rounds):
        super().__init__(pid, n, t, proposal)
        self._rounds = rounds
        self._row = {
            receiver: proposal for receiver in range(n) if receiver != pid
        }

    def outgoing(self, round_):
        return self._row

    def deliver(self, round_, received):
        if round_ >= self._rounds and self.decision is None:
            self.decide(self.proposal)


def _flood_config(n=FLOOD_N, rounds=FLOOD_ROUNDS):
    config = SimulationConfig(n=n, t=0, rounds=rounds, check=False)

    def factory(pid, proposal):
        return EchoFlood(pid, n, 0, proposal, rounds)

    return config, factory


def _flood_object(n=FLOOD_N, rounds=FLOOD_ROUNDS):
    config, factory = _flood_config(n, rounds)
    execution = run_execution(config, [1] * n, factory, NoFaults())
    assert execution.decision(0) == 1
    return execution


def _flood_kernel(n=FLOOD_N, rounds=FLOOD_ROUNDS):
    config, factory = _flood_config(n, rounds)
    trace = run_kernel(config, [1] * n, factory, no_faults_compiled(n))
    assert trace.decision(0) == 1
    return trace


def bench_kernel_flood_mask(benchmark):
    """The mask kernel on the dense flood (representation numerator)."""
    trace = benchmark(_flood_kernel)
    assert trace.rounds_run == FLOOD_ROUNDS


def bench_kernel_flood_object(benchmark):
    """The object engine on the identical flood (the denominator)."""
    execution = benchmark(_flood_object)
    assert execution.rounds == FLOOD_ROUNDS


def bench_kernel_flood_equivalence(benchmark):
    """Mask run plus materialization, asserted equal to the object run.

    The delta against ``bench_kernel_flood_mask`` is the one-time
    materialization cost a trace pays only when a consumer actually
    needs the Appendix-A record.
    """
    reference = _flood_object()

    def run():
        trace = _flood_kernel()
        execution = trace.to_execution()
        assert execution == reference
        return execution

    benchmark(run)


def bench_kernel_fork_fanout(benchmark):
    """Fanning 8 isolation candidates out of one shared prefix."""
    spec = ring_token_spec(12, 8)
    config = SimulationConfig(
        n=12, t=8, rounds=spec.rounds, check=False
    )
    base = run_kernel(
        config, [0] * 12, spec.factory, no_faults_compiled(12)
    )

    def fanout():
        forker = PrefixForker(config, [0] * 12, spec.factory, base)
        traces = []
        for from_round in range(2, 10):
            machines, _ = forker.machines_at(from_round)
            compiled = compile_omissions(
                isolate_group({8, 9}, from_round), 12
            )
            traces.append(
                fork_kernel(config, machines, compiled, base, from_round)
            )
        return traces

    traces = benchmark(fanout)
    assert len(traces) == 8


def bench_kernel_attack_mask(benchmark):
    """The full lower-bound attack with the mask kernel selected."""
    outcome = benchmark(
        lambda: attack_weak_consensus(
            ring_token_spec(12, 8), kernel="mask"
        )
    )
    assert outcome.found_violation


def bench_kernel_attack_object(benchmark):
    """The same attack pinned to the object engine (e2e denominator)."""
    outcome = benchmark(
        lambda: attack_weak_consensus(
            ring_token_spec(12, 8), kernel="object"
        )
    )
    assert outcome.found_violation


# ----------------------------------------------------------------------
# benchmark-observatory registration (`repro bench run`)
# ----------------------------------------------------------------------

from repro.obs.bench import register as _register

_register("kernel", "flood_mask_n48", _flood_kernel, quick=True)
_register("kernel", "flood_object_n48", _flood_object, quick=True)


def _observatory_attack_mask():
    outcome = attack_weak_consensus(ring_token_spec(12, 8), kernel="mask")
    assert outcome.found_violation
    return outcome


def _observatory_attack_object():
    outcome = attack_weak_consensus(
        ring_token_spec(12, 8), kernel="object"
    )
    assert outcome.found_violation
    return outcome


_register("kernel", "attack_mask_n12_t8", _observatory_attack_mask,
          quick=True)
_register("kernel", "attack_object_n12_t8", _observatory_attack_object,
          quick=True)


def _flood_kernel_n64():
    return _flood_kernel(n=64)


_register("kernel", "flood_mask_n64", _flood_kernel_n64)


# ----------------------------------------------------------------------
# the CI speedup gate: `python benchmarks/bench_kernel.py --gate 8`
# ----------------------------------------------------------------------


def _best_of(fn, repetitions=15):
    samples = []
    for _ in range(repetitions):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return min(samples)


def speedup_gate(threshold: float, repetitions: int = 15) -> int:
    """Fail (exit 1) when mask/object loop-minima speedup < threshold.

    Both sides run interleaved warm in the same process, so the ratio of
    minima is largely machine- and load-independent — the same
    noise-dodging idea as ``repro bench compare``'s median gate, applied
    to a ratio that must stay *large* rather than a delta that must stay
    small.
    """
    _flood_kernel()  # warm both paths (intern caches, bytecode)
    _flood_object()
    mask = _best_of(_flood_kernel, repetitions)
    objects = _best_of(_flood_object, repetitions)
    ratio = objects / mask if mask else float("inf")
    verdict = "OK" if ratio >= threshold else "REGRESSED"
    print(
        f"kernel speedup gate: object {objects * 1e3:.2f} ms / "
        f"mask {mask * 1e3:.2f} ms = {ratio:.1f}x "
        f"(threshold {threshold:.1f}x) {verdict}"
    )
    return 0 if ratio >= threshold else 1


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(
        description="mask-vs-object kernel speedup gate"
    )
    parser.add_argument(
        "--gate",
        type=float,
        default=8.0,
        help="minimum acceptable speedup on flood loop minima",
    )
    parser.add_argument(
        "--repetitions",
        type=int,
        default=15,
        help="timing repetitions per engine (minima are compared)",
    )
    raise SystemExit(
        speedup_gate(parser.parse_args().gate,
                     parser.parse_args().repetitions)
    )
