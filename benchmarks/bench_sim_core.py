"""Simulator-core throughput benchmarks (not a paper experiment).

Tracks the cost of the round loop, the Appendix-A validity checker and
the replay checker — the fixed costs every experiment pays.  Useful as a
performance-regression canary for the library itself.
"""

from repro.protocols.dolev_strong import dolev_strong_spec
from repro.protocols.phase_king import phase_king_spec
from repro.sim.execution import check_execution, check_transitions


def bench_sim_round_loop_phase_king(benchmark):
    """Full Phase-King execution at n=13, t=4 (15 rounds, all-to-all)."""
    spec = phase_king_spec(13, 4)
    execution = benchmark(
        lambda: spec.run_uniform(1, check=False)
    )
    assert execution.decision(0) == 1


def bench_sim_validity_checker(benchmark):
    """check_execution on a recorded Phase-King trace."""
    spec = phase_king_spec(13, 4)
    execution = spec.run_uniform(1, check=False)
    benchmark(check_execution, execution)


def bench_sim_replay_checker(benchmark):
    """check_transitions (full deterministic replay) on the same trace."""
    spec = phase_king_spec(13, 4)
    execution = spec.run_uniform(1, check=False)
    benchmark(check_transitions, execution, spec.factory)


def bench_sim_signature_heavy_run(benchmark):
    """Dolev–Strong at n=16, t=8: HMAC signing/verification dominated."""
    spec = dolev_strong_spec(16, 8)
    execution = benchmark(
        lambda: spec.run_uniform("v", check=False)
    )
    assert execution.decision(3) == "v"
