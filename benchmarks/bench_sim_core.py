"""Simulator-core throughput benchmarks (not a paper experiment).

Tracks the cost of the round loop, the Appendix-A validity checker and
the replay checker — the fixed costs every experiment pays.  Useful as a
performance-regression canary for the library itself.
"""

from repro.lowerbound.driver import attack_weak_consensus
from repro.protocols.dolev_strong import dolev_strong_spec
from repro.protocols.phase_king import phase_king_spec
from repro.protocols.subquadratic import ring_token_spec
from repro.sim.adversary import NoFaults
from repro.sim.engine import MachineCheckpointer
from repro.sim.execution import check_execution, check_transitions
from repro.sim.metrics import ComplexityReport, StreamingComplexity
from repro.sim.simulator import (
    SimulationConfig,
    resume_execution,
    run_execution,
)


def bench_sim_round_loop_phase_king(benchmark):
    """Full Phase-King execution at n=13, t=4 (15 rounds, all-to-all)."""
    spec = phase_king_spec(13, 4)
    execution = benchmark(
        lambda: spec.run_uniform(1, check=False)
    )
    assert execution.decision(0) == 1


def bench_sim_validity_checker(benchmark):
    """check_execution on a recorded Phase-King trace."""
    spec = phase_king_spec(13, 4)
    execution = spec.run_uniform(1, check=False)
    benchmark(check_execution, execution)


def bench_sim_replay_checker(benchmark):
    """check_transitions (full deterministic replay) on the same trace."""
    spec = phase_king_spec(13, 4)
    execution = spec.run_uniform(1, check=False)
    benchmark(check_transitions, execution, spec.factory)


def bench_sim_signature_heavy_run(benchmark):
    """Dolev–Strong at n=16, t=8: HMAC signing/verification dominated."""
    spec = dolev_strong_spec(16, 8)
    execution = benchmark(
        lambda: spec.run_uniform("v", check=False)
    )
    assert execution.decision(3) == "v"


def bench_sim_incremental_checker_live(benchmark):
    """The same Phase-King run with the per-round checker attached.

    The delta against ``bench_sim_round_loop_phase_king`` is the live
    (incremental) cost of the Appendix-A validity conditions.
    """
    spec = phase_king_spec(13, 4)
    execution = benchmark(lambda: spec.run_uniform(1, check=True))
    assert execution.decision(0) == 1


def bench_sim_streaming_metrics(benchmark):
    """Message accounting as a round observer, vs the post-hoc walk."""
    spec = phase_king_spec(13, 4)

    def run():
        streaming = StreamingComplexity()
        spec.run_uniform(1, check=False, observers=[streaming])
        return streaming.report()

    report = benchmark(run)
    assert report.correct_messages > 0


def bench_sim_post_hoc_metrics(benchmark):
    """ComplexityReport.of on a recorded trace (streaming's baseline)."""
    spec = phase_king_spec(13, 4)
    execution = spec.run_uniform(1, check=False)
    report = benchmark(ComplexityReport.of, execution)
    assert report.correct_messages > 0


def bench_sim_checkpoint_resume(benchmark):
    """Resuming Phase-King mid-run from a machine checkpoint.

    Measures the tail-only cost the driver pays per isolation probe,
    vs re-simulating the whole horizon from round 1.
    """
    spec = phase_king_spec(13, 4)
    config = SimulationConfig(n=13, t=4, rounds=spec.rounds, check=False)
    resume_at = spec.rounds // 2 + 1
    checkpointer = MachineCheckpointer(rounds=[resume_at])
    base = run_execution(
        config,
        [1] * 13,
        spec.factory,
        NoFaults(),
        observers=[checkpointer],
    )
    prefix = [
        [base.behavior(pid).fragment(r) for r in range(1, resume_at)]
        for pid in range(13)
    ]

    def resume():
        return resume_execution(
            config,
            checkpointer.checkpoint(resume_at),
            NoFaults(),
            prefix,
            resume_at,
        )

    resumed = benchmark(resume)
    assert resumed == base


def bench_driver_attack_with_reuse(benchmark):
    """The full lower-bound pipeline on ring-token(12, 8), reuse on."""
    outcome = benchmark(
        lambda: attack_weak_consensus(ring_token_spec(12, 8))
    )
    assert outcome.found_violation


def bench_driver_attack_reuse_free(benchmark):
    """The same attack with caching, aliasing and early stop disabled."""
    outcome = benchmark(
        lambda: attack_weak_consensus(
            ring_token_spec(12, 8), early_stop=False, reuse=False
        )
    )
    assert outcome.found_violation


def bench_driver_attack_traced(benchmark):
    """The reuse-on attack with a live ledger tracer attached.

    The delta against ``bench_driver_attack_with_reuse`` is the full
    observability cost: per-phase spans, one event per simulated round
    and the end-of-pipeline metrics flush.  The no-op default is
    covered by ``bench_driver_attack_with_reuse`` itself — an untraced
    driver builds no telemetry machinery at all.
    """
    from repro.obs.ledger import RunLedger
    from repro.obs.tracer import LedgerTracer

    def traced():
        ledger = RunLedger()
        outcome = attack_weak_consensus(
            ring_token_spec(12, 8), tracer=LedgerTracer(ledger)
        )
        return outcome, ledger

    outcome, ledger = benchmark(traced)
    assert outcome.found_violation
    assert len(ledger) > 0


# ----------------------------------------------------------------------
# benchmark-observatory registration (`repro bench run`)
# ----------------------------------------------------------------------

from repro.obs.bench import register as _register


def _observatory_phase_king_loop():
    execution = phase_king_spec(13, 4).run_uniform(1, check=False)
    assert execution.decision(0) == 1
    return execution


def _observatory_validity_checker():
    spec = phase_king_spec(13, 4)
    check_execution(spec.run_uniform(1, check=False))


def _observatory_attack_with_reuse():
    outcome = attack_weak_consensus(ring_token_spec(12, 8))
    assert outcome.found_violation
    return outcome


def _observatory_signature_heavy_run():
    execution = dolev_strong_spec(16, 8).run_uniform("v", check=False)
    assert execution.decision(3) == "v"
    return execution


_register("sim_core", "phase_king_loop_n13_t4",
          _observatory_phase_king_loop, quick=True)
_register("sim_core", "validity_checker_n13_t4",
          _observatory_validity_checker, quick=True)
_register("sim_core", "attack_reuse_n12_t8",
          _observatory_attack_with_reuse, quick=True)
_register("sim_core", "dolev_strong_run_n16_t8",
          _observatory_signature_heavy_run)
