"""E7 — Dolev–Reischuk context: measured protocol complexities."""

from conftest import write_report

from repro.analysis.fitting import fit_sweep
from repro.experiments import run_e7
from repro.protocols.dolev_strong import dolev_strong_spec
from repro.protocols.phase_king import phase_king_spec


def bench_e7_sweeps(benchmark, report_dir):
    result = benchmark(run_e7, 8)
    ds_fit = fit_sweep(result.data["points"]["dolev-strong"])
    assert ds_fit.exponent >= 1.8
    assert all(
        point.worst_messages >= point.floor
        for point in result.data["points"]["dolev-strong"]
    )
    write_report(report_dir, "e7_protocol_complexity", result.report)


def bench_e7_dolev_strong_run(benchmark):
    """Single Dolev–Strong execution latency at n=16, t=8."""
    spec = dolev_strong_spec(16, 8)
    execution = benchmark(spec.run_uniform, 0)
    assert set(execution.correct_decisions().values()) == {0}


def bench_e7_phase_king_run(benchmark):
    """Single Phase-King execution latency at n=13, t=4."""
    spec = phase_king_spec(13, 4)
    execution = benchmark(spec.run_uniform, 1)
    assert set(execution.correct_decisions().values()) == {1}


# ----------------------------------------------------------------------
# benchmark-observatory registration (`repro bench run`)
# ----------------------------------------------------------------------

from repro.obs.bench import register as _register


def _observatory_e7_sweeps(max_t):
    result = run_e7(max_t)
    assert all(
        point.worst_messages >= point.floor
        for point in result.data["points"]["dolev-strong"]
    )
    return result


def _observatory_e7_phase_king_run():
    execution = phase_king_spec(13, 4).run_uniform(1)
    assert set(execution.correct_decisions().values()) == {1}
    return execution


_register("e7", "protocol_sweeps_t6",
          lambda: _observatory_e7_sweeps(6), quick=True)
_register("e7", "protocol_sweeps_t8",
          lambda: _observatory_e7_sweeps(8))
_register("e7", "phase_king_run_n13_t4",
          _observatory_e7_phase_king_run, quick=True)
