"""Consistency checks on the experiment and cheater registries."""

import pytest

from repro.experiments import ALL_EXPERIMENTS, CHEATERS


class TestExperimentRegistry:
    def test_all_ids_sequential(self):
        assert list(ALL_EXPERIMENTS) == [
            f"e{index}" for index in range(1, 10)
        ]

    def test_runners_are_callable_and_distinct(self):
        assert len(set(ALL_EXPERIMENTS.values())) == len(
            ALL_EXPERIMENTS
        )
        for runner in ALL_EXPERIMENTS.values():
            assert callable(runner)

    def test_experiment_ids_match_results(self):
        # Spot-check two cheap runners.
        assert ALL_EXPERIMENTS["e6"]().experiment == "E6"
        assert ALL_EXPERIMENTS["e2"]().experiment == "E2"


class TestCheaterRegistry:
    @pytest.mark.parametrize("name", sorted(CHEATERS))
    def test_every_cheater_builds_and_runs(self, name):
        spec = CHEATERS[name](12, 8)
        execution = spec.run_uniform(0)
        assert execution.n == 12

    @pytest.mark.parametrize("name", sorted(CHEATERS))
    def test_every_cheater_is_subquadratic_in_spirit(self, name):
        """Registry invariant: at the paper-regime scale every entry
        spends less than a correct protocol must somewhere — concretely,
        below n(n-1) (single all-to-all round), the cheapest conceivable
        quadratic behaviour."""
        n, t = 20, 16
        spec = CHEATERS[name](n, t)
        messages = spec.run_uniform(0).message_complexity()
        assert messages < n * (n - 1)
