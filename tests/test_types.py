"""Tests for repro.types."""

import pytest

from repro.types import (
    FIRST_ROUND,
    validate_process_id,
    validate_round,
    validate_system_size,
)


class TestValidateSystemSize:
    def test_accepts_minimal_system(self):
        validate_system_size(1, 0)

    def test_accepts_typical_system(self):
        validate_system_size(7, 2)

    def test_rejects_zero_processes(self):
        with pytest.raises(ValueError, match="at least one process"):
            validate_system_size(0, 0)

    def test_rejects_negative_t(self):
        with pytest.raises(ValueError, match="0 <= t < n"):
            validate_system_size(3, -1)

    def test_rejects_t_equal_n(self):
        with pytest.raises(ValueError, match="0 <= t < n"):
            validate_system_size(3, 3)

    def test_rejects_t_above_n(self):
        with pytest.raises(ValueError):
            validate_system_size(3, 5)


class TestValidateProcessId:
    def test_accepts_bounds(self):
        validate_process_id(0, 4)
        validate_process_id(3, 4)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            validate_process_id(-1, 4)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            validate_process_id(4, 4)


class TestValidateRound:
    def test_first_round_is_one(self):
        assert FIRST_ROUND == 1
        validate_round(1)

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            validate_round(0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            validate_round(-3)
