"""Tests for power-law fitting."""

import pytest

from repro.analysis.fitting import (
    fit_power_law,
    is_subquadratic,
    is_superquadratic,
)


class TestFit:
    def test_exact_quadratic(self):
        ts = [4, 8, 16, 32]
        fit = fit_power_law(ts, [3 * t * t for t in ts])
        assert abs(fit.exponent - 2.0) < 1e-9
        assert abs(fit.coefficient - 3.0) < 1e-9
        assert fit.r_squared == pytest.approx(1.0)

    def test_exact_linear(self):
        ts = [4, 8, 16, 32]
        fit = fit_power_law(ts, [5 * t for t in ts])
        assert abs(fit.exponent - 1.0) < 1e-9

    def test_prediction(self):
        ts = [2, 4, 8]
        fit = fit_power_law(ts, [t * t for t in ts])
        assert fit.predict(16) == pytest.approx(256.0)

    def test_all_zero_degenerate(self):
        fit = fit_power_law([4, 8], [0, 0])
        assert fit.points == 0
        assert fit.coefficient == 0.0

    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="equal length"):
            fit_power_law([1, 2], [1])

    def test_single_point_rejected(self):
        with pytest.raises(ValueError, match="two non-zero"):
            fit_power_law([4, 8], [0, 16])

    def test_render(self):
        fit = fit_power_law([4, 8], [16, 64])
        assert "t^2.00" in fit.render()


class TestClassifiers:
    def test_quadratic_is_superquadratic(self):
        fit = fit_power_law([4, 8, 16], [t * t for t in (4, 8, 16)])
        assert is_superquadratic(fit)
        assert not is_subquadratic(fit)

    def test_linear_is_subquadratic(self):
        fit = fit_power_law([4, 8, 16], [t for t in (4, 8, 16)])
        assert is_subquadratic(fit)
        assert not is_superquadratic(fit)

    def test_degenerate_counts_as_subquadratic(self):
        fit = fit_power_law([4, 8], [0, 0])
        assert is_subquadratic(fit)
        assert not is_superquadratic(fit)
