"""Tests for the multi-shot amortization harness (§6, [96, 97])."""

from repro.analysis.amortization import run_multi_shot_broadcast


class TestMultiShot:
    def test_every_shot_decides_its_payload(self):
        report = run_multi_shot_broadcast(
            5, 2, payloads=["a", "b", "c"]
        )
        assert report.decisions == ("a", "b", "c")

    def test_amortized_equals_per_shot_for_dolev_strong(self):
        """Per-shot Dolev–Strong has no cross-shot savings: the
        amortized cost equals the single-shot cost — the baseline an
        amortizing protocol ([97]) improves on."""
        report = run_multi_shot_broadcast(
            5, 2, payloads=["a", "b", "c", "d"]
        )
        assert len(set(report.shots)) == 1
        assert report.amortized_messages == report.shots[0]
        assert report.total_messages == 4 * report.shots[0]

    def test_empty_run(self):
        report = run_multi_shot_broadcast(5, 2, payloads=[])
        assert report.total_messages == 0
        assert report.amortized_messages == 0.0

    def test_shots_are_domain_separated(self):
        """A chain from shot 0 cannot be replayed in shot 1: instances
        differ, so verification fails across shots."""
        from repro.crypto.chains import start_chain, verify_chain
        from repro.crypto.keys import KeyRegistry
        from repro.crypto.signatures import SignatureScheme
        from repro.crypto.chains import SignedChain

        scheme = SignatureScheme(KeyRegistry(5, b"repro-ms"))
        chain = start_chain(
            scheme.signer_for(0), ("shot", 0), "payload"
        )
        replayed = SignedChain(
            instance=("shot", 1),
            value=chain.value,
            signatures=chain.signatures,
        )
        assert verify_chain(scheme, chain, 0)
        assert not verify_chain(scheme, replayed, 0)
