"""Tests for the text table renderers."""

import pytest

from repro.analysis.complexity import SweepPoint
from repro.analysis.tables import render_kv, render_sweep, render_table


class TestRenderTable:
    def test_alignment(self):
        text = render_table(
            ("name", "value"), [("a", 1), ("longer", 22)]
        )
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "------" in lines[1]
        assert len(lines) == 4

    def test_rejects_ragged_rows(self):
        with pytest.raises(ValueError, match="cells"):
            render_table(("a", "b"), [("only-one",)])


class TestRenderSweep:
    def test_contains_floor_column(self):
        point = SweepPoint(
            protocol="x", n=10, t=8, worst_messages=100,
            scenario="fault-free",
        )
        text = render_sweep([point])
        assert "t^2/32" in text
        assert "fault-free" in text
        assert "2.0" in text  # the floor at t=8


class TestRenderKv:
    def test_titled_block(self):
        text = render_kv("Title", [("k", "v"), ("n", 3)])
        assert text.splitlines()[0] == "Title"
        assert "  k: v" in text
