"""Tests for the complexity sweep harness."""

from repro.analysis.complexity import (
    default_scenarios,
    measure_point,
    mixed_workload,
    quadratic_parameter_grid,
    sweep,
    uniform_workloads,
)
from repro.protocols.subquadratic import leader_echo_spec
from repro.protocols.weak_consensus import broadcast_weak_consensus_spec


class TestWorkloads:
    def test_uniform_workloads(self):
        assert uniform_workloads(3) == [[0, 0, 0], [1, 1, 1]]

    def test_mixed_workload_round_robin(self):
        assert mixed_workload(5) == [0, 1, 0, 1, 0]

    def test_parameter_grid(self):
        grid = quadratic_parameter_grid(12, slack=4, step=4)
        assert grid == [(8, 4), (12, 8), (16, 12)]


class TestScenarios:
    def test_includes_isolations_when_t_allows(self):
        spec = broadcast_weak_consensus_spec(8, 4)
        scenarios = default_scenarios(spec, [0] * 8)
        labels = [label for label, _, _ in scenarios]
        assert labels[0] == "fault-free"
        assert any("isolate-B" in label for label in labels)
        assert any("isolate-C" in label for label in labels)

    def test_fault_free_only_for_tiny_t(self):
        spec = broadcast_weak_consensus_spec(4, 1)
        scenarios = default_scenarios(spec, [0] * 4)
        assert [label for label, _, _ in scenarios] == ["fault-free"]


class TestMeasurement:
    def test_measure_point_takes_worst(self):
        spec = leader_echo_spec(8, 4)
        point = measure_point(spec, uniform_workloads(8))
        # Leader echo: 2(n-1) messages fault-free; isolations only lose
        # messages, so the worst is the fault-free run.
        assert point.worst_messages == 14
        assert point.scenario == "fault-free"

    def test_point_ratios(self):
        spec = leader_echo_spec(8, 4)
        point = measure_point(spec, uniform_workloads(8))
        assert point.floor == 0.5
        assert point.ratio_to_floor == 28.0
        assert point.ratio_to_t_squared == 14 / 16

    def test_sweep_produces_one_point_per_parameter(self):
        points = sweep(
            lambda n, t: leader_echo_spec(n, t),
            [(6, 2), (10, 4)],
            include_mixed=False,
        )
        assert [(point.n, point.t) for point in points] == [
            (6, 2),
            (10, 4),
        ]
