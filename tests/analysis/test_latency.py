"""Tests for round-complexity (latency) accounting."""

from repro.analysis.latency import LatencyReport, dolev_strong_round_floor
from repro.protocols.dolev_strong import dolev_strong_spec
from repro.protocols.phase_king import phase_king_spec
from repro.protocols.subquadratic import leader_echo_spec
from repro.sim.adversary import CrashAdversary


class TestLatencyReport:
    def test_dolev_strong_decides_at_t_plus_one(self):
        """The [52] round bound, attained exactly by our implementation."""
        for t in (1, 2, 4):
            spec = dolev_strong_spec(t + 3, t)
            report = LatencyReport.of(spec.run_uniform("v"))
            assert report.all_decided
            assert report.earliest == report.latest == t + 1
            assert report.latest == dolev_strong_round_floor(t)

    def test_phase_king_latency(self):
        spec = phase_king_spec(7, 2)
        report = LatencyReport.of(spec.run_uniform(0))
        assert report.latest == 3 * (2 + 1)

    def test_cheater_is_fast_because_it_cheats(self):
        spec = leader_echo_spec(8, 4)
        report = LatencyReport.of(spec.run_uniform(0))
        assert report.latest == 2  # far below t+1 = 5: too good to be true

    def test_undecided_processes_reported(self):
        spec = leader_echo_spec(8, 4)
        report = LatencyReport.of(spec.run_uniform(0, rounds=1))
        assert not report.all_decided
        assert report.earliest is None
        assert report.latest is None

    def test_faults_do_not_delay_dolev_strong(self):
        spec = dolev_strong_spec(6, 2)
        execution = spec.run_uniform("v", CrashAdversary({3: 1}))
        report = LatencyReport.of(execution)
        assert report.all_decided
        assert report.latest == 3
