"""Tests for the ASCII space-time renderers (Figures 1 & 2 in text)."""

import pytest

from repro.analysis.spacetime import render_divergence, render_spacetime
from repro.omission.isolation import isolate_group
from repro.protocols.eig import eig_consensus_spec
from repro.protocols.subquadratic import leader_echo_spec
from repro.sim.adversary import CrashAdversary


class TestRenderSpacetime:
    def test_symbols_and_shape(self):
        spec = leader_echo_spec(5, 2)
        execution = spec.run_uniform(0)
        text = render_spacetime(execution)
        lines = text.splitlines()
        # header + separator + one per round + legend
        assert len(lines) == 2 + execution.rounds + 1
        # Round 1: everyone but the leader reports -> 'o'; leader quiet.
        round_one = lines[2]
        assert round_one.startswith("  1")
        assert "o" in round_one
        # Round 2: decisions land -> 'D' somewhere.
        assert "D" in lines[3]

    def test_faulty_marker_in_header(self):
        spec = leader_echo_spec(5, 2)
        execution = spec.run_uniform(0, CrashAdversary({3: 1}))
        header = render_spacetime(execution).splitlines()[0]
        assert "p3*" in header
        assert "p2*" not in header

    def test_send_omission_symbol(self):
        spec = leader_echo_spec(5, 2)
        execution = spec.run_uniform(0, CrashAdversary({1: 1}))
        text = render_spacetime(execution)
        assert "x" in text  # p1's report is send-omitted in round 1

    def test_receive_omission_symbol(self):
        spec = leader_echo_spec(6, 2)
        execution = spec.run_uniform(0, isolate_group({5}, 1))
        # p5 receive-omits the verdict in round 2 but decides that same
        # round; round 2 shows D. Use a horizon-extended run to see 'r':
        execution = spec.run_uniform(
            0, isolate_group({5}, 1), rounds=2
        )
        text = render_spacetime(execution)
        assert "D" in text

    def test_max_rounds_truncates(self):
        spec = eig_consensus_spec(7, 2)
        execution = spec.run_uniform(0)
        text = render_spacetime(execution, max_rounds=2)
        assert len(text.splitlines()) == 2 + 2 + 1


class TestRenderDivergence:
    def test_band_boundaries_match_figure_one(self):
        spec = eig_consensus_spec(10, 3)
        proposals = [index % 2 for index in range(10)]
        reference = spec.run(proposals)
        isolated = spec.run(proposals, isolate_group({8}, 2))
        text = render_divergence(
            reference, isolated, groups=[frozenset({8})]
        )
        lines = text.splitlines()
        assert "P8" in lines[0]  # group member capitalized
        # Row for round 3 (isolate_at + 1): the isolated column flips.
        row3 = lines[2 + 2]  # header, separator, round1, round2, round3
        assert row3.strip().startswith("3")
        assert "#" in row3
        # Round 2 row is all '='.
        row2 = lines[2 + 1]
        assert "#" not in row2

    def test_size_mismatch_rejected(self):
        small = eig_consensus_spec(4, 1).run([0, 1, 0, 1])
        large = eig_consensus_spec(7, 2).run_uniform(0)
        with pytest.raises(ValueError, match="different system"):
            render_divergence(small, large)

    def test_identical_executions_all_match(self):
        spec = eig_consensus_spec(4, 1)
        left = spec.run([0, 1, 0, 1])
        right = spec.run([0, 1, 0, 1])
        text = render_divergence(left, right)
        data_rows = text.splitlines()[2:-1]  # skip header + legend
        assert all("#" not in row for row in data_rows)
