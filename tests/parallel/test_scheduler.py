"""The parallel sweep backend (acceptance for the fan-out PR).

The acceptance bar: sharding the seed cheater matrix over a process
pool is **bit-identical** to the serial sweep — same witnesses, same
verdicts, same message counts, gathered in the same order — and a
failing cell surfaces as a structured per-cell error without aborting
its siblings.
"""

import pytest

from repro.lowerbound.driver import ExecutionCache
from repro.parallel import (
    AttackJob,
    CacheStats,
    MeasureJob,
    SweepScheduler,
    UnknownBuilderError,
    execute_job,
    registered_builders,
    resolve_builder,
)

# The seed cheater matrix at the paper's small regime — enough cells
# that process scheduling order differs from submission order.
MATRIX = [
    AttackJob(builder=name, n=t + 4, t=t)
    for name in ("silent", "leader-echo", "committee", "ring-token")
    for t in (8, 12)
]


def _outcomes_agree(left, right):
    assert left.found_violation == right.found_violation
    assert left.default_bit == right.default_bit
    assert left.critical_round == right.critical_round
    assert left.witness == right.witness
    if left.bound is not None and right.bound is not None:
        assert left.bound.observed == right.bound.observed


class TestCrossBackendEquivalence:
    def test_process_backend_bit_identical_to_serial(self):
        serial = SweepScheduler(jobs=1).run(MATRIX)
        parallel = SweepScheduler(jobs=4).run(MATRIX)
        serial.raise_errors()
        parallel.raise_errors()
        assert serial.backend == "serial"
        assert parallel.backend == "process"
        # Deterministic gather: cells come back in submission order.
        assert [c.key for c in serial.cells] == [
            job.key for job in MATRIX
        ]
        assert [c.key for c in parallel.cells] == [
            job.key for job in MATRIX
        ]
        for left, right in zip(serial.values(), parallel.values()):
            _outcomes_agree(left, right)
        # AttackOutcome equality covers every compared field at once
        # (wall-clock profiles are excluded from comparison by design).
        assert serial.values() == parallel.values()
        # Merged cache accounting is backend-independent too.
        assert serial.cache == parallel.cache
        assert serial.rounds_simulated == parallel.rounds_simulated
        assert serial.rounds_baseline == parallel.rounds_baseline

    def test_serial_backend_matches_direct_driver_calls(self):
        from repro.lowerbound.driver import attack_weak_consensus

        job = MATRIX[0]
        direct = attack_weak_consensus(
            resolve_builder(job.builder)(job.n, job.t)
        )
        report = SweepScheduler(jobs=1).run([job])
        report.raise_errors()
        _outcomes_agree(direct, report.values()[0])
        assert direct == report.values()[0]


class TestPerCellErrors:
    BAD_MATRIX = [
        AttackJob(builder="silent", n=12, t=8),
        AttackJob(builder="no-such-cheater", n=12, t=8),
        AttackJob(builder="leader-echo", n=12, t=8),
    ]

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_failure_is_structured_and_isolated(self, jobs):
        report = SweepScheduler(jobs=jobs).run(self.BAD_MATRIX)
        assert not report.ok
        good, bad, also_good = report.cells
        assert good.ok and also_good.ok
        assert not bad.ok
        assert bad.error.kind == "exception"
        assert "no-such-cheater" in bad.error.message
        assert "UnknownBuilderError" in bad.error.message
        # The traceback rides along for debugging.
        assert "UnknownBuilderError" in bad.error.detail
        # The healthy cells still produced full outcomes.
        assert len(report.values()) == 2
        with pytest.raises(RuntimeError, match="no-such-cheater"):
            report.raise_errors()
        with pytest.raises(RuntimeError, match="failed"):
            bad.value

    def test_timeout_surfaces_as_cell_error(self):
        # A generous matrix under an impossible budget: every cell
        # times out, none raises out of the scheduler.
        report = SweepScheduler(jobs=2, timeout=1e-9).run(
            [AttackJob(builder="silent", n=12, t=8)]
        )
        assert not report.ok
        assert report.cells[0].error.kind == "timeout"

    def test_rejects_nonpositive_worker_count(self):
        with pytest.raises(ValueError):
            SweepScheduler(jobs=0)


class TestCacheStatsMerge:
    def test_merge_stats_folds_counters_only(self):
        target = ExecutionCache()
        target.hits, target.alias_hits, target.misses = 1, 2, 3
        target.merge_stats(CacheStats(hits=10, alias_hits=20, misses=30))
        assert (target.hits, target.alias_hits, target.misses) == (
            11,
            22,
            33,
        )
        # Entries and checkpointers are untouched: counters only.
        assert target._entries == {}
        assert target._checkpointers == {}

    def test_merge_stats_accepts_other_caches(self):
        left, right = ExecutionCache(), ExecutionCache()
        left.hits, right.hits = 5, 7
        left.merge_stats(right)
        assert left.hits == 12

    def test_cachestats_merged_is_elementwise(self):
        merged = CacheStats(1, 2, 3).merged(CacheStats(4, 5, 6))
        assert merged == CacheStats(5, 7, 9)

    def test_sweep_report_merges_worker_counters(self):
        report = SweepScheduler(jobs=1).run(MATRIX[:2])
        report.raise_errors()
        total = CacheStats()
        for cell in report.cells:
            total = total.merged(cell.result.cache)
        assert report.cache == total


class TestBuilderRegistry:
    def test_all_cheaters_and_protocols_resolve(self):
        for name in registered_builders():
            spec = resolve_builder(name)(12, 8)
            assert spec.n == 12 and spec.t == 8

    def test_unknown_name_raises(self):
        with pytest.raises(UnknownBuilderError, match="registered:"):
            resolve_builder("definitely-not-registered")


class TestMeasureJobs:
    def test_measure_job_matches_sweep_kernel(self):
        from repro.analysis.complexity import sweep
        from repro.protocols.dolev_strong import dolev_strong_spec

        expected = sweep(lambda n, t: dolev_strong_spec(n, t), [(8, 4)])
        result = execute_job(MeasureJob(builder="dolev-strong", n=8, t=4))
        assert [result.value] == expected

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_mixed_job_kinds_in_one_sweep(self, jobs):
        report = SweepScheduler(jobs=jobs).run(
            [
                AttackJob(builder="silent", n=12, t=8),
                MeasureJob(builder="dolev-strong", n=8, t=4),
            ]
        )
        report.raise_errors()
        attack_cell, measure_cell = report.cells
        assert attack_cell.key[0] == "attack"
        assert measure_cell.key[0] == "measure"
        assert measure_cell.result.cache is None
        # Only attack cells contribute cache counters.
        assert report.cache == attack_cell.result.cache


class TestProfiledJobs:
    def test_profile_rides_through_the_pool(self):
        report = SweepScheduler(jobs=2).run(
            [AttackJob(builder="silent", n=12, t=8, profile=True)]
        )
        report.raise_errors()
        profile = report.values()[0].profile
        assert profile is not None
        assert profile.wall_seconds > 0
        assert profile.rounds_timed > 0
        assert profile.phase("fault-free") > 0
        assert profile.phase("isolation-scan") > 0
        assert profile.phase("merge") > 0
        # Profiles are wall-clock data: they never affect equality.
        bare = SweepScheduler(jobs=1).run(
            [AttackJob(builder="silent", n=12, t=8)]
        )
        assert bare.values() == report.values()
