"""Certificates through the sweep: shipped as bytes, verified at gather.

Certifying cells render their artifact to canonical bytes inside the
worker; the gather step re-verifies exactly those bytes with the
independent verifier before the sweep reports the cell.  A rejected
artifact is a structured ``"certificate"`` cell error — never a result.
"""

import dataclasses
import json

import pytest

from repro.certify.verifier import verify_certificate
from repro.parallel import AttackJob, SweepScheduler
from repro.parallel.jobs import JobResult
from repro.parallel.scheduler import SweepCell

CERTIFIED_MATRIX = [
    AttackJob(builder="silent", n=12, t=8, certify=True),
    AttackJob(builder="leader-echo", n=12, t=8, certify=True),
]


class TestCertifiedSweep:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_cells_ship_verified_certificates(self, jobs):
        report = SweepScheduler(jobs=jobs).run(CERTIFIED_MATRIX)
        report.raise_errors()
        assert report.certificates_verified == len(CERTIFIED_MATRIX)
        assert (
            f"{len(CERTIFIED_MATRIX)} certificate(s) verified"
            in report.render()
        )
        assert (
            report.to_payload()["certificates_verified"]
            == len(CERTIFIED_MATRIX)
        )
        for cell in report.cells:
            # The artifact travels once, as bytes; the live object is
            # stripped so outcomes stay backend-equal and picklable.
            assert cell.result.certificate is not None
            assert cell.result.value.certificate is None
            assert verify_certificate(cell.result.certificate).ok

    def test_artifacts_byte_identical_across_backends(self):
        serial = SweepScheduler(jobs=1).run(CERTIFIED_MATRIX)
        parallel = SweepScheduler(jobs=2).run(CERTIFIED_MATRIX)
        serial.raise_errors()
        parallel.raise_errors()
        assert serial.backend == "serial"
        assert parallel.backend == "process"
        for left, right in zip(serial.cells, parallel.cells):
            assert left.result.certificate == right.result.certificate

    def test_uncertified_cells_ship_nothing(self):
        report = SweepScheduler(jobs=1).run(
            [AttackJob(builder="silent", n=12, t=8)]
        )
        report.raise_errors()
        assert report.certificates_verified == 0
        assert report.cells[0].result.certificate is None
        assert "certificate" not in report.render()


class TestGatherRejection:
    def _certified_cell(self):
        report = SweepScheduler(jobs=1).run(CERTIFIED_MATRIX[:1])
        report.raise_errors()
        return report.cells[0]

    def test_corrupted_artifact_becomes_cell_error(self):
        cell = self._certified_cell()
        payload = json.loads(cell.result.certificate)
        payload["accounting"]["floor"] = 0.0
        forged = SweepCell(
            index=cell.index,
            key=cell.key,
            result=dataclasses.replace(
                cell.result,
                certificate=json.dumps(payload).encode("utf-8"),
            ),
            wall_seconds=cell.wall_seconds,
        )
        checked = SweepScheduler._verify_cell(forged)
        assert not checked.ok
        assert checked.error.kind == "certificate"
        assert "accounting.floor" in checked.error.message
        assert "REJECTED" in checked.error.detail
        # Identity survives; only the result is withheld.
        assert checked.key == cell.key
        assert checked.index == cell.index

    def test_intact_cells_pass_through_unchanged(self):
        cell = self._certified_cell()
        assert SweepScheduler._verify_cell(cell) is cell
        bare = SweepCell(index=0, key=("attack", "silent", 12, 8))
        assert SweepScheduler._verify_cell(bare) is bare
        no_cert = SweepCell(
            index=0,
            key=("attack", "silent", 12, 8),
            result=JobResult(
                key=("attack", "silent", 12, 8),
                value=None,
                wall_seconds=0.0,
            ),
        )
        assert SweepScheduler._verify_cell(no_cert) is no_cert
