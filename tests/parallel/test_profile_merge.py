"""Tests for ``AttackProfile.merge`` and the sweep-level aggregate.

The merge is required to be associative with the zero profile as
identity, so the scheduler can fold per-cell profiles in any grouping
— and the serial and pooled backends must agree on everything except
wall-clock magnitudes (phase names and order, timed-round counts).
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.parallel.jobs import AttackJob
from repro.parallel.profiling import AttackProfile
from repro.parallel.scheduler import SweepScheduler

_PHASES = ["fault-free", "isolation-scan", "swap", "merge"]


def _profiles() -> st.SearchStrategy[AttackProfile]:
    # Integer-valued seconds keep float addition exactly associative,
    # so the law can be asserted with ==.
    seconds = st.integers(min_value=0, max_value=1000).map(
        lambda value: value / 4.0
    )
    phase_pairs = st.lists(
        st.tuples(st.sampled_from(_PHASES), seconds),
        max_size=4,
        unique_by=lambda pair: pair[0],
    )
    return st.builds(
        lambda wall, phases, timed, total, peak: AttackProfile(
            wall_seconds=wall,
            phase_seconds=tuple(phases),
            rounds_timed=timed,
            round_seconds_total=total,
            round_seconds_max=peak,
        ),
        seconds,
        phase_pairs,
        st.integers(min_value=0, max_value=50),
        seconds,
        seconds,
    )


class TestMergeAlgebra:
    @given(_profiles(), _profiles(), _profiles())
    def test_merge_is_associative(self, a, b, c):
        assert a.merge(b).merge(c) == a.merge(b.merge(c))

    @given(_profiles())
    def test_zero_profile_is_identity(self, profile):
        zero = AttackProfile(wall_seconds=0.0)
        assert zero.merge(profile) == profile
        assert profile.merge(zero) == profile

    def test_phases_sum_in_first_seen_order(self):
        a = AttackProfile(
            wall_seconds=1.0,
            phase_seconds=(("fault-free", 1.0), ("merge", 2.0)),
        )
        b = AttackProfile(
            wall_seconds=2.0,
            phase_seconds=(("swap", 5.0), ("merge", 3.0)),
        )
        merged = a.merge(b)
        assert merged.phase_seconds == (
            ("fault-free", 1.0),
            ("merge", 5.0),
            ("swap", 5.0),
        )
        assert merged.wall_seconds == 3.0

    def test_round_counters_sum_and_max(self):
        a = AttackProfile(
            wall_seconds=1.0,
            rounds_timed=3,
            round_seconds_total=0.3,
            round_seconds_max=0.2,
        )
        b = AttackProfile(
            wall_seconds=1.0,
            rounds_timed=2,
            round_seconds_total=0.1,
            round_seconds_max=0.4,
        )
        merged = a.merge(b)
        assert merged.rounds_timed == 5
        assert merged.round_seconds_total == 0.4
        assert merged.round_seconds_max == 0.4


class TestSweepAggregate:
    def _matrix(self) -> list[AttackJob]:
        return [
            AttackJob("silent", 8, 4, profile=True),
            AttackJob("ring-token", 12, 8, profile=True),
        ]

    def test_backends_agree_modulo_wall_clock(self):
        serial = SweepScheduler(jobs=1).run(self._matrix())
        pooled = SweepScheduler(jobs=2).run(self._matrix())
        assert serial.ok and pooled.ok
        assert serial.profile is not None
        assert pooled.profile is not None
        # Identical structure: same phases in the same order, same
        # number of timed rounds.  Wall-clock magnitudes may differ.
        assert [name for name, _ in serial.profile.phase_seconds] == [
            name for name, _ in pooled.profile.phase_seconds
        ]
        assert (
            serial.profile.rounds_timed == pooled.profile.rounds_timed
        )

    def test_unprofiled_sweep_has_no_aggregate(self):
        report = SweepScheduler(jobs=1).run(
            [AttackJob("silent", 8, 4)]
        )
        assert report.profile is None
