"""Shared fixtures for the test-suite.

Conventions: small systems (n ≤ 10) keep tests fast; `hypothesis`-based
tests bound example counts explicitly where the default would be slow.
"""

from __future__ import annotations

import pytest

from repro.lowerbound.partition import ABCPartition
from repro.protocols.weak_consensus import broadcast_weak_consensus_spec


@pytest.fixture
def small_weak_spec():
    """A correct weak consensus instance at (n=6, t=4)."""
    return broadcast_weak_consensus_spec(6, 4)


@pytest.fixture
def small_partition():
    """An (A, B, C) partition matching ``small_weak_spec``."""
    return ABCPartition(
        n=6, t=4, group_b=frozenset({4}), group_c=frozenset({5})
    )
