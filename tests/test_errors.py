"""Tests for the exception hierarchy."""

import pytest

from repro.errors import (
    AdversaryError,
    ModelViolation,
    ProtocolViolation,
    ReproError,
    SignatureError,
    TrivialProblemError,
    UnsolvableProblemError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exception",
        [
            ModelViolation,
            ProtocolViolation,
            AdversaryError,
            SignatureError,
            UnsolvableProblemError,
            TrivialProblemError,
        ],
    )
    def test_all_derive_from_repro_error(self, exception):
        assert issubclass(exception, ReproError)
        with pytest.raises(ReproError):
            raise exception("boom")

    def test_model_vs_protocol_distinct(self):
        """Broken traces and broken algorithms are different failures."""
        assert not issubclass(ModelViolation, ProtocolViolation)
        assert not issubclass(ProtocolViolation, ModelViolation)

    def test_catchable_individually(self):
        with pytest.raises(TrivialProblemError):
            raise TrivialProblemError("t")
        # But not as each other:
        with pytest.raises(TrivialProblemError):
            try:
                raise TrivialProblemError("t")
            except UnsolvableProblemError:  # pragma: no cover
                pytest.fail("wrong class caught")


class TestUniformArtifactDiagnostic:
    """All four artifact loaders share one malformed-file diagnostic.

    The shared :mod:`repro.artifact` chokepoint guarantees the message
    shape ``<path>[:<line>]: not a <kind> (<ExcType>: <detail>)`` and
    the :class:`ArtifactError` type (CLI exit 2) across every family.
    """

    def _write(self, tmp_path, name, text):
        path = tmp_path / name
        path.write_text(text)
        return str(path)

    def test_ledger_events(self, tmp_path):
        from repro.errors import ArtifactError
        from repro.obs.ledger import read_events

        path = self._write(tmp_path, "garbage.jsonl", "not json\n")
        with pytest.raises(ArtifactError) as excinfo:
            read_events(path)
        message = str(excinfo.value)
        assert f"{path}:1: not a ledger event" in message

    def test_trend_points(self, tmp_path):
        from repro.errors import ArtifactError
        from repro.obs.report import read_trend

        path = self._write(
            tmp_path, "trend.jsonl", '{"ok": true}\n[1, 2]\n'
        )
        with pytest.raises(ArtifactError) as excinfo:
            read_trend(path)
        message = str(excinfo.value)
        assert f"{path}:2: not a trend point" in message

    def test_bench_trajectory(self, tmp_path):
        from repro.errors import ArtifactError
        from repro.obs.bench import read_bench_file

        path = self._write(tmp_path, "BENCH_x.json", '{"schema": 99}')
        with pytest.raises(ArtifactError) as excinfo:
            read_bench_file(path)
        message = str(excinfo.value)
        assert f"{path}: not a bench trajectory" in message

    def test_certificate(self, tmp_path):
        from repro.errors import ArtifactError
        from repro.certify.format import read_certificate

        path = self._write(tmp_path, "bad.cert.json", '{"format": "no"}')
        with pytest.raises(ArtifactError) as excinfo:
            read_certificate(path)
        message = str(excinfo.value)
        assert f"{path}: not an attack certificate" in message

    def test_world_log(self, tmp_path):
        from repro.errors import ArtifactError
        from repro.worldlog.store import read_worldlog

        path = self._write(
            tmp_path,
            "bad.worldlog",
            '{"tick": 0, "kind": "log.open", "run_id": "r", '
            '"cell_id": null, "worker_id": 0, "payload": {}}\n'
            "garbage\n",
        )
        with pytest.raises(ArtifactError) as excinfo:
            read_worldlog(path)
        assert f"{path}:2: not a world-log record" in str(excinfo.value)

    def test_exit_2_from_cli(self, tmp_path, capsys):
        """A malformed artifact is an environment failure: exit 2."""
        from repro.cli import main

        path = self._write(tmp_path, "garbage.jsonl", "not json\n")
        assert main(["trace", path]) == 2
        message = capsys.readouterr().err
        assert "not a ledger event" in message
