"""Tests for the exception hierarchy."""

import pytest

from repro.errors import (
    AdversaryError,
    ModelViolation,
    ProtocolViolation,
    ReproError,
    SignatureError,
    TrivialProblemError,
    UnsolvableProblemError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exception",
        [
            ModelViolation,
            ProtocolViolation,
            AdversaryError,
            SignatureError,
            UnsolvableProblemError,
            TrivialProblemError,
        ],
    )
    def test_all_derive_from_repro_error(self, exception):
        assert issubclass(exception, ReproError)
        with pytest.raises(ReproError):
            raise exception("boom")

    def test_model_vs_protocol_distinct(self):
        """Broken traces and broken algorithms are different failures."""
        assert not issubclass(ModelViolation, ProtocolViolation)
        assert not issubclass(ProtocolViolation, ModelViolation)

    def test_catchable_individually(self):
        with pytest.raises(TrivialProblemError):
            raise TrivialProblemError("t")
        # But not as each other:
        with pytest.raises(TrivialProblemError):
            try:
                raise TrivialProblemError("t")
            except UnsolvableProblemError:  # pragma: no cover
                pytest.fail("wrong class caught")
