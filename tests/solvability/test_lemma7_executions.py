"""Execution-level tests of Lemma 7 and Lemma 8 (necessity of CC).

Lemma 7: in any execution corresponding to input configuration ``c``, a
correct decision lies in ``∩_{c' ∈ Cnt(c)} val(c')``.  Lemma 8 derives the
necessity of CC from it.  These tests run *real algorithms* and check
their decisions against the containment intersection — the empirical face
of the necessity direction of Theorem 4.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.protocols.byzantine_strategies import garbage, mute, two_faced
from repro.protocols.dolev_strong import dolev_strong_spec
from repro.protocols.strong_consensus import (
    authenticated_strong_consensus_spec,
)
from repro.sim.adversary import ByzantineAdversary, CrashAdversary
from repro.validity.containment import admissible_under_containment
from repro.validity.input_config import InputConfig
from repro.validity.standard import (
    byzantine_broadcast_problem,
    strong_consensus_problem,
)


def input_conf_of(execution):
    return InputConfig.from_mapping(
        execution.n,
        execution.t,
        {
            pid: execution.proposals()[pid]
            for pid in execution.correct
        },
    )


def correct_decision(execution):
    agreed = {execution.decision(pid) for pid in execution.correct}
    assert len(agreed) == 1
    return next(iter(agreed))


class TestLemma7OnStrongConsensus:
    def test_fault_free_decisions_in_intersection(self):
        n, t = 5, 2
        problem = strong_consensus_problem(n, t)
        spec = authenticated_strong_consensus_spec(n, t)
        for proposals in ([0] * n, [1] * n, [0, 1, 0, 1, 1]):
            execution = spec.run(list(proposals))
            decided = correct_decision(execution)
            admissible = admissible_under_containment(
                problem, input_conf_of(execution)
            )
            assert decided in admissible

    @settings(max_examples=15, deadline=None)
    @given(
        proposals=st.lists(st.integers(0, 1), min_size=5, max_size=5),
        corrupted=st.sets(st.integers(0, 4), min_size=1, max_size=2),
        pick=st.sampled_from(["mute", "garbage", "two-faced", "crash"]),
    )
    def test_byzantine_decisions_in_intersection(
        self, proposals, corrupted, pick
    ):
        """Property: Lemma 7 holds against live adversaries — no
        decision ever leaves the containment intersection of the actual
        input configuration."""
        n, t = 5, 2
        problem = strong_consensus_problem(n, t)
        spec = authenticated_strong_consensus_spec(n, t)
        if pick == "crash":
            adversary = CrashAdversary(
                {pid: 1 + pid % 3 for pid in corrupted}
            )
        else:
            strategies = {
                "mute": mute(),
                "garbage": garbage(),
                "two-faced": two_faced(0, 1),
            }
            adversary = ByzantineAdversary(
                corrupted,
                {pid: strategies[pick] for pid in corrupted},
            )
        execution = spec.run(proposals, adversary)
        decided = correct_decision(execution)
        admissible = admissible_under_containment(
            problem, input_conf_of(execution)
        )
        assert decided in admissible


class TestLemma7OnBroadcast:
    def test_sender_validity_via_containment(self):
        """With the sender correct, the intersection is the singleton of
        its proposal — Dolev–Strong must land exactly there."""
        n, t = 4, 1
        problem = byzantine_broadcast_problem(n, t)
        spec = dolev_strong_spec(n, t)
        execution = spec.run([1, 0, 0, 0], CrashAdversary({2: 1}))
        decided = correct_decision(execution)
        admissible = admissible_under_containment(
            problem, input_conf_of(execution)
        )
        assert admissible == {1}
        assert decided == 1

    def test_faulty_sender_keeps_wide_intersection(self):
        n, t = 4, 1
        problem = byzantine_broadcast_problem(n, t)
        spec = dolev_strong_spec(n, t)
        adversary = ByzantineAdversary({0}, {0: mute()})
        execution = spec.run([1, 0, 0, 0], adversary)
        decided = correct_decision(execution)
        admissible = admissible_under_containment(
            problem, input_conf_of(execution)
        )
        # Every output (including the public default) stays admissible.
        assert decided in admissible
