"""Tests for the containment condition and Γ (Definition 3)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import UnsolvableProblemError
from repro.solvability.cc import (
    containment_condition,
    satisfies_cc,
    verify_gamma,
)
from repro.validity.input_config import InputConfig, enumerate_input_configs
from repro.validity.property import problem_from_table
from repro.validity.standard import (
    byzantine_broadcast_problem,
    constant_problem,
    strong_consensus_problem,
    weak_consensus_problem,
)


class TestStandardProblems:
    def test_weak_consensus_satisfies_cc(self):
        report = containment_condition(weak_consensus_problem(4, 1))
        assert report.holds
        assert not report.failures

    def test_broadcast_satisfies_cc(self):
        assert satisfies_cc(byzantine_broadcast_problem(4, 1))

    def test_strong_consensus_cc_depends_on_resilience(self):
        assert satisfies_cc(strong_consensus_problem(5, 2))
        assert not satisfies_cc(strong_consensus_problem(4, 2))

    def test_failure_report_names_configurations(self):
        report = containment_condition(strong_consensus_problem(4, 2))
        assert not report.holds
        assert report.failures
        # The paper's mixed configuration must be among the failures.
        mixed = InputConfig.full(4, 2, [0, 0, 1, 1])
        assert mixed in report.failures

    def test_trivial_problem_satisfies_cc(self):
        """A trivial problem always has Γ = the constant witness."""
        report = containment_condition(constant_problem(4, 1, value=1))
        assert report.holds
        assert set(report.gamma.values()) == {1}


class TestGammaFunction:
    def test_gamma_total_on_enumerated_configs(self):
        problem = weak_consensus_problem(3, 1)
        gamma = containment_condition(problem).gamma_fn()
        for config in problem.input_configs():
            assert gamma(config) in problem.admissible(config)

    def test_gamma_respects_definition3(self):
        problem = weak_consensus_problem(3, 1)
        report = containment_condition(problem)
        assert verify_gamma(problem, report.gamma_fn()) == []

    def test_gamma_fn_raises_when_cc_fails(self):
        report = containment_condition(strong_consensus_problem(4, 2))
        with pytest.raises(UnsolvableProblemError, match="containment"):
            report.gamma_fn()

    def test_gamma_unknown_config_raises(self):
        problem = weak_consensus_problem(3, 1)
        gamma = containment_condition(problem).gamma_fn()
        foreign = InputConfig.full(3, 1, ["x", "y", "z"])
        with pytest.raises(KeyError, match="not defined"):
            gamma(foreign)

    def test_verify_gamma_catches_bad_assignments(self):
        problem = weak_consensus_problem(3, 1)
        report = containment_condition(problem)
        broken = dict(report.gamma)
        unanimous_zero = InputConfig.full(3, 1, [0, 0, 0])
        broken[unanimous_zero] = 1  # inadmissible under the config itself
        violations = verify_gamma(problem, broken)
        assert violations
        assert "inadmissible" in violations[0]

    def test_verify_gamma_catches_missing_entries(self):
        problem = weak_consensus_problem(3, 1)
        violations = verify_gamma(problem, {})
        assert all("undefined" in entry for entry in violations)
        assert violations


@st.composite
def random_problems(draw):
    """Arbitrary table-backed binary problems on (n=3, t=1)."""
    n, t = 3, 1
    configs = list(enumerate_input_configs(n, t, (0, 1)))
    table = {
        config: frozenset(
            draw(
                st.sampled_from(
                    [frozenset({0}), frozenset({1}), frozenset({0, 1})]
                )
            )
        )
        for config in configs
    }
    return problem_from_table("random", n, t, (0, 1), (0, 1), table)


class TestCCProperties:
    @settings(max_examples=40, deadline=None)
    @given(random_problems())
    def test_cc_report_internally_consistent(self, problem):
        """Property: whenever the decision procedure claims CC, the Γ it
        built passes the independent Definition-3 verifier; whenever it
        refuses, some configuration's intersection really is empty."""
        report = containment_condition(problem)
        if report.holds:
            assert verify_gamma(problem, report.gamma_fn()) == []
        else:
            config = report.failures[0]
            from repro.validity.containment import (
                admissible_under_containment,
            )

            assert (
                admissible_under_containment(problem, config)
                == frozenset()
            )

    @settings(max_examples=40, deadline=None)
    @given(random_problems())
    def test_trivial_implies_cc(self, problem):
        """Property: triviality implies CC (the constant is a Γ)."""
        if problem.is_trivial():
            assert satisfies_cc(problem)
