"""Tests for Theorem 5: strong consensus needs n > 2t."""

import pytest

from repro.solvability.strong_consensus import (
    counterexample_certificate,
    paper_counterexample,
    strong_consensus_cc,
    sweep_boundary,
)
from repro.validity.standard import strong_consensus_problem


class TestBoundary:
    @pytest.mark.parametrize(
        "n,t,expected",
        [
            (3, 1, True),
            (4, 1, True),
            (4, 2, False),
            (5, 2, True),
            (6, 3, False),
            (2, 1, False),
            (7, 3, True),
        ],
    )
    def test_cc_iff_n_over_2t(self, n, t, expected):
        assert strong_consensus_cc(n, t) == expected
        assert expected == (n > 2 * t)

    def test_sweep_matches_theorem_everywhere(self):
        points = sweep_boundary(list(range(2, 7)), list(range(1, 6)))
        assert points  # the grid is non-empty
        assert all(point.matches_theorem for point in points)

    def test_sweep_skips_illegal_pairs(self):
        points = sweep_boundary([3], [3, 4])
        assert points == []


class TestCounterexample:
    def test_paper_configuration_shape(self):
        config = paper_counterexample(4, 2)
        assert config.proposals_multiset() == [0, 0, 1, 1]

    def test_certificate_is_disjoint_forcing_pair(self):
        problem = strong_consensus_problem(4, 2)
        mixed, zeros, ones = counterexample_certificate(4, 2)
        assert mixed.contains(zeros)
        assert mixed.contains(ones)
        assert problem.admissible(zeros) == {0}
        assert problem.admissible(ones) == {1}
        assert problem.admissible(zeros) & problem.admissible(ones) == (
            frozenset()
        )

    def test_certificate_refused_when_solvable(self):
        with pytest.raises(ValueError, match="no counterexample"):
            counterexample_certificate(5, 2)
