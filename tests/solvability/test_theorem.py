"""Tests for the general solvability theorem (Theorem 4)."""

from repro.solvability.theorem import classify, classify_many
from repro.validity.standard import (
    byzantine_broadcast_problem,
    constant_problem,
    correct_proposal_problem,
    interactive_consistency_problem,
    strong_consensus_problem,
    weak_consensus_problem,
)


class TestClassification:
    def test_weak_consensus_solvable_everywhere_cc_holds(self):
        report = classify(weak_consensus_problem(4, 1))
        assert not report.trivial
        assert report.cc.holds
        assert report.authenticated_solvable
        assert report.unauthenticated_solvable  # 4 > 3·1

    def test_unauthenticated_needs_n_over_3t(self):
        report = classify(weak_consensus_problem(6, 2))
        assert report.authenticated_solvable
        assert not report.unauthenticated_solvable  # 6 <= 6

    def test_strong_consensus_unsolvable_at_n_2t(self):
        report = classify(strong_consensus_problem(4, 2))
        assert not report.trivial
        assert not report.cc.holds
        assert not report.authenticated_solvable
        assert not report.unauthenticated_solvable

    def test_trivial_problems_always_solvable(self):
        report = classify(constant_problem(4, 3, value=0))
        assert report.trivial
        assert report.authenticated_solvable
        assert report.unauthenticated_solvable  # constant needs no msgs

    def test_broadcast_solvable_for_large_t_authenticated_only(self):
        """Dolev–Strong territory: t = n - 1 is fine with signatures."""
        report = classify(byzantine_broadcast_problem(4, 3))
        assert report.cc.holds
        assert report.authenticated_solvable
        assert not report.unauthenticated_solvable

    def test_interactive_consistency_cc(self):
        report = classify(interactive_consistency_problem(3, 1))
        assert report.cc.holds
        assert report.authenticated_solvable

    def test_correct_proposal_boundary(self):
        """Correct-proposal validity (binary) fails CC once n <= 2t,
        the same pigeonhole as Theorem 5."""
        assert classify(correct_proposal_problem(5, 2)).cc.holds
        assert not classify(correct_proposal_problem(4, 2)).cc.holds

    def test_render_mentions_every_column(self):
        text = classify(weak_consensus_problem(4, 1)).render()
        for token in ("trivial=", "CC=", "auth=", "unauth="):
            assert token in text

    def test_classify_many(self):
        reports = classify_many(
            [
                weak_consensus_problem(4, 1),
                strong_consensus_problem(4, 1),
            ]
        )
        assert [report.problem_name for report in reports] == [
            "weak-consensus",
            "strong-consensus",
        ]
