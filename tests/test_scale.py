"""Paper-regime scale tests: the machinery at t in the tens.

The unit suite runs at toy sizes for speed; these confirm nothing breaks
structurally when t grows into the paper's ``t >= 8, divisible by 8``
regime with the full t/4 partition sizing.
"""

from repro.lowerbound.driver import attack_weak_consensus
from repro.lowerbound.partition import paper_partition
from repro.protocols.dolev_strong import dolev_strong_spec
from repro.protocols.subquadratic import (
    leader_echo_spec,
    ring_token_spec,
)
from repro.sim.metrics import dolev_reischuk_floor


class TestPaperRegimeScale:
    def test_attack_at_t_32_with_quarter_partitions(self):
        n, t = 40, 32
        partition = paper_partition(n, t)
        assert len(partition.group_b) == 8
        outcome = attack_weak_consensus(
            ring_token_spec(n, t), partition
        )
        assert outcome.found_violation
        assert len(outcome.witness.execution.faulty) <= t

    def test_attack_at_t_64(self):
        n, t = 72, 64
        outcome = attack_weak_consensus(
            leader_echo_spec(n, t), paper_partition(n, t)
        )
        assert outcome.found_violation
        # At this scale the cheater is genuinely below the floor.
        assert outcome.bound.observed < dolev_reischuk_floor(t) * 32

    def test_cheater_below_floor_at_scale(self):
        t = 128
        spec = leader_echo_spec(t + 8, t)
        messages = spec.run_uniform(0).message_complexity()
        assert messages < dolev_reischuk_floor(t)

    def test_dolev_strong_at_n_48(self):
        spec = dolev_strong_spec(48, 16)
        execution = spec.run_uniform("v")
        assert set(execution.correct_decisions().values()) == {"v"}
        assert execution.message_complexity() >= dolev_reischuk_floor(
            16
        )
