"""Round trips for the records crash-resume replays.

A resumed sweep rebuilds each recorded cell's ``JobResult`` from JSON
alone; the rebuilt object must be *equal* to what the original worker
shipped (outcome equality deliberately excludes wall-clock and the live
profile/certificate objects — the canonical certificate bytes travel
separately and must round-trip byte-identically).
"""

from repro.parallel.jobs import AttackJob, MeasureJob, execute_job
from repro.worldlog.codec import (
    decode_job,
    decode_job_result,
    encode_job,
    encode_job_result,
)


class TestJobCodec:
    def test_attack_job_roundtrip(self):
        job = AttackJob(
            builder="silent",
            n=8,
            t=4,
            verify=False,
            check=False,
            early_stop=False,
            reuse=False,
            profile=True,
            certify=True,
            ledger=True,
        )
        assert decode_job(encode_job(job)) == job

    def test_measure_job_roundtrip(self):
        job = MeasureJob(builder="weak-consensus", n=8, t=4, ledger=True)
        assert decode_job(encode_job(job)) == job

    def test_defaults_roundtrip(self):
        for job in (
            AttackJob("ring-token", 12, 8),
            MeasureJob("ic", 8, 4),
        ):
            assert decode_job(encode_job(job)) == job


class TestJobResultCodec:
    def test_attack_result_roundtrip(self):
        result = execute_job(
            AttackJob("silent", 8, 4, certify=True, ledger=True)
        )
        decoded = decode_job_result(encode_job_result(result))
        assert decoded.key == result.key
        # AttackOutcome equality covers witness, executions, bound,
        # partition, log — the full deterministic outcome.
        assert decoded.value == result.value
        assert decoded.wall_seconds == result.wall_seconds
        assert decoded.cache == result.cache
        assert decoded.rounds_simulated == result.rounds_simulated
        assert decoded.rounds_baseline == result.rounds_baseline
        # Certificate bytes round-trip byte-identically.
        assert decoded.certificate == result.certificate
        assert decoded.events is not None
        assert [event.to_json() for event in decoded.events] == [
            event.to_json() for event in result.events
        ]

    def test_measure_result_roundtrip(self):
        result = execute_job(MeasureJob("weak-consensus", 8, 4))
        decoded = decode_job_result(encode_job_result(result))
        assert decoded.value == result.value
        assert decoded.cache == result.cache
        assert decoded.certificate is None
        assert decoded.events is None

    def test_encoding_is_json_stable(self):
        """Encoding the same result twice yields identical JSON."""
        import json

        result = execute_job(AttackJob("silent", 8, 4, certify=True))
        first = json.dumps(encode_job_result(result), sort_keys=True)
        second = json.dumps(encode_job_result(result), sort_keys=True)
        assert first == second
