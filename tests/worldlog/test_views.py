"""Derived views are byte-identical to the legacy writers' output.

Two directions, one run each:

* *record → view*: the artifacts derived from a world log match what
  the legacy writer would have persisted for the same run, byte for
  byte;
* *legacy → record → view* (``repro log import``): a legacy artifact
  folded into a world log derives back to its original bytes.
"""

import json
import os

from repro.lowerbound.driver import attack_weak_consensus
from repro.obs.ledger import RunLedger
from repro.obs.tracer import LedgerTracer
from repro.protocols.subquadratic import silent_cheater_spec
from repro.worldlog import WorldLog, derive_views, read_worldlog
from repro.worldlog.legacy import import_legacy
from repro.worldlog.views import (
    CHECKPOINTS_SCHEMA,
    certificate_texts,
    checkpoint_manifest,
    ledger_lines,
)


def _read(path):
    with open(path, encoding="utf-8") as handle:
        return handle.read()


class TestDerivedViews:
    def test_ledger_view_byte_identical_to_run_ledger_write(
        self, tmp_path
    ):
        log_path = str(tmp_path / "run.worldlog")
        legacy_path = str(tmp_path / "run.jsonl")
        with WorldLog.create(log_path, run_id="r") as log:
            ledger = RunLedger(run_id="r", sink=log.record_event)
            attack_weak_consensus(
                silent_cheater_spec(8, 4), tracer=LedgerTracer(ledger)
            )
            ledger.write(legacy_path)
        records = read_worldlog(log_path)
        written = derive_views(records, str(tmp_path / "views"))
        assert _read(written["ledger"][0]) == _read(legacy_path)

    def test_certificate_view_byte_identical_to_artifact(self, tmp_path):
        log_path = str(tmp_path / "run.worldlog")
        with WorldLog.create(log_path, run_id="r") as log:
            outcome = attack_weak_consensus(
                silent_cheater_spec(8, 4), certify=True, worldlog=log
            )
        records = read_worldlog(log_path)
        texts = certificate_texts(records)
        label = f"{outcome.protocol}-n8-t4"
        assert texts == {label: outcome.certificate.dumps()}
        written = derive_views(records, str(tmp_path / "views"))
        (cert_path,) = written["certificates"]
        assert os.path.basename(cert_path) == f"{label}.cert.json"
        assert _read(cert_path).encode() == outcome.certificate.to_bytes()

    def test_checkpoint_records_land_in_manifest(self, tmp_path):
        log_path = str(tmp_path / "run.worldlog")
        with WorldLog.create(log_path, run_id="r") as log:
            attack_weak_consensus(
                silent_cheater_spec(8, 4), worldlog=log
            )
        manifest = checkpoint_manifest(read_worldlog(log_path))
        assert manifest["schema"] == CHECKPOINTS_SCHEMA
        assert manifest["checkpoints"], "reuse stored no checkpointer"
        for note in manifest["checkpoints"]:
            assert note["protocol"] == "silent-cheater"
            assert note["enabled"] is True

    def test_ledger_view_reads_after_last_gather_marker(self, tmp_path):
        """Crash-mid-gather safety: only the final splice survives."""
        log_path = str(tmp_path / "run.worldlog")
        with WorldLog.create(log_path, run_id="r") as log:
            ledger = RunLedger(run_id="r", sink=log.record_event)
            ledger.emit("counter", "stale.splice", value=1)
            log.append("gather.start", {"cells": 1})
            ledger.emit("counter", "final.splice", value=1)
        lines = ledger_lines(read_worldlog(log_path))
        names = [json.loads(line)["name"] for line in lines]
        assert names == ["final.splice"]


class TestLegacyImport:
    def _legacy_artifacts(self, tmp_path):
        from repro.obs.bench import BENCH_SCHEMA
        from repro.obs.report import append_trend

        paths = {}
        # ledger: the current writer's bytes
        ledger = RunLedger(run_id="legacy", worker_id=1)
        ledger.emit("counter", "cache.hits", value=3, cell_id="c")
        ledger.emit("gauge", "bound.vs_floor", value=1.5)
        paths["ledger"] = str(tmp_path / "run.jsonl")
        ledger.write(paths["ledger"])
        # certificate: a real attack artifact
        outcome = attack_weak_consensus(
            silent_cheater_spec(8, 4), certify=True
        )
        paths["certificate"] = str(
            tmp_path / "silent-cheater-n8-t4.cert.json"
        )
        with open(paths["certificate"], "wb") as handle:
            handle.write(outcome.certificate.to_bytes())
        # bench: the trajectory document format append_points writes
        point = {
            "schema": BENCH_SCHEMA,
            "suite": "demo",
            "kernel": "k",
            "wall_seconds_median": 0.25,
        }
        paths["bench"] = str(tmp_path / "BENCH_demo.json")
        with open(paths["bench"], "w", encoding="utf-8") as handle:
            json.dump(
                {"schema": BENCH_SCHEMA, "points": [point]},
                handle,
                indent=2,
                sort_keys=True,
            )
            handle.write("\n")
        # trend: the current appender's bytes
        paths["trend"] = str(tmp_path / "trend.jsonl")
        append_trend(
            paths["trend"],
            {
                "ts": 1.0,
                "label": "canary",
                "wall_seconds": 0.5,
                "rounds_simulated": 10,
                "events": 3,
            },
        )
        return paths

    def test_roundtrip_byte_identical(self, tmp_path):
        paths = self._legacy_artifacts(tmp_path)
        log_path = str(tmp_path / "imported.worldlog")
        counts = import_legacy(list(paths.values()), log_path)
        assert counts == {
            "ledger": 2,
            "certificate": 1,
            "bench": 1,
            "trend": 1,
        }
        written = derive_views(
            read_worldlog(log_path), str(tmp_path / "views")
        )
        assert _read(written["ledger"][0]) == _read(paths["ledger"])
        assert _read(written["certificates"][0]) == _read(
            paths["certificate"]
        )
        assert _read(written["bench"][0]) == _read(paths["bench"])
        assert _read(written["trend"][0]) == _read(paths["trend"])

    def test_unknown_family_rejected_before_writing(self, tmp_path):
        import pytest

        from repro.errors import ArtifactError

        good = str(tmp_path / "trend.jsonl")
        with open(good, "w", encoding="utf-8") as handle:
            handle.write(
                json.dumps({"label": "x", "wall_seconds": 0.1}) + "\n"
            )
        bad = str(tmp_path / "mystery.json")
        with open(bad, "w", encoding="utf-8") as handle:
            handle.write('{"what": "ever"}')
        out = str(tmp_path / "out.worldlog")
        with pytest.raises(ArtifactError):
            import_legacy([good, bad], out)
        # The sniff pass runs first: nothing was partially written.
        assert not os.path.exists(out)


class TestJobsView:
    """The service-era jobs view: one manifest entry per job key."""

    def _record(self, tick, kind, payload):
        from repro.worldlog.record import Record

        return Record(
            tick=tick,
            kind=kind,
            payload=payload,
            run_id="r",
            worker_id=1,
        )

    def _records(self):
        return [
            self._record(
                1,
                "job.submitted",
                {
                    "key": "aa",
                    "tenant": "alice",
                    "priority": 2,
                    "job": {"kind": "classify"},
                },
            ),
            self._record(2, "job.start", {"key": "aa"}),
            self._record(3, "job.result", {"key": "aa", "result": {}}),
            self._record(
                4,
                "job.submitted",
                {
                    "key": "bb",
                    "tenant": "bob",
                    "priority": 0,
                    "job": {"kind": "attack"},
                },
            ),
            self._record(5, "job.start", {"key": "bb"}),
            self._record(
                6,
                "job.error",
                {
                    "key": "bb",
                    "error_kind": "exception",
                    "message": "boom",
                },
            ),
        ]

    def test_manifest_folds_the_lifecycle(self):
        from repro.worldlog.views import JOBS_SCHEMA, jobs_manifest

        manifest = jobs_manifest(self._records())
        assert manifest["schema"] == JOBS_SCHEMA
        done, failed = manifest["jobs"]
        assert done["key"] == "aa"
        assert done["state"] == "done"
        assert (done["submitted_tick"], done["terminal_tick"]) == (1, 3)
        assert failed["state"] == "failed"
        assert failed["error_kind"] == "exception"
        assert failed["message"] == "boom"

    def test_started_but_unfinished_job_shows_running(self):
        from repro.worldlog.views import jobs_manifest

        manifest = jobs_manifest(self._records()[:2])
        (entry,) = manifest["jobs"]
        assert entry["state"] == "running"
        assert entry["terminal_tick"] is None

    def test_derive_views_writes_jobs_json(self, tmp_path):
        out_dir = str(tmp_path / "views")
        written = derive_views(self._records(), out_dir)
        assert written["jobs"] == [os.path.join(out_dir, "jobs.json")]
        document = json.loads(_read(written["jobs"][0]))
        assert document["schema"] == "repro.jobs/v1"
        assert [entry["key"] for entry in document["jobs"]] == [
            "aa",
            "bb",
        ]

    def test_logs_without_jobs_derive_no_jobs_view(self, tmp_path):
        written = derive_views([], str(tmp_path / "empty"))
        assert "jobs" not in written
