"""Derived views are byte-identical to the legacy writers' output.

Two directions, one run each:

* *record → view*: the artifacts derived from a world log match what
  the legacy writer would have persisted for the same run, byte for
  byte;
* *legacy → record → view* (``repro log import``): a legacy artifact
  folded into a world log derives back to its original bytes.
"""

import json
import os

from repro.lowerbound.driver import attack_weak_consensus
from repro.obs.ledger import RunLedger
from repro.obs.tracer import LedgerTracer
from repro.protocols.subquadratic import silent_cheater_spec
from repro.worldlog import WorldLog, derive_views, read_worldlog
from repro.worldlog.legacy import import_legacy
from repro.worldlog.views import (
    CHECKPOINTS_SCHEMA,
    certificate_texts,
    checkpoint_manifest,
    ledger_lines,
)


def _read(path):
    with open(path, encoding="utf-8") as handle:
        return handle.read()


class TestDerivedViews:
    def test_ledger_view_byte_identical_to_run_ledger_write(
        self, tmp_path
    ):
        log_path = str(tmp_path / "run.worldlog")
        legacy_path = str(tmp_path / "run.jsonl")
        with WorldLog.create(log_path, run_id="r") as log:
            ledger = RunLedger(run_id="r", sink=log.record_event)
            attack_weak_consensus(
                silent_cheater_spec(8, 4), tracer=LedgerTracer(ledger)
            )
            ledger.write(legacy_path)
        records = read_worldlog(log_path)
        written = derive_views(records, str(tmp_path / "views"))
        assert _read(written["ledger"][0]) == _read(legacy_path)

    def test_certificate_view_byte_identical_to_artifact(self, tmp_path):
        log_path = str(tmp_path / "run.worldlog")
        with WorldLog.create(log_path, run_id="r") as log:
            outcome = attack_weak_consensus(
                silent_cheater_spec(8, 4), certify=True, worldlog=log
            )
        records = read_worldlog(log_path)
        texts = certificate_texts(records)
        label = f"{outcome.protocol}-n8-t4"
        assert texts == {label: outcome.certificate.dumps()}
        written = derive_views(records, str(tmp_path / "views"))
        (cert_path,) = written["certificates"]
        assert os.path.basename(cert_path) == f"{label}.cert.json"
        assert _read(cert_path).encode() == outcome.certificate.to_bytes()

    def test_checkpoint_records_land_in_manifest(self, tmp_path):
        log_path = str(tmp_path / "run.worldlog")
        with WorldLog.create(log_path, run_id="r") as log:
            attack_weak_consensus(
                silent_cheater_spec(8, 4), worldlog=log
            )
        manifest = checkpoint_manifest(read_worldlog(log_path))
        assert manifest["schema"] == CHECKPOINTS_SCHEMA
        assert manifest["checkpoints"], "reuse stored no checkpointer"
        for note in manifest["checkpoints"]:
            assert note["protocol"] == "silent-cheater"
            assert note["enabled"] is True

    def test_ledger_view_reads_after_last_gather_marker(self, tmp_path):
        """Crash-mid-gather safety: only the final splice survives."""
        log_path = str(tmp_path / "run.worldlog")
        with WorldLog.create(log_path, run_id="r") as log:
            ledger = RunLedger(run_id="r", sink=log.record_event)
            ledger.emit("counter", "stale.splice", value=1)
            log.append("gather.start", {"cells": 1})
            ledger.emit("counter", "final.splice", value=1)
        lines = ledger_lines(read_worldlog(log_path))
        names = [json.loads(line)["name"] for line in lines]
        assert names == ["final.splice"]


class TestLegacyImport:
    def _legacy_artifacts(self, tmp_path):
        from repro.obs.bench import BENCH_SCHEMA
        from repro.obs.report import append_trend

        paths = {}
        # ledger: the current writer's bytes
        ledger = RunLedger(run_id="legacy", worker_id=1)
        ledger.emit("counter", "cache.hits", value=3, cell_id="c")
        ledger.emit("gauge", "bound.vs_floor", value=1.5)
        paths["ledger"] = str(tmp_path / "run.jsonl")
        ledger.write(paths["ledger"])
        # certificate: a real attack artifact
        outcome = attack_weak_consensus(
            silent_cheater_spec(8, 4), certify=True
        )
        paths["certificate"] = str(
            tmp_path / "silent-cheater-n8-t4.cert.json"
        )
        with open(paths["certificate"], "wb") as handle:
            handle.write(outcome.certificate.to_bytes())
        # bench: the trajectory document format append_points writes
        point = {
            "schema": BENCH_SCHEMA,
            "suite": "demo",
            "kernel": "k",
            "wall_seconds_median": 0.25,
        }
        paths["bench"] = str(tmp_path / "BENCH_demo.json")
        with open(paths["bench"], "w", encoding="utf-8") as handle:
            json.dump(
                {"schema": BENCH_SCHEMA, "points": [point]},
                handle,
                indent=2,
                sort_keys=True,
            )
            handle.write("\n")
        # trend: the current appender's bytes
        paths["trend"] = str(tmp_path / "trend.jsonl")
        append_trend(
            paths["trend"],
            {
                "ts": 1.0,
                "label": "canary",
                "wall_seconds": 0.5,
                "rounds_simulated": 10,
                "events": 3,
            },
        )
        return paths

    def test_roundtrip_byte_identical(self, tmp_path):
        paths = self._legacy_artifacts(tmp_path)
        log_path = str(tmp_path / "imported.worldlog")
        counts = import_legacy(list(paths.values()), log_path)
        assert counts == {
            "ledger": 2,
            "certificate": 1,
            "bench": 1,
            "trend": 1,
        }
        written = derive_views(
            read_worldlog(log_path), str(tmp_path / "views")
        )
        assert _read(written["ledger"][0]) == _read(paths["ledger"])
        assert _read(written["certificates"][0]) == _read(
            paths["certificate"]
        )
        assert _read(written["bench"][0]) == _read(paths["bench"])
        assert _read(written["trend"][0]) == _read(paths["trend"])

    def test_unknown_family_rejected_before_writing(self, tmp_path):
        import pytest

        from repro.errors import ArtifactError

        good = str(tmp_path / "trend.jsonl")
        with open(good, "w", encoding="utf-8") as handle:
            handle.write(
                json.dumps({"label": "x", "wall_seconds": 0.1}) + "\n"
            )
        bad = str(tmp_path / "mystery.json")
        with open(bad, "w", encoding="utf-8") as handle:
            handle.write('{"what": "ever"}')
        out = str(tmp_path / "out.worldlog")
        with pytest.raises(ArtifactError):
            import_legacy([good, bad], out)
        # The sniff pass runs first: nothing was partially written.
        assert not os.path.exists(out)
