"""The record envelope and the append-only store.

Covers the two load-bearing guarantees: appends are write-through (a
crash leaves at most one torn final line) and reads are torn-tail-safe
(the tail is dropped; any *other* malformed line is corruption and
raises the uniform artifact diagnostic).
"""

import json

import pytest

from repro.errors import ArtifactError
from repro.worldlog import (
    WORLDLOG_SCHEMA,
    Record,
    WorldLog,
    is_worldlog,
    log_order_signature,
    read_worldlog,
)


class TestRecord:
    def test_roundtrip(self):
        record = Record(
            tick=3,
            kind="cell.result",
            payload={"index": 1, "name": "x"},
            run_id="r",
            cell_id="cell",
            worker_id=7,
        )
        assert Record.from_json(record.to_json()) == record

    def test_envelope_key_order_is_fixed(self):
        record = Record(tick=0, kind="log.open", payload={}, run_id="r")
        keys = list(json.loads(record.to_json()))
        assert keys == [
            "tick",
            "kind",
            "run_id",
            "cell_id",
            "worker_id",
            "payload",
        ]

    def test_payload_rendered_verbatim(self):
        """The envelope embeds the payload's own canonical rendering.

        This is what makes derived views byte-identical: re-dumping
        ``record.payload`` reproduces exactly the bytes that were
        appended.
        """
        payload = {"b": 1, "a": [None, True, "x"]}
        record = Record(tick=1, kind="trend.point", payload=payload)
        line = record.to_json()
        assert json.dumps(payload) in line

    def test_from_json_rejects_non_records(self):
        with pytest.raises((ValueError, KeyError, TypeError)):
            Record.from_json("[1, 2, 3]")
        with pytest.raises((ValueError, KeyError, TypeError)):
            Record.from_json('{"tick": "zero", "kind": "x"}')

    def test_order_signature_triple(self):
        records = [
            Record(tick=0, kind="log.open", payload={}),
            Record(
                tick=1,
                kind="ledger.event",
                payload={"name": "cell.start"},
                cell_id="c1",
            ),
            Record(tick=2, kind="cell.result", payload={}, cell_id="c1"),
        ]
        assert log_order_signature(records) == [
            ("log.open", None, None),
            ("ledger.event", "cell.start", "c1"),
            ("cell.result", None, "c1"),
        ]


class TestWorldLog:
    def test_create_appends_header(self, tmp_path):
        path = str(tmp_path / "run.worldlog")
        with WorldLog.create(path, run_id="r") as log:
            log.append("trend.point", {"label": "x"})
        records = read_worldlog(path)
        assert records[0].kind == "log.open"
        assert records[0].payload == {"schema": WORLDLOG_SCHEMA}
        assert [record.tick for record in records] == [0, 1]

    def test_append_is_write_through(self, tmp_path):
        """Every appended record is on disk before append returns."""
        path = str(tmp_path / "run.worldlog")
        log = WorldLog.create(path, run_id="r")
        log.append("trend.point", {"label": "x"})
        # Read *without* closing the writer: a crash at this point must
        # not lose the record.
        assert len(read_worldlog(path)) == 2
        log.close()

    def test_torn_tail_dropped(self, tmp_path):
        path = str(tmp_path / "run.worldlog")
        with WorldLog.create(path, run_id="r") as log:
            log.append("trend.point", {"label": "x"})
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"tick": 2, "kind": "cell.re')  # killed writer
        assert len(read_worldlog(path)) == 2

    def test_malformed_middle_line_raises(self, tmp_path):
        path = str(tmp_path / "run.worldlog")
        with WorldLog.create(path, run_id="r") as log:
            log.append("trend.point", {"label": "x"})
        text = open(path, encoding="utf-8").read()
        lines = text.splitlines()
        lines.insert(1, "garbage")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("\n".join(lines) + "\n")
        with pytest.raises(ArtifactError) as excinfo:
            read_worldlog(path)
        assert f"{path}:2: not a world-log record" in str(excinfo.value)

    def test_resume_truncates_tail_and_continues_ticks(self, tmp_path):
        path = str(tmp_path / "run.worldlog")
        with WorldLog.create(path, run_id="r") as log:
            log.append("trend.point", {"label": "x"})
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"tick": 2, "kind": "cell.re')
        with WorldLog.resume(path) as log:
            assert log.run_id == "r"
            assert log.next_tick == 2
            log.append("trend.point", {"label": "y"})
        records = read_worldlog(path)
        assert [record.tick for record in records] == [0, 1, 2]
        assert records[-1].payload == {"label": "y"}

    def test_not_a_world_log(self, tmp_path):
        # A legacy ledger line is not a record envelope: file:line.
        path = tmp_path / "ledger.jsonl"
        path.write_text('{"ts": 1, "kind": "counter", "name": "x"}\n')
        with pytest.raises(ArtifactError) as excinfo:
            read_worldlog(str(path))
        assert "not a world-log record" in str(excinfo.value)
        # Valid record envelopes without the log.open header: rejected.
        path = tmp_path / "headless.worldlog"
        record = Record(tick=0, kind="trend.point", payload={})
        path.write_text(record.to_json() + "\n")
        with pytest.raises(ArtifactError) as excinfo:
            read_worldlog(str(path))
        assert "not a world log" in str(excinfo.value)

    def test_is_worldlog_sniff(self, tmp_path):
        log_path = str(tmp_path / "run.worldlog")
        WorldLog.create(log_path, run_id="r").close()
        legacy = tmp_path / "ledger.jsonl"
        legacy.write_text('{"ts": 1, "kind": "counter", "name": "x"}\n')
        assert is_worldlog(log_path)
        assert not is_worldlog(str(legacy))
        assert not is_worldlog(str(tmp_path / "missing"))

    def test_record_event_mirrors_ledger(self, tmp_path):
        from repro.obs.ledger import RunLedger

        path = str(tmp_path / "run.worldlog")
        with WorldLog.create(path, run_id="r") as log:
            ledger = RunLedger(
                run_id="r", worker_id=1, sink=log.record_event
            )
            ledger.emit("counter", "cache.hits", value=2, cell_id="c")
        (record,) = [
            record
            for record in read_worldlog(path)
            if record.kind == "ledger.event"
        ]
        assert record.cell_id == "c"
        assert record.worker_id == 1
        (event,) = ledger.events
        assert json.dumps(record.payload) == event.to_json()


class TestReadRecordsUnification:
    """Every reader shares one parsing path (``read_records``).

    The regression this pins: a log truncated mid-record (the
    write-through appender's one legal crash shape) must yield the
    *identical* record list from every entry point — the raw parser,
    the header-validating loader, a resumed store, the replay cursor
    and the semantic differ.
    """

    def _torn_log(self, tmp_path):
        path = str(tmp_path / "run.worldlog")
        with WorldLog.create(path, run_id="r") as log:
            log.append("checkpoint", {"rounds": 1})
            log.append("trend.point", {"label": "x"})
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"tick": 3, "kind": "cell.resu')  # torn tail
        return path

    def test_every_entry_point_sees_the_same_records(self, tmp_path):
        from repro.worldlog import (
            ReplayCursor,
            diff_logs,
            read_records,
            replay_state,
        )

        path = self._torn_log(tmp_path)
        parsed = read_records(path)
        assert [record.tick for record in parsed] == [0, 1, 2]

        assert read_worldlog(path) == parsed

        resumed = WorldLog.resume(path)
        try:
            assert resumed.records == parsed
        finally:
            resumed.close()

        cursor = ReplayCursor(read_worldlog(path))
        cursor.seek(10**9)
        assert cursor.position == len(parsed)
        assert cursor.state == replay_state(parsed)

        report = diff_logs(read_worldlog(path), parsed)
        assert report.ok

    def test_read_records_skips_header_validation(self, tmp_path):
        """``read_records`` parses; ``read_worldlog`` validates."""
        from repro.worldlog import read_records

        path = tmp_path / "headless.worldlog"
        record = Record(tick=0, kind="trend.point", payload={})
        path.write_text(record.to_json() + "\n")
        assert read_records(str(path)) == [record]
        with pytest.raises(ArtifactError):
            read_worldlog(str(path))


class TestLogTailer:
    """The incremental reader behind ``log tail --follow`` and ``top``."""

    def test_polls_see_only_newly_appended_records(self, tmp_path):
        from repro.worldlog import LogTailer

        path = str(tmp_path / "run.worldlog")
        log = WorldLog.create(path, run_id="r")
        tailer = LogTailer(path)
        first = tailer.poll()
        assert [record.kind for record in first] == ["log.open"]
        assert tailer.poll() == []  # nothing new
        log.append("trend.point", {"label": "x"})
        log.append("trend.point", {"label": "y"})
        batch = [record.payload["label"] for record in tailer.poll()]
        assert batch == ["x", "y"]
        assert tailer.poll() == []
        log.close()

    def test_torn_tail_buffered_until_the_line_completes(self, tmp_path):
        from repro.worldlog import LogTailer

        path = str(tmp_path / "run.worldlog")
        WorldLog.create(path, run_id="r").close()
        tailer = LogTailer(path)
        tailer.poll()
        record = Record(tick=1, kind="trend.point", payload={"a": 1})
        line = record.to_json() + "\n"
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(line[:10])  # mid-write: no newline yet
        assert tailer.poll() == []  # buffered, not parsed
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(line[10:])
        assert tailer.poll() == [record]

    def test_writer_resume_does_not_duplicate_records(self, tmp_path):
        from repro.worldlog import LogTailer

        path = str(tmp_path / "run.worldlog")
        with WorldLog.create(path, run_id="r") as log:
            log.append("trend.point", {"label": "x"})
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"tick": 2, "kind": "cell.re')  # killed writer
        tailer = LogTailer(path)
        seen = tailer.poll()
        assert len(seen) == 2  # header + point; torn tail buffered
        # Resume rewrites the file (drops the torn tail), shrinking it
        # below the tailer's offset, then appends a fresh record.
        with WorldLog.resume(path) as log:
            log.append("trend.point", {"label": "y"})
        fresh = tailer.poll()
        assert [record.payload for record in fresh] == [{"label": "y"}]

    def test_malformed_complete_line_raises_with_location(self, tmp_path):
        from repro.worldlog import LogTailer

        path = str(tmp_path / "run.worldlog")
        WorldLog.create(path, run_id="r").close()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("garbage\n")
        tailer = LogTailer(path)
        with pytest.raises(ArtifactError) as excinfo:
            tailer.poll()
        assert f"{path}:2: not a world-log record" in str(excinfo.value)

    def test_missing_file_polls_empty(self, tmp_path):
        from repro.worldlog import LogTailer

        tailer = LogTailer(str(tmp_path / "not-yet.worldlog"))
        assert tailer.poll() == []
