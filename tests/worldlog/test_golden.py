"""Golden replay: derived views vs committed expected artifacts.

``golden/run.worldlog`` is a committed world log; ``golden/expected/``
holds the artifacts the *legacy writers* persisted for that same run
(see ``golden/generate.py``).  Deriving the five views from the log must
reproduce every expected file byte for byte — the regression gate CI
replays in its ``worldlog-replay`` job.
"""

import os

from repro.worldlog import derive_views, read_worldlog

HERE = os.path.dirname(os.path.abspath(__file__))
GOLDEN_LOG = os.path.join(HERE, "golden", "run.worldlog")
EXPECTED = os.path.join(HERE, "golden", "expected")


def _tree(root):
    files = {}
    for directory, _, names in os.walk(root):
        for name in names:
            path = os.path.join(directory, name)
            with open(path, "rb") as handle:
                files[os.path.relpath(path, root)] = handle.read()
    return files


class TestGoldenReplay:
    def test_all_five_views_byte_identical(self, tmp_path):
        out_dir = str(tmp_path / "derived")
        written = derive_views(read_worldlog(GOLDEN_LOG), out_dir)
        assert sorted(written) == [
            "bench",
            "certificates",
            "checkpoints",
            "ledger",
            "trend",
        ]
        derived = _tree(out_dir)
        expected = _tree(EXPECTED)
        assert sorted(derived) == sorted(expected)
        for name in expected:
            assert derived[name] == expected[name], (
                f"derived view {name} diverged from the golden bytes"
            )
