"""Crash-resume bit-identity (the tentpole acceptance test).

A ``--jobs N`` sweep recording into a world log is SIGKILLed mid-flight
after at least one cell's terminal record hit the disk.  Resuming the
torn log must (a) not re-execute recorded cells and (b) finish with a
``SweepReport``, certificates and ledger order signature bit-identical
to an *uninterrupted serial* run — the scheduler's cross-backend
equality contract, extended across a crash.
"""

import os
import signal
import subprocess
import sys
import time

import pytest

from repro.errors import ReproError
from repro.obs.ledger import RunLedger, order_signature
from repro.parallel.jobs import AttackJob, MeasureJob
from repro.parallel.scheduler import SweepScheduler
from repro.worldlog import WorldLog, read_worldlog

# One certified attack (certificate bytes must survive), one plain
# attack, one quick measure, and one slow measure tail that keeps the
# pooled sweep alive long enough for a deterministic mid-flight kill.
MATRIX_SOURCE = """[
    AttackJob("silent", 8, 4, certify=True),
    AttackJob("ring-token", 12, 8),
    MeasureJob("weak-consensus", 24, 20),
    MeasureJob("weak-consensus", 56, 52),
]"""


def _matrix():
    return eval(  # noqa: S307 - the literal above, shared with the child
        MATRIX_SOURCE,
        {"AttackJob": AttackJob, "MeasureJob": MeasureJob},
    )


def _terminal_records(path):
    return [
        record
        for record in read_worldlog(path)
        if record.kind in ("cell.result", "cell.error")
    ]


def _run_and_kill_mid_flight(log_path):
    """Launch a jobs=2 sweep subprocess; SIGKILL it after >=1 record."""
    script = "\n".join(
        [
            "from repro.obs.ledger import RunLedger",
            "from repro.parallel.jobs import AttackJob, MeasureJob",
            "from repro.parallel.scheduler import SweepScheduler",
            "from repro.worldlog import WorldLog",
            "",
            f"worldlog = WorldLog.create({log_path!r}, run_id='crashed')",
            "ledger = RunLedger(run_id='crashed', "
            "sink=worldlog.record_event)",
            "SweepScheduler(jobs=2, ledger=ledger, worldlog=worldlog)"
            f".run({MATRIX_SOURCE})",
            "worldlog.close()",
        ]
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, ["src", env.get("PYTHONPATH")])
    )
    child = subprocess.Popen(
        [sys.executable, "-c", script],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    try:
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            if child.poll() is not None:
                break
            if os.path.exists(log_path):
                with open(log_path, encoding="utf-8") as handle:
                    if '"kind": "cell.result"' in handle.read():
                        break
            time.sleep(0.01)
        else:  # pragma: no cover - diagnostics for a hung child
            pytest.fail("sweep subprocess produced no record in 60s")
    finally:
        if child.poll() is None:
            child.send_signal(signal.SIGKILL)
        child.wait(timeout=60)


def _certificates(report):
    return {
        cell.key: cell.result.certificate
        for cell in report.cells
        if cell.result is not None
    }


class TestCrashResume:
    def test_killed_sweep_resumes_bit_identical(self, tmp_path):
        log_path = str(tmp_path / "crashed.worldlog")
        _run_and_kill_mid_flight(log_path)
        recorded = _terminal_records(log_path)
        assert recorded, "the kill came before any terminal record"

        # Resume with the pooled backend on the torn log.
        worldlog = WorldLog.resume(log_path)
        ledger = RunLedger(run_id="crashed", sink=worldlog.record_event)
        resumed = SweepScheduler(
            jobs=2, ledger=ledger, worldlog=worldlog
        ).run(_matrix())
        worldlog.close()

        # Uninterrupted serial baseline: the equality reference.
        baseline_ledger = RunLedger(run_id="baseline")
        baseline = SweepScheduler(jobs=1, ledger=baseline_ledger).run(
            _matrix()
        )

        assert resumed.ok and baseline.ok
        assert resumed.values() == baseline.values()
        assert _certificates(resumed) == _certificates(baseline)
        assert order_signature(ledger.events) == order_signature(
            baseline_ledger.events
        )
        # Recorded cells were replayed, not re-executed: their wall
        # clocks are the original run's, verbatim from the record.
        by_index = {
            record.payload["index"]: record for record in recorded
        }
        for cell in resumed.cells:
            if cell.index in by_index:
                payload = by_index[cell.index].payload
                recorded_wall = payload.get("wall_seconds") or payload[
                    "result"
                ].get("wall_seconds")
                assert cell.wall_seconds == recorded_wall

    def test_resume_skips_all_when_nothing_crashed(self, tmp_path):
        """Resuming a complete log re-executes nothing."""
        log_path = str(tmp_path / "done.worldlog")
        matrix = [AttackJob("silent", 8, 4), AttackJob("ring-token", 12, 8)]
        with WorldLog.create(log_path, run_id="r") as worldlog:
            first = SweepScheduler(jobs=1, worldlog=worldlog).run(matrix)
        with WorldLog.resume(log_path) as worldlog:
            ticks_before = worldlog.next_tick
            again = SweepScheduler(jobs=1, worldlog=worldlog).run(matrix)
            # No new terminal records were appended for recalled cells.
            new_kinds = [
                record.kind
                for record in worldlog.records
                if record.tick >= ticks_before
            ]
        assert "cell.result" not in new_kinds
        assert again.values() == first.values()
        assert [cell.wall_seconds for cell in again.cells] == [
            cell.wall_seconds for cell in first.cells
        ]

    def test_resume_refuses_a_different_plan(self, tmp_path):
        log_path = str(tmp_path / "plan.worldlog")
        with WorldLog.create(log_path, run_id="r") as worldlog:
            SweepScheduler(jobs=1, worldlog=worldlog).run(
                [AttackJob("silent", 8, 4)]
            )
        with WorldLog.resume(log_path) as worldlog:
            with pytest.raises(ReproError) as excinfo:
                SweepScheduler(jobs=1, worldlog=worldlog).run(
                    [AttackJob("ring-token", 12, 8)]
                )
        assert "different sweep plan" in str(excinfo.value)

    def test_errored_cells_are_recalled_too(self, tmp_path):
        log_path = str(tmp_path / "errors.worldlog")
        matrix = [
            AttackJob("silent", 8, 4),
            AttackJob("no-such-builder", 8, 4),
        ]
        with WorldLog.create(log_path, run_id="r") as worldlog:
            first = SweepScheduler(jobs=1, worldlog=worldlog).run(matrix)
        assert not first.ok
        with WorldLog.resume(log_path) as worldlog:
            again = SweepScheduler(jobs=1, worldlog=worldlog).run(matrix)
        (error_cell,) = again.errors()
        (first_error,) = first.errors()
        assert error_cell.error == first_error.error
        assert error_cell.wall_seconds == first_error.wall_seconds
