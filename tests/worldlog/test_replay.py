"""The replay cursor and its trust theorem.

Time travel is only trustworthy if the cursor's materialized state at
tick T is *the same thing* the derived views would compute from the
record prefix up to T.  ``TestPrefixInvariant`` pins that theorem
against every prefix of the committed golden fixture; the rest covers
cursor navigation (``next``/``prev``/``seek`` with snapshots), the
shared record-selection logic behind ``log show``, and the post-hoc
stats extractor.
"""

import json
import os

from repro.worldlog import (
    Record,
    ReplayCursor,
    log_stats,
    read_worldlog,
    replay_state,
    select_records,
)
from repro.worldlog.views import (
    certificate_texts,
    checkpoint_manifest,
    jobs_manifest,
    ledger_lines,
    trend_points,
)

HERE = os.path.dirname(os.path.abspath(__file__))
GOLDEN_LOG = os.path.join(HERE, "golden", "run.worldlog")


def _golden():
    return read_worldlog(GOLDEN_LOG)


class TestPrefixInvariant:
    def test_cursor_state_equals_pure_fold_at_every_position(self):
        """``cursor.state`` ≡ ``replay_state(records[:k])`` for all k."""
        records = _golden()
        cursor = ReplayCursor(records, snapshot_every=7)
        assert cursor.state == replay_state([])
        for k in range(1, len(records) + 1):
            cursor.next()
            assert cursor.state == replay_state(records[:k]), (
                f"cursor diverged from the pure fold at position {k}"
            )

    def test_state_agrees_with_derived_views_at_every_prefix(self):
        """The state's fields match the derived views of the prefix."""
        records = _golden()
        for k in range(len(records) + 1):
            prefix = records[:k]
            state = replay_state(prefix)
            # ledger view: the events the state accumulated are exactly
            # the derived ledger lines (after-last-gather rule shared).
            assert [
                json.dumps(payload) for payload in state.events
            ] == ledger_lines(prefix)
            # certificates view.
            assert state.certificates == list(certificate_texts(prefix))
            # checkpoints view.
            assert state.checkpoints == len(
                checkpoint_manifest(prefix)["checkpoints"]
            )
            # trend view.
            assert state.kind_counts.get("trend.point", 0) == len(
                trend_points(prefix)
            )
            # jobs view: same keys, same states.
            manifest = jobs_manifest(prefix)
            assert {
                entry["key"]: entry["state"]
                for entry in manifest["jobs"]
            } == {
                key: entry["state"]
                for key, entry in state.jobs.items()
            }

    def test_seek_by_tick_matches_prefix_fold(self):
        records = _golden()
        cursor = ReplayCursor(records, snapshot_every=5)
        for record in records:
            state = cursor.seek(record.tick)
            prefix = [r for r in records if r.tick <= record.tick]
            assert state == replay_state(prefix)


def _sweep_like_records():
    """A small synthetic sweep log exercising every state family."""
    rows = [
        ("log.open", {"schema": "repro.worldlog/v1"}, None),
        ("sweep.plan", {"jobs": [{"k": 0}, {"k": 1}]}, None),
        ("cell.result", {"index": 0, "result": {}}, "cell/a"),
        ("cell.error", {"index": 1, "key": [], "error_kind": "x",
                        "message": "m", "detail": "", "wall_seconds": 1.0},
         "cell/b"),
        ("gather.start", {}, None),
        ("ledger.event", {"ts": 0.0, "kind": "span-start",
                          "name": "attack", "value": None,
                          "run_id": "r", "cell_id": "cell/a",
                          "worker_id": 3, "attrs": {}}, "cell/a"),
        ("ledger.event", {"ts": 1.0, "kind": "counter",
                          "name": "engine.round", "value": 4,
                          "run_id": "r", "cell_id": "cell/a",
                          "worker_id": 3,
                          "attrs": {"round": 1, "run": 0,
                                    "cum_messages": 4,
                                    "vs_floor": 0.5}}, "cell/a"),
        ("job.submitted", {"key": "k1", "tenant": "alice",
                           "priority": 0, "job": {}}, "job/x"),
        ("job.start", {"key": "k1"}, "job/x"),
        ("job.rejected", {"key": "k2", "tenant": "alice",
                          "kind": "quota", "reason": "full"}, "job/y"),
    ]
    return [
        Record(tick=tick, kind=kind, payload=payload,
               run_id="r", cell_id=cell, worker_id=3)
        for tick, (kind, payload, cell) in enumerate(rows)
    ]


class TestReplayState:
    def test_live_cells_pending_jobs_and_rejections(self):
        state = replay_state(_sweep_like_records())
        assert state.planned_cells == 2
        assert state.completed_cells == {0: "cell/a"}
        assert state.errored_cells == {1: "cell/b"}
        # cell/a produced post-gather events but already has its
        # terminal record; the job cells are live/rejected.
        assert state.live_cells == ["job/x"]
        assert state.pending_jobs == ["k1"]
        assert state.jobs["k1"]["state"] == "running"
        assert state.rejections == {"alice": {"quota": 1}}
        assert state.open_spans == [(3, "cell/a", ["attack"])]
        assert state.rounds_observed == 1
        assert state.messages_observed == 4
        assert state.vs_floor == 0.5

    def test_gather_resets_event_derived_state_only(self):
        records = _sweep_like_records()
        gathered = records + [
            Record(tick=len(records), kind="gather.start", payload={},
                   run_id="r")
        ]
        state = replay_state(gathered)
        assert state.events == []
        assert state.counters == {}
        assert state.open_spans == []
        assert state.rounds_observed == 0
        # Envelope-derived bookkeeping survives the reset.
        assert state.completed_cells == {0: "cell/a"}
        assert state.jobs["k1"]["state"] == "running"
        assert state.gathers == 2


class TestReplayCursor:
    def test_forward_then_backward_round_trip(self):
        records = _golden()
        cursor = ReplayCursor(records, snapshot_every=4)
        while cursor.next() is not None:
            pass
        assert cursor.position == len(records)
        seen = []
        while True:
            record = cursor.prev()
            if record is None:
                break
            seen.append(record)
        assert cursor.position == 0
        assert cursor.state == replay_state([])
        assert seen == list(reversed(records))

    def test_seek_clamps_to_both_ends(self):
        records = _golden()
        cursor = ReplayCursor(records)
        end = cursor.seek(10**9)
        assert cursor.position == len(records)
        assert end == replay_state(records)
        start = cursor.seek(-1)
        assert cursor.position == 0
        assert start == replay_state([])

    def test_current_is_the_last_applied_record(self):
        records = _golden()
        cursor = ReplayCursor(records)
        assert cursor.current is None
        cursor.next()
        assert cursor.current == records[0]
        cursor.seek(records[-1].tick)
        assert cursor.current == records[-1]


class TestSelectRecords:
    def test_filters_compose_and_tail_applies_last(self):
        records = _golden()
        events = select_records(records, kinds=["ledger.event"])
        assert all(r.kind == "ledger.event" for r in events)
        tail = select_records(records, kinds=["ledger.event"], tail=3)
        assert tail == events[-3:]
        assert select_records(records, kinds=["ledger.event"], tail=0) == []
        assert select_records(records, runs=["golden"]) == records
        assert select_records(records, runs=["nope"]) == []

    def test_cell_filter(self):
        records = _sweep_like_records()
        cells = select_records(records, cells=["cell/a"])
        assert {r.cell_id for r in cells} == {"cell/a"}


class TestLogStats:
    def test_trend_shaped_document_from_the_golden_log(self):
        records = _golden()
        document = log_stats(records, now=123.0)
        assert document["schema"] == "repro.logstats/v1"
        assert document["label"] == "log/golden"
        assert document["ts"] == 123.0
        assert document["records"] == len(records)
        assert document["events"] == len(
            [r for r in records if r.kind == "ledger.event"]
        )
        assert document["rounds_simulated"] == 6
        assert document["certificates"] == 1
        # Certificate verify time = witness-verify + certify spans
        # (the golden clock ticks one second per event).
        assert document["certificate_verify_seconds"] == 2.0
        assert document["spans"]["attack"]["count"] == 1
        # cache: 2 hits + 1 alias over 8 lookups (committed fixture).
        assert 0 < document["cache_hit_rate"] < 1

    def test_document_feeds_the_trend_comparison_policy(self):
        from repro.obs.report import trend_delta

        records = _golden()
        a = log_stats(records, now=1.0)
        b = log_stats(records, now=2.0)
        delta = trend_delta(b, a)
        assert delta.ok
        assert delta.notes == ()  # deterministic counters identical

    def test_tenant_accounting_includes_rejections(self):
        document = log_stats(_sweep_like_records())
        assert document["tenants"]["alice"]["submitted"] == 1
        assert document["tenants"]["alice"]["pending"] == 1
        assert document["tenants"]["alice"]["rejected"] == {"quota": 1}

    def test_per_cell_percentiles(self):
        rows = [("log.open", {"schema": "repro.worldlog/v1"}, None)]
        for index in range(4):
            cell = f"cell/{index}"
            rows.append(
                ("ledger.event",
                 {"ts": float(index), "kind": "counter",
                  "name": "engine.round", "value": index + 1,
                  "run_id": "r", "cell_id": cell, "worker_id": 1,
                  "attrs": {}}, cell)
            )
            rows.append(
                ("ledger.event",
                 {"ts": float(index), "kind": "gauge",
                  "name": "cell.wall_seconds", "value": 0.1 * (index + 1),
                  "run_id": "r", "cell_id": cell, "worker_id": 1,
                  "attrs": {}}, cell)
            )
        records = [
            Record(tick=tick, kind=kind, payload=payload, run_id="r",
                   cell_id=cell)
            for tick, (kind, payload, cell) in enumerate(rows)
        ]
        document = log_stats(records)
        assert set(document["cells"]) == {f"cell/{i}" for i in range(4)}
        assert document["cells"]["cell/3"]["messages"] == 4
        marks = document["percentiles"]["messages"]
        assert marks["max"] == 4
        assert marks["p50"] == 2


class TestSelectRecordsStreaming:
    """``tail`` must stream: a bounded deque, not a materialized list."""

    def test_tail_over_a_lazy_source_keeps_only_the_window(self):
        count = 200_000

        def source():
            for tick in range(count):
                yield Record(tick=tick, kind="trend.point",
                             payload={"i": tick}, run_id="r")

        tail = select_records(source(), tail=5)
        assert [record.payload["i"] for record in tail] == [
            count - 5, count - 4, count - 3, count - 2, count - 1,
        ]

    def test_tail_composes_with_filters_over_a_generator(self):
        def source():
            for tick in range(1000):
                kind = "ledger.event" if tick % 2 else "trend.point"
                yield Record(tick=tick, kind=kind, payload={},
                             run_id="r")

        tail = select_records(source(), kinds=["ledger.event"], tail=3)
        assert [record.tick for record in tail] == [995, 997, 999]

    def test_tail_larger_than_the_log_keeps_everything(self):
        records = [
            Record(tick=tick, kind="trend.point", payload={})
            for tick in range(4)
        ]
        assert select_records(iter(records), tail=100) == records
        assert select_records(iter(records), tail=0) == []


class TestReplayStateTelemetry:
    """Snapshots are observability-only: counted, never semantic."""

    def _with_snapshots(self):
        records = _sweep_like_records()
        base = len(records)
        return records + [
            Record(tick=base, kind="telemetry.snapshot",
                   payload={"schema": "repro.telemetry/v1", "seq": 0},
                   run_id="r"),
            Record(tick=base + 1, kind="telemetry.snapshot",
                   payload={"schema": "repro.telemetry/v1", "seq": 1,
                            "cache_hit_rate": 0.5},
                   run_id="r"),
        ]

    def test_snapshots_counted_and_latest_kept(self):
        state = replay_state(self._with_snapshots())
        assert state.telemetry_snapshots == 2
        assert state.last_telemetry["seq"] == 1
        assert state.last_telemetry["cache_hit_rate"] == 0.5

    def test_snapshots_touch_nothing_semantic(self):
        records = self._with_snapshots()
        plain = replay_state(records[:-2])
        twin = replay_state(records)
        twin.telemetry_snapshots = 0
        twin.last_telemetry = None
        # Position/tick/kind_counts differ by construction; everything
        # semantic must not.
        twin.position = plain.position
        twin.tick = plain.tick
        twin.kind_counts = plain.kind_counts
        assert twin == plain

    def test_clone_preserves_telemetry_fields(self):
        state = replay_state(self._with_snapshots())
        clone = state.clone()
        assert clone.telemetry_snapshots == 2
        assert clone.last_telemetry == state.last_telemetry
        clone.last_telemetry["seq"] = 99
        assert state.last_telemetry["seq"] == 1  # deep-enough copy

    def test_render_state_mentions_telemetry(self):
        from repro.worldlog.replay import render_state

        state = replay_state(self._with_snapshots())
        rendered = render_state(state)
        assert "telemetry: 2 snapshot(s), last seq 1" in rendered
