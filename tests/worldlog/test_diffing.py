"""The semantic log differ: what counts as "the same run".

The acceptance bar from the time-travel issue: ``diff_logs`` must be
empty for (a) a log against itself, (b) object-engine vs mask-kernel
runs of the same matrix, and (c) an uninterrupted run vs its
killed-and-resumed twin — while a *real* divergence (different values,
different record order) is reported at its first aligned position with
both payloads rendered.
"""

import json
import os

import pytest

from repro.worldlog import Record, WorldLog, diff_logs, read_worldlog
from repro.worldlog.diffing import (
    comparable_records,
    scrub_payload,
)

HERE = os.path.dirname(os.path.abspath(__file__))
GOLDEN_LOG = os.path.join(HERE, "golden", "run.worldlog")


def _attack_log(path, kernel="auto"):
    """One recorded attack run (the CLI's ``--ledger *.worldlog`` path)."""
    from repro.lowerbound.driver import attack_weak_consensus
    from repro.obs.ledger import RunLedger
    from repro.obs.tracer import LedgerTracer
    from repro.protocols.subquadratic import silent_cheater_spec

    with WorldLog.create(str(path)) as worldlog:
        ledger = RunLedger(sink=worldlog.record_event)
        attack_weak_consensus(
            silent_cheater_spec(8, 4),
            certify=True,
            tracer=LedgerTracer(ledger),
            worldlog=worldlog,
            kernel=kernel,
        )
    return read_worldlog(str(path))


class TestEmptyDiffs:
    def test_log_vs_itself(self):
        records = read_worldlog(GOLDEN_LOG)
        report = diff_logs(records, records)
        assert report.ok
        assert report.divergence is None
        assert report.compared == len(records)
        assert "semantically identical" in report.render()

    def test_two_runs_of_the_same_matrix(self, tmp_path):
        """Timing-only divergence (fresh wall clocks, pids) is ignored."""
        a = _attack_log(tmp_path / "a.worldlog")
        b = _attack_log(tmp_path / "b.worldlog")
        report = diff_logs(a, b)
        assert report.ok, report.render()

    def test_object_vs_mask_kernel_runs(self, tmp_path):
        a = _attack_log(tmp_path / "object.worldlog", kernel="object")
        b = _attack_log(tmp_path / "mask.worldlog", kernel="mask")
        report = diff_logs(a, b)
        assert report.ok, report.render()

    def test_uninterrupted_vs_resumed_twin(self):
        """A crash mid-gather leaves stale events + an extra marker.

        On resume the scheduler re-splices *every* event after a fresh
        ``gather.start``; the differ applies the derived ledger view's
        after-last-gather rule, so the twins align empty.
        """
        records = read_worldlog(GOLDEN_LOG)
        header, rest = records[:1], records[1:]

        def event(tick, name):
            return Record(
                tick=tick,
                kind="ledger.event",
                payload={"ts": 0.5, "kind": "counter", "name": name,
                         "value": 1, "run_id": "golden",
                         "cell_id": None, "worker_id": 9, "attrs": {}},
                run_id="golden",
                worker_id=9,
            )

        uninterrupted = (
            header
            + [Record(tick=1, kind="gather.start", payload={},
                      run_id="golden")]
            + [r for r in rest]
        )
        # The twin: a partial stale splice, then the resume's fresh
        # marker and the full splice.
        resumed = (
            header
            + [Record(tick=1, kind="gather.start", payload={},
                      run_id="other")]
            + [event(2, "stale.partial"), event(3, "stale.partial")]
            + [Record(tick=4, kind="gather.start", payload={},
                      run_id="other")]
            + [r for r in rest]
        )
        report = diff_logs(uninterrupted, resumed)
        assert report.ok, report.render()
        assert report.skipped_b > report.skipped_a


class TestRealDivergence:
    def test_payload_divergence_reports_both_sides(self):
        records = read_worldlog(GOLDEN_LOG)
        mutated = list(records)
        for index, record in enumerate(mutated):
            if (
                record.kind == "ledger.event"
                and record.payload.get("name") == "cache.hits"
            ):
                payload = dict(record.payload)
                payload["value"] = 9999
                mutated[index] = Record(
                    tick=record.tick, kind=record.kind, payload=payload,
                    run_id=record.run_id, cell_id=record.cell_id,
                    worker_id=record.worker_id,
                )
                break
        report = diff_logs(records, mutated)
        assert not report.ok
        assert "payloads diverged" in report.divergence.reason
        rendered = report.render("left.worldlog", "right.worldlog")
        assert "left.worldlog" in rendered
        assert "right.worldlog" in rendered
        assert "9999" in rendered
        assert "cache.hits" in rendered

    def test_order_divergence(self):
        records = read_worldlog(GOLDEN_LOG)
        swapped = list(records)
        # Swap two adjacent ledger events with different names.
        swapped[2], swapped[3] = swapped[3], swapped[2]
        report = diff_logs(records, swapped)
        assert not report.ok
        assert "record order diverged" in report.divergence.reason

    def test_extra_records_diverge(self):
        records = read_worldlog(GOLDEN_LOG)
        report = diff_logs(records, records[:-2])
        assert not report.ok
        assert "extra record(s)" in report.divergence.reason
        assert report.divergence.index == len(
            comparable_records(records[:-2])
        )


class TestScrub:
    @pytest.mark.parametrize("key", [
        "ts", "seconds", "wall_seconds", "unix_time", "run_id",
        "worker_id", "stats", "memory", "fingerprint",
    ])
    def test_wall_clock_and_identity_keys_dropped(self, key):
        assert scrub_payload({key: 1, "keep": 2}) == {"keep": 2}

    def test_scrub_recurses_into_results_and_events(self):
        payload = {
            "index": 0,
            "result": {
                "wall_seconds": 1.25,
                "value": {"rounds": 7},
                "events": [{"ts": 3.0, "name": "attack"}],
            },
        }
        assert scrub_payload(payload) == {
            "index": 0,
            "result": {
                "value": {"rounds": 7},
                "events": [{"name": "attack"}],
            },
        }

    def test_wall_clock_metric_values_nulled(self):
        payload = {
            "kind": "gauge", "name": "engine.round_seconds",
            "value": 0.123,
            "attrs": {"count": 6, "min": 0.1, "max": 0.2, "total": 0.6},
        }
        assert scrub_payload(payload) == {
            "kind": "gauge", "name": "engine.round_seconds",
            "attrs": {"count": 6},
        }

    def test_deterministic_content_survives(self):
        payload = {"kind": "counter", "name": "cache.hits", "value": 2,
                   "attrs": {"round": 1}}
        assert scrub_payload(payload) == payload

    def test_certificate_text_compares_verbatim(self):
        text = json.dumps({"schema": "repro.cert/v1", "witness": [1, 2]})
        a = Record(tick=5, kind="cert.artifact",
                   payload={"label": "x", "text": text}, run_id="a")
        b = Record(tick=9, kind="cert.artifact",
                   payload={"label": "x", "text": text + " "}, run_id="b")
        assert diff_logs([a], [a]).ok
        assert not diff_logs([a], [b]).ok


class TestTelemetryTwins:
    """Telemetry is observability-only: twins diff empty (PR 10 bar)."""

    def _run(self, path, telemetry_interval=None):
        from repro.lowerbound.driver import attack_weak_consensus
        from repro.obs.ledger import RunLedger
        from repro.obs.telemetry import TelemetryBus
        from repro.obs.tracer import LedgerTracer
        from repro.protocols.subquadratic import silent_cheater_spec

        with WorldLog.create(str(path)) as worldlog:
            bus = None
            if telemetry_interval is not None:
                bus = TelemetryBus(
                    worldlog,
                    interval=telemetry_interval,
                    source="attack",
                )
            ledger = RunLedger(sink=worldlog.record_event)
            attack_weak_consensus(
                silent_cheater_spec(8, 4),
                certify=True,
                tracer=LedgerTracer(ledger),
                worldlog=worldlog,
                telemetry=bus,
            )
            if bus is not None:
                bus.close()
        return read_worldlog(str(path))

    def test_telemetry_on_vs_off_twins_diff_empty(self, tmp_path):
        plain = self._run(tmp_path / "plain.worldlog")
        noisy = self._run(
            tmp_path / "noisy.worldlog", telemetry_interval=1e-9
        )
        # The twin must actually carry snapshots, or this pins nothing.
        snaps = [r for r in noisy if r.kind == "telemetry.snapshot"]
        assert snaps, "telemetry run produced no snapshots"
        report = diff_logs(plain, noisy)
        assert report.ok, report.render()

    def test_comparable_records_drop_snapshots(self):
        from repro.worldlog.diffing import OBSERVABILITY_KINDS

        assert "telemetry.snapshot" in OBSERVABILITY_KINDS
        records = [
            Record(tick=0, kind="trend.point", payload={}, run_id="r"),
            Record(tick=1, kind="telemetry.snapshot",
                   payload={"seq": 0}, run_id="r"),
        ]
        kept = comparable_records(records)
        assert [record.kind for record in kept] == ["trend.point"]
