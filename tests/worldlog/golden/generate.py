"""Regenerate the golden world log and its expected derived views.

The committed fixture pins the *record → view* contract: CI (the
``worldlog-replay`` job) and ``tests/worldlog/test_golden.py`` re-derive
all five views from ``run.worldlog`` and byte-diff them against
``expected/``.  The expected artifacts are written here by the **legacy
writers themselves** (``RunLedger.write``, ``Certificate.to_bytes``, the
``BENCH_<suite>.json`` document format, the trend appender), so the diff
proves the views reproduce the writers' bytes — not merely their own
earlier output.

Regenerate (only when the record schema or a writer legitimately
changes) from the repository root::

    PYTHONPATH=src python tests/worldlog/golden/generate.py

Both the log and ``expected/`` are rewritten together; a regeneration
that changes bytes should be a reviewed, deliberate event.
"""

import itertools
import json
import os

from repro.lowerbound.driver import attack_weak_consensus
from repro.obs.bench import BENCH_SCHEMA
from repro.obs.ledger import RunLedger
from repro.obs.tracer import LedgerTracer
from repro.protocols.subquadratic import silent_cheater_spec
from repro.worldlog import WorldLog, read_worldlog
from repro.worldlog.views import checkpoint_manifest

HERE = os.path.dirname(os.path.abspath(__file__))
LOG_PATH = os.path.join(HERE, "run.worldlog")
EXPECTED = os.path.join(HERE, "expected")

BENCH_POINT = {
    "schema": BENCH_SCHEMA,
    "suite": "golden",
    "kernel": "attack/silent-cheater/n8/t4",
    "tier": "quick",
    "wall_seconds_median": 0.125,
    "unix_time": 0.0,
}
TREND_POINT = {
    "ts": 0.0,
    "label": "attack/silent-cheater/n8/t4",
    "wall_seconds": 0.125,
    "rounds_simulated": 10,
    "events": 3,
    "violation": True,
}


def main() -> None:
    ticks = itertools.count()

    def clock() -> float:
        # A deterministic ledger clock: only deltas within a run are
        # meaningful, so a plain counter keeps the fixture stable.
        return float(next(ticks))

    worldlog = WorldLog.create(LOG_PATH, run_id="golden")
    ledger = RunLedger(
        run_id="golden",
        worker_id=1,
        clock=clock,
        sink=worldlog.record_event,
    )
    outcome = attack_weak_consensus(
        silent_cheater_spec(8, 4),
        certify=True,
        tracer=LedgerTracer(ledger),
        worldlog=worldlog,
    )
    worldlog.append("bench.point", BENCH_POINT, worker_id=1)
    worldlog.append("trend.point", TREND_POINT, worker_id=1)
    worldlog.close()

    os.makedirs(EXPECTED, exist_ok=True)
    # ledger: the current writer's own bytes for this very run.
    ledger.write(os.path.join(EXPECTED, "ledger.jsonl"))
    # certificate: the canonical bytes the legacy artifact ships.
    cert_dir = os.path.join(EXPECTED, "certificates")
    os.makedirs(cert_dir, exist_ok=True)
    label = f"{outcome.protocol}-n8-t4"
    with open(os.path.join(cert_dir, f"{label}.cert.json"), "wb") as out:
        out.write(outcome.certificate.to_bytes())
    # bench: the trajectory document format append_points persists.
    with open(
        os.path.join(EXPECTED, "BENCH_golden.json"), "w", encoding="utf-8"
    ) as out:
        json.dump(
            {"schema": BENCH_SCHEMA, "points": [BENCH_POINT]},
            out,
            indent=2,
            sort_keys=True,
        )
        out.write("\n")
    # trend: one JSONL line per point, the appender's format.
    with open(
        os.path.join(EXPECTED, "trend.jsonl"), "w", encoding="utf-8"
    ) as out:
        out.write(json.dumps(TREND_POINT) + "\n")
    # checkpoints: no legacy writer exists — this view is pinned
    # against its own generation-time rendering (pure regression).
    with open(
        os.path.join(EXPECTED, "checkpoints.json"), "w", encoding="utf-8"
    ) as out:
        json.dump(
            checkpoint_manifest(read_worldlog(LOG_PATH)),
            out,
            indent=2,
            sort_keys=True,
        )
        out.write("\n")
    print(f"wrote {LOG_PATH} and {EXPECTED}/")


if __name__ == "__main__":
    main()
