"""Tier-1 doctest runner for the documented-example modules.

The modules whose docstrings carry worked examples (the certificate
layer, the canonical codec, the bound arithmetic) are executed here so
the examples can never rot.  CI additionally runs ``pytest
--doctest-modules`` over the same modules; this in-suite runner keeps
the guarantee inside the plain tier-1 invocation too.
"""

import doctest

import pytest

import repro.artifact
import repro.certify.format
import repro.certify.verifier
import repro.lowerbound.bound
import repro.obs.bench
import repro.obs.ledger
import repro.obs.export
import repro.obs.metrics
import repro.obs.telemetry
import repro.service.protocol
import repro.service.queue
import repro.service.quota
import repro.sim.serialization
import repro.worldlog.record

DOCUMENTED_MODULES = [
    repro.artifact,
    repro.certify.format,
    repro.certify.verifier,
    repro.lowerbound.bound,
    repro.obs.bench,
    repro.obs.ledger,
    repro.obs.export,
    repro.obs.metrics,
    repro.obs.telemetry,
    repro.service.protocol,
    repro.service.queue,
    repro.service.quota,
    repro.sim.serialization,
    repro.worldlog.record,
]


@pytest.mark.parametrize(
    "module", DOCUMENTED_MODULES, ids=lambda module: module.__name__
)
def test_module_doctests_pass(module):
    results = doctest.testmod(module, verbose=False)
    # Zero attempted would mean the examples silently vanished.
    assert results.attempted > 0, f"{module.__name__} lost its doctests"
    assert results.failed == 0
