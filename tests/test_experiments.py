"""Integration tests: every experiment reproduces its paper claim.

These run the experiment suite at reduced scale and assert the *shape*
conclusions EXPERIMENTS.md records — who wins, which boundary holds —
rather than absolute numbers.
"""

import pytest

from repro.experiments import (
    run_e1,
    run_e2,
    run_e3,
    run_e4,
    run_e5,
    run_e6,
    run_e7,
    run_e8,
    run_e9,
)


class TestE1WeakConsensusFloor:
    def test_no_point_below_floor(self):
        result = run_e1(max_t=12)
        assert result.data["floor_violations"] == []

    def test_report_mentions_fit(self):
        result = run_e1(max_t=12)
        assert "power-law fit" in result.report


class TestE2FigureOne:
    def test_bands_match_figure(self):
        result = run_e2()
        isolate_at = result.data["isolate_at"]
        assert result.data["in_group_divergence"] >= isolate_at + 1
        assert result.data["outside_divergence"] >= isolate_at + 2


class TestE3Attack:
    def test_every_cheater_broken(self):
        result = run_e3(ts=(8,))
        outcomes = result.data["outcomes"]
        assert result.data["broken"] == len(outcomes)
        assert all(outcome.found_violation for outcome in outcomes)


class TestE4Reduction:
    def test_zero_overhead(self):
        result = run_e4(n=5, t=1)
        assert result.data["max_overhead"] == 0

    def test_decisions_follow_the_bit(self):
        result = run_e4(n=5, t=1)
        for _, bit, decided, *_ in result.data["rows"]:
            assert decided == [bit]


class TestE5Solvability:
    def test_standard_problems_classified_solvable(self):
        result = run_e5(n=4, t=1)
        for row in result.data["rows"]:
            name, trivial, cc, auth, unauth, solved = row
            if trivial == "N":
                assert cc == "Y"
                assert auth == "Y"
                assert solved == "yes"


class TestE6Theorem5:
    def test_boundary_exact(self):
        result = run_e6(max_n=6)
        assert result.data["mismatches"] == []
        assert len(result.data["points"]) > 0


class TestE7ProtocolComplexity:
    def test_dolev_strong_at_least_quadratic_in_t(self):
        from repro.analysis.fitting import fit_sweep

        result = run_e7(max_t=8)
        ds_points = result.data["points"]["dolev-strong"]
        fit = fit_sweep(ds_points)
        assert fit.exponent >= 1.8  # quadratic shape on the n = 2t grid
        # And every point respects the Lemma-1 floor.
        assert all(
            point.worst_messages >= point.floor for point in ds_points
        )


class TestE8ExternalValidity:
    def test_corollary1_hypothesis_and_bound(self):
        result = run_e8(n=5, t=2)
        assert result.data["decision_a"] != result.data["decision_b"]
        assert result.data["messages"] >= result.data["floor"]

    def test_reduction_solves_weak_consensus(self):
        result = run_e8(n=5, t=2)
        zero = result.data["weak_zero"].correct_decisions()
        one = result.data["weak_one"].correct_decisions()
        assert set(zero.values()) == {0}
        assert set(one.values()) == {1}


class TestE9SwapMerge:
    def test_constructions_verified(self):
        result = run_e9(n=8, t=4, samples=3)
        assert result.data["swap_checks"] > 0
        assert result.data["merge_checks"] > 0


class TestReportPlumbing:
    @pytest.mark.parametrize(
        "runner,experiment_id",
        [
            (run_e2, "E2"),
            (run_e6, "E6"),
        ],
    )
    def test_result_structure(self, runner, experiment_id):
        result = runner()
        assert result.experiment == experiment_id
        assert result.report
        assert result.title
