"""Certificate tampering: every forgery is rejected, by name.

The acceptance bar for the verifier: mutate each section of a real
certificate — a message payload, a fragment bound, the message count,
the claims — and the verifier must reject the artifact with the
*correct named condition* as the first violated one, not merely "some
check failed".

Each mutator receives a deep copy of a genuine artifact's payload and
edits it in place.  Mutators replace list entries with fresh dicts
(``{**message, ...}``) rather than editing message records, because the
encoder may alias one record between a sender's ``sent`` and the
receiver's ``received`` — a mutation through an alias would tamper both
sides consistently and test nothing.
"""

import copy
import json

import pytest

from repro.certify.verifier import verify_certificate


def _canon(record):
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def _witness_record(payload):
    return payload["executions"][payload["witness"]["execution"]]


def _first_sent(record, predicate=lambda message: True):
    """Locate the first matching sent message: (fragment, index)."""
    for behavior in record["behaviors"]:
        for fragment in behavior["fragments"]:
            for index, message in enumerate(fragment["sent"]):
                if predicate(message):
                    return fragment, index
    raise AssertionError("fixture has no sent message matching the test")


def _first_received(record, predicate=lambda message: True):
    """Locate the first matching received message: (fragment, index)."""
    for behavior in record["behaviors"]:
        for fragment in behavior["fragments"]:
            for index, message in enumerate(fragment["received"]):
                if predicate(message):
                    return fragment, index
    raise AssertionError(
        "fixture has no received message matching the test"
    )


# -- mutators: each edits one section of the payload in place ----------


def schema_version(payload):
    payload["schema"] = 99


def missing_section(payload):
    del payload["accounting"]


def fault_budget(payload):
    record = _witness_record(payload)
    record["faulty"] = list(range(payload["claim"]["t"] + 1))


def composition(payload):
    _witness_record(payload)["behaviors"].pop()


def state_identity(payload):
    state = _witness_record(payload)["behaviors"][2]["fragments"][0][
        "state"
    ]
    assert state["process"] == 2
    state["process"] = 3


def message_round(payload):
    fragment, index = _first_sent(_witness_record(payload))
    message = fragment["sent"][index]
    fragment["sent"][index] = {**message, "round": message["round"] + 1}


def duplicate_receiver(payload):
    fragment, index = _first_sent(_witness_record(payload))
    message = fragment["sent"][index]
    fragment["sent"].append({**message, "payload": {"forged": True}})


def self_message(payload):
    fragment, index = _first_sent(_witness_record(payload))
    message = fragment["sent"][index]
    fragment["sent"][index] = {**message, "receiver": message["sender"]}


def sender_side_payload(payload):
    fragment, index = _first_sent(
        _witness_record(payload),
        lambda message: message["sender"] < message["receiver"],
    )
    message = fragment["sent"][index]
    fragment["sent"][index] = {**message, "payload": {"forged": True}}


def receiver_side_payload(payload):
    fragment, index = _first_received(
        _witness_record(payload),
        lambda message: message["sender"] > message["receiver"],
    )
    message = fragment["received"][index]
    fragment["received"][index] = {**message, "payload": {"forged": True}}


def unreported_omission(payload):
    record = _witness_record(payload)
    faulty = set(record["faulty"])
    fragment, index = _first_received(
        record, lambda message: message["receiver"] not in faulty
    )
    fragment["receive_omitted"].append(fragment["received"].pop(index))


def round_sequence(payload):
    state = _witness_record(payload)["behaviors"][1]["fragments"][1][
        "state"
    ]
    state["round"] = 99


def unstable_proposal(payload):
    state = _witness_record(payload)["behaviors"][1]["fragments"][1][
        "state"
    ]
    state["proposal"] = {"forged": True}


def predecided(payload):
    state = _witness_record(payload)["behaviors"][1]["fragments"][0][
        "state"
    ]
    assert state["decision"] is None
    state["decision"] = {"forged": True}


def final_state_round(payload):
    _witness_record(payload)["behaviors"][1]["final_state"]["round"] = 99


def isolation_group(payload):
    claim = payload["isolation"][0]
    record = payload["executions"][claim["execution"]]
    correct = min(
        pid
        for pid in range(record["n"])
        if pid not in set(record["faulty"])
    )
    claim["group"].append(correct)


def indistinguishability_dangling(payload):
    payload["indistinguishability"][0]["left"] = "ghost"


def indistinguishability_semantic(payload):
    # Un-deliver one message (both sides) in the witness execution only:
    # every A.1.4/A.1.6 condition still holds, but the receiver's view
    # no longer matches the pre-swap execution's.
    record = _witness_record(payload)
    for behavior in record["behaviors"]:
        for fragment in behavior["fragments"]:
            for index, message in enumerate(fragment["sent"]):
                receiver = record["behaviors"][message["receiver"]]
                target = receiver["fragments"][message["round"] - 1]
                for other_index, other in enumerate(target["received"]):
                    if _canon(other) == _canon(message):
                        target["received"].pop(other_index)
                        fragment["sent"].pop(index)
                        return
    raise AssertionError("fixture has no delivered message")


def witness_dangling(payload):
    payload["witness"]["execution"] = "ghost"


def witness_kind(payload):
    payload["witness"]["kind"] = "magic"


def culprit_faulty(payload):
    record = _witness_record(payload)
    culprit = payload["witness"]["culprit"]
    assert culprit not in record["faulty"]
    assert len(record["faulty"]) < payload["claim"]["t"]
    record["faulty"].append(culprit)


def agreement_forged(payload):
    # Rewrite the culprit's decisions (wherever written) to match the
    # counterpart's, keeping A.1.5 write-once intact — the disagreement
    # claim itself is the only thing that breaks.
    witness = payload["witness"]
    record = _witness_record(payload)
    other = record["behaviors"][witness["counterpart"]]["final_state"][
        "decision"
    ]
    assert other is not None
    behavior = record["behaviors"][witness["culprit"]]
    for fragment in behavior["fragments"]:
        if fragment["state"]["decision"] is not None:
            fragment["state"]["decision"] = other
    behavior["final_state"]["decision"] = other


def count_inflated(payload):
    payload["accounting"]["per_execution"]["witness"] += 1


def floor_lowered(payload):
    payload["accounting"]["floor"] = 0.0


def verdict_flip(payload):
    payload["claim"]["verdict"] = "bound-respected"


def provenance_op(payload):
    payload["provenance"][0]["op"] = "conjure"


def provenance_dangling(payload):
    step = payload["provenance"][-1]
    assert "result" in step
    step["result"] = "ghost"


MUTATIONS = [
    (schema_version, "schema.version"),
    (missing_section, "schema.structure"),
    (fault_budget, "A.1.6.fault-budget"),
    (composition, "A.1.6.composition"),
    (state_identity, "A.1.4.state"),
    (message_round, "A.1.4.round"),
    (self_message, "A.1.4.no-self"),
    (duplicate_receiver, "A.1.4.unique-receiver"),
    (round_sequence, "A.1.5.round-sequence"),
    (unstable_proposal, "A.1.5.stable-proposal"),
    (predecided, "A.1.5.write-once-decision"),
    (final_state_round, "A.1.5.final-state"),
    (sender_side_payload, "A.1.6.send-validity"),
    (receiver_side_payload, "A.1.6.receive-validity"),
    (unreported_omission, "A.1.6.omission-validity"),
    (isolation_group, "definition-1.isolation"),
    (indistinguishability_dangling, "s3.indistinguishability"),
    (indistinguishability_semantic, "s3.indistinguishability"),
    (witness_dangling, "witness.reference"),
    (witness_kind, "witness.reference"),
    (culprit_faulty, "witness.culprit-correct"),
    (agreement_forged, "witness.agreement"),
    (count_inflated, "accounting.message-count"),
    (floor_lowered, "accounting.floor"),
    (verdict_flip, "accounting.verdict"),
    (provenance_op, "provenance.reference"),
    (provenance_dangling, "provenance.reference"),
]


class TestTamperingMatrix:
    @pytest.mark.parametrize(
        ("mutate", "condition"),
        MUTATIONS,
        ids=[mutate.__name__ for mutate, _ in MUTATIONS],
    )
    def test_mutation_rejected_with_named_condition(
        self, violation_certificate, mutate, condition
    ):
        payload = copy.deepcopy(violation_certificate.payload)
        mutate(payload)
        report = verify_certificate(payload)
        assert not report.ok
        assert report.first.condition == condition
        # The failure is located, not just named.
        assert report.first.detail

    def test_untampered_baseline_still_verifies(
        self, violation_certificate
    ):
        # Guards the matrix against a fixture that was broken all along.
        assert verify_certificate(
            copy.deepcopy(violation_certificate.payload)
        ).ok


class TestBoundCertificateTampering:
    def test_observed_count_inflated(self, bound_setup):
        _, outcome = bound_setup
        payload = copy.deepcopy(outcome.certificate.payload)
        payload["accounting"]["observed"] += 7
        report = verify_certificate(payload)
        assert not report.ok
        assert report.first.condition == "accounting.observed"

    def test_verdict_forged_without_witness(self, bound_setup):
        _, outcome = bound_setup
        payload = copy.deepcopy(outcome.certificate.payload)
        payload["claim"]["verdict"] = "violation"
        report = verify_certificate(payload)
        assert not report.ok
        assert report.first.condition == "accounting.verdict"


class TestReplayTampering:
    def test_consistent_rewrite_caught_only_by_replay(
        self, violation_setup
    ):
        """A forgery beyond structural reach: rewrite one delivered
        message's payload consistently — sender and receiver sides, in
        every embedded execution — so all A.1.4/A.1.6 cross-checks and
        the indistinguishability claims still hold.  Only replaying the
        algorithm (behavior condition 7) can notice the process never
        sends that payload."""
        spec, outcome = violation_setup
        payload = copy.deepcopy(outcome.certificate.payload)
        executions = payload["executions"]

        # Pick a delivered message present in every execution, and a
        # donor payload (another message's — hence codec-decodable)
        # with a different value.
        def canons(record, bucket):
            return {
                _canon(message)
                for behavior in record["behaviors"]
                for fragment in behavior["fragments"]
                for message in fragment[bucket]
            }

        everywhere = set.intersection(
            *(
                canons(record, "sent") & canons(record, "received")
                for record in executions.values()
            )
        )
        assert everywhere, "fixture has no universally delivered message"
        target = json.loads(sorted(everywhere)[0])
        donor = None
        for canon in sorted(canons(_witness_record(payload), "sent")):
            candidate = json.loads(canon)
            if _canon(candidate["payload"]) != _canon(target["payload"]):
                donor = candidate["payload"]
                break
        assert donor is not None, "fixture messages are all identical"

        target_canon = _canon(target)
        rewritten = 0
        for record in executions.values():
            for behavior in record["behaviors"]:
                for fragment in behavior["fragments"]:
                    for bucket in (
                        "sent",
                        "received",
                        "send_omitted",
                        "receive_omitted",
                    ):
                        entries = fragment[bucket]
                        for index, message in enumerate(entries):
                            if _canon(message) == target_canon:
                                entries[index] = {
                                    **message,
                                    "payload": donor,
                                }
                                rewritten += 1
        assert rewritten >= 2 * len(executions)

        structural = verify_certificate(payload)
        assert structural.ok, structural.render()
        replayed = verify_certificate(payload, factory=spec.factory)
        assert not replayed.ok
        assert replayed.first.condition == "A.1.5.transition-replay"
