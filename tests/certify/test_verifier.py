"""The independent verifier: acceptance, dispatch, and independence.

The tampering matrix (every mutation rejected with its named condition)
lives in ``test_tampering.py``; this module covers the accepting paths
and the trust argument — the verifier must reach its verdict without
loading any producer-side code.
"""

import json
import pathlib
import subprocess
import sys

import repro
from repro.certify.verifier import (
    is_valid_certificate,
    verify_certificate,
)


class TestAcceptance:
    def test_violation_certificate_verifies_structurally(
        self, violation_certificate
    ):
        report = verify_certificate(violation_certificate)
        assert report.ok
        assert report.first is None
        assert not report.replayed
        # The pass walks the full condition set, not a spot check.
        assert report.conditions_checked > 100
        assert "VERIFIED (structural" in report.render()

    def test_violation_certificate_survives_replay(self, violation_setup):
        spec, outcome = violation_setup
        report = verify_certificate(
            outcome.certificate, factory=spec.factory
        )
        assert report.ok
        assert report.replayed
        assert "structural+replay" in report.render()

    def test_bound_certificate_verifies(self, bound_setup):
        spec, outcome = bound_setup
        report = verify_certificate(
            outcome.certificate, factory=spec.factory
        )
        assert report.ok
        assert outcome.certificate.verdict == "bound-respected"

    def test_predicate_form(self, violation_certificate):
        assert is_valid_certificate(violation_certificate)
        assert not is_valid_certificate({"format": "bogus"})


class TestSourceDispatch:
    """One verdict regardless of how the artifact arrives."""

    def test_all_source_forms_agree(self, violation_certificate):
        reports = [
            verify_certificate(source)
            for source in (
                violation_certificate,
                violation_certificate.payload,
                violation_certificate.dumps(),
                violation_certificate.to_bytes(),
            )
        ]
        assert all(report.ok for report in reports)
        assert len({r.conditions_checked for r in reports}) == 1

    def test_invalid_json_text(self):
        report = verify_certificate("{definitely not json")
        assert not report.ok
        assert report.first.condition == "schema.structure"

    def test_non_utf8_bytes(self):
        report = verify_certificate(b"\xff\xfe not a certificate")
        assert not report.ok
        assert report.first.condition == "schema.structure"

    def test_foreign_document(self):
        report = verify_certificate({"format": "something-else"})
        assert not report.ok
        assert report.first.condition == "schema.version"
        assert "REJECTED" in report.render()
        assert "schema.version" in report.render()


class TestVerifierIndependence:
    """The acceptance bar: a structural verification never loads the
    attack driver, the simulation engine, or even the producer-side
    format module — the artifact is judged by reimplemented checks."""

    def test_structural_verification_loads_no_producer_code(
        self, violation_certificate, tmp_path
    ):
        artifact = tmp_path / "witness.cert.json"
        artifact.write_bytes(violation_certificate.to_bytes())
        src = str(pathlib.Path(repro.__file__).resolve().parents[1])
        script = (
            "import json, sys\n"
            "from repro.certify.verifier import verify_certificate\n"
            f"blob = open({str(artifact)!r}, 'rb').read()\n"
            "report = verify_certificate(blob)\n"
            "loaded = sorted(\n"
            "    name for name in sys.modules\n"
            "    if name == 'repro' or name.startswith('repro.')\n"
            ")\n"
            "print(json.dumps({'ok': report.ok, 'loaded': loaded}))\n"
        )
        completed = subprocess.run(
            [sys.executable, "-c", script],
            env={"PYTHONPATH": src, "PATH": "/usr/bin:/bin"},
            capture_output=True,
            text=True,
            check=True,
        )
        result = json.loads(completed.stdout)
        assert result["ok"] is True
        # Exactly the verifier and the package roots it sits under —
        # no driver, no engine, no serialization, no format module.
        assert result["loaded"] == [
            "repro",
            "repro.certify",
            "repro.certify.verifier",
            "repro.errors",
            "repro.types",
        ]
