"""Shared fixtures: certified attack outcomes to dissect.

Session-scoped — the attacks are deterministic and read-only; tests that
mutate artifacts deep-copy the payload first.
"""

import pytest

from repro.lowerbound.driver import attack_weak_consensus
from repro.protocols.subquadratic import leader_echo_spec
from repro.protocols.weak_consensus import naive_flooding_spec


@pytest.fixture(scope="session")
def violation_setup():
    """A certified violation: (spec, outcome) for a broken cheater.

    leader-echo actually sends messages, so the artifact exercises the
    message-level conditions (silent's traces are all-empty).
    """
    spec = leader_echo_spec(12, 8)
    outcome = attack_weak_consensus(spec, certify=True)
    assert outcome.witness is not None
    assert outcome.certificate is not None
    return spec, outcome


@pytest.fixture(scope="session")
def violation_certificate(violation_setup):
    return violation_setup[1].certificate


@pytest.fixture(scope="session")
def bound_setup():
    """A certified bound-respected outcome: (spec, outcome)."""
    spec = naive_flooding_spec(8, 4)
    outcome = attack_weak_consensus(spec, certify=True)
    assert outcome.witness is None
    assert outcome.certificate is not None
    return spec, outcome
