"""The v1 certificate artifact format (build, roundtrip, rejection)."""

import json

import pytest

from repro.certify.format import (
    CERTIFICATE_FORMAT,
    CERTIFICATE_SCHEMA,
    Certificate,
    build_certificate,
    dump_certificate,
    load_certificate,
)
from repro.errors import ReproError


class TestCertificateAccessors:
    def test_claim_properties(self, violation_setup):
        spec, outcome = violation_setup
        certificate = outcome.certificate
        assert certificate.schema == CERTIFICATE_SCHEMA
        assert certificate.verdict == "violation"
        assert certificate.protocol == outcome.protocol
        assert certificate.n == spec.n
        assert certificate.t == spec.t

    def test_execution_labels_sorted(self, violation_certificate):
        labels = violation_certificate.execution_labels
        assert labels == tuple(sorted(labels))
        assert "witness" in labels

    def test_embedded_witness_execution_decodes_exactly(
        self, violation_setup
    ):
        _, outcome = violation_setup
        decoded = outcome.certificate.execution("witness")
        assert decoded == outcome.witness.execution

    def test_witness_reconstructs(self, violation_setup):
        _, outcome = violation_setup
        rebuilt = outcome.certificate.witness()
        assert rebuilt == outcome.witness

    def test_bound_certificate_has_no_witness(self, bound_setup):
        _, outcome = bound_setup
        certificate = outcome.certificate
        assert certificate.verdict == "bound-respected"
        assert certificate.witness() is None
        assert certificate.execution_labels == ("max-messages",)

    def test_unknown_label_raises(self, violation_certificate):
        with pytest.raises(ReproError, match="no execution"):
            violation_certificate.execution("no-such-label")


class TestRoundtrip:
    def test_dumps_is_canonical_json(self, violation_certificate):
        text = violation_certificate.dumps()
        assert text == violation_certificate.dumps()
        assert json.loads(text) == violation_certificate.payload

    def test_text_roundtrip(self, violation_certificate):
        text = dump_certificate(violation_certificate)
        assert load_certificate(text) == violation_certificate

    def test_bytes_roundtrip(self, violation_certificate):
        blob = violation_certificate.to_bytes()
        assert isinstance(blob, bytes)
        assert Certificate.from_bytes(blob) == violation_certificate


class TestLoaderRejection:
    def test_rejects_invalid_json(self):
        with pytest.raises(ReproError, match="not valid JSON"):
            Certificate.loads("{not json")

    def test_rejects_non_certificate_documents(self):
        with pytest.raises(ReproError, match="not a repro attack"):
            Certificate.from_dict({"format": "something-else"})
        with pytest.raises(ReproError, match="not a repro attack"):
            Certificate.from_dict(["not", "a", "dict"])

    def test_rejects_unknown_schema_versions(self):
        payload = {"format": CERTIFICATE_FORMAT, "schema": 99}
        with pytest.raises(ReproError, match="unsupported"):
            Certificate.from_dict(payload)


class TestBuilderValidation:
    """``build_certificate`` refuses inconsistent inputs eagerly."""

    def _base_kwargs(self, violation_setup):
        spec, outcome = violation_setup
        claim = outcome.certificate.payload["claim"]
        return {
            "protocol": outcome.protocol,
            "n": spec.n,
            "t": spec.t,
            "rounds": claim["rounds"],
            "partition": outcome.partition,
            "executions": {"witness": outcome.witness.execution},
        }

    def test_witness_requires_embedded_label(self, violation_setup):
        kwargs = self._base_kwargs(violation_setup)
        with pytest.raises(ReproError, match="witness"):
            build_certificate(
                **kwargs, witness=violation_setup[1].witness
            )
        with pytest.raises(ReproError, match="unembedded"):
            build_certificate(
                **kwargs,
                witness=violation_setup[1].witness,
                witness_label="not-embedded",
            )

    def test_dangling_claim_labels_rejected(self, violation_setup):
        kwargs = self._base_kwargs(violation_setup)
        with pytest.raises(ReproError, match="unembedded"):
            build_certificate(
                **kwargs,
                indistinguishability=[
                    {
                        "left": "witness",
                        "right": "ghost",
                        "processes": [0],
                    }
                ],
            )
        with pytest.raises(ReproError, match="unembedded"):
            build_certificate(
                **kwargs,
                isolations=[
                    {"execution": "ghost", "group": [0], "from_round": 1}
                ],
            )
        with pytest.raises(ReproError, match="unembedded"):
            build_certificate(**kwargs, max_label="ghost")
