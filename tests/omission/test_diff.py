"""Tests for the execution diff utility."""

import pytest

from repro.omission.indistinguishability import diff_executions
from repro.omission.isolation import isolate_group
from repro.omission.swap import swap_omission
from repro.protocols.phase_king import phase_king_spec
from repro.protocols.subquadratic import leader_echo_spec


class TestDiffExecutions:
    def test_identical_executions_empty_diff(self):
        spec = phase_king_spec(4, 1)
        left = spec.run([0, 1, 0, 1])
        right = spec.run([0, 1, 0, 1])
        assert diff_executions(left, right) == []

    def test_proposal_difference_found(self):
        spec = leader_echo_spec(6, 2)
        left = spec.run([0, 0, 0, 0, 0, 0])
        right = spec.run([1, 0, 0, 0, 0, 0])
        diffs = diff_executions(left, right)
        assert any(
            diff.pid == 0 and diff.field == "proposal"
            for diff in diffs
        )

    def test_swap_diff_is_only_omission_attribution(self):
        """Algorithm 4 changes only sent/send_omitted/receive_omitted
        records — never received sets, proposals or decisions.  The diff
        makes the Lemma-15 indistinguishability claim visible."""
        spec = leader_echo_spec(8, 4)
        isolated = spec.run_uniform(0, isolate_group({7}, 1))
        swapped = swap_omission(isolated, 7)
        diffs = diff_executions(isolated, swapped)
        assert diffs  # something did change
        assert all(
            diff.field
            in ("sent", "send_omitted", "receive_omitted")
            for diff in diffs
        )

    def test_limit_respected(self):
        spec = phase_king_spec(4, 1)
        left = spec.run([0, 0, 0, 0])
        right = spec.run([1, 1, 1, 1])
        diffs = diff_executions(left, right, limit=3)
        assert len(diffs) == 3

    def test_shape_mismatch_rejected(self):
        small = phase_king_spec(4, 1).run([0, 1, 0, 1])
        large = phase_king_spec(7, 2).run_uniform(0)
        with pytest.raises(ValueError, match="identical shape"):
            diff_executions(small, large)


class TestSweepCommand:
    def test_cli_sweep_runs(self, capsys):
        from repro.cli import main

        assert (
            main(["sweep", "leader-echo", "--max-t", "8"]) == 0
        )
        out = capsys.readouterr().out
        assert "t^2/32" in out
        assert "fit:" in out

    def test_cli_sweep_proportional(self, capsys):
        from repro.cli import main

        assert (
            main(
                [
                    "sweep",
                    "dolev-strong",
                    "--max-t",
                    "6",
                    "--grid",
                    "proportional",
                ]
            )
            == 0
        )
        assert "dolev-strong" in capsys.readouterr().out
