"""Tests for repro.omission.merge (Algorithm 5 / Definition 2 / Lemma 16)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ModelViolation
from repro.omission.isolation import check_isolated, isolate_group
from repro.omission.merge import (
    MergeSpec,
    check_merge_inputs,
    is_mergeable,
    merge,
    uniform_proposal,
)
from repro.protocols.phase_king import phase_king_spec
from repro.protocols.weak_consensus import broadcast_weak_consensus_spec
from repro.sim.state import behaviors_indistinguishable

N, T = 7, 4
GROUP_B = frozenset({5})
GROUP_C = frozenset({6})


@pytest.fixture
def spec():
    return broadcast_weak_consensus_spec(N, T)


def isolated(spec, group, k, bit=0):
    return spec.run_uniform(bit, isolate_group(group, k))


def merge_spec(k_b, k_c):
    return MergeSpec(
        group_b=GROUP_B, group_c=GROUP_C, round_b=k_b, round_c=k_c
    )


class TestMergeSpec:
    def test_rejects_overlapping_groups(self):
        with pytest.raises(ValueError, match="disjoint"):
            MergeSpec(
                group_b=frozenset({1}),
                group_c=frozenset({1}),
                round_b=1,
                round_c=1,
            )

    def test_rejects_empty_groups(self):
        with pytest.raises(ValueError, match="non-empty"):
            MergeSpec(
                group_b=frozenset(),
                group_c=frozenset({1}),
                round_b=1,
                round_c=1,
            )

    def test_group_a_is_complement(self):
        assert merge_spec(1, 1).group_a(N) == frozenset(range(5))


class TestMergeability:
    def test_round_one_pair_always_mergeable(self, spec):
        exec_b = isolated(spec, GROUP_B, 1, bit=0)
        exec_c = isolated(spec, GROUP_C, 1, bit=1)
        assert is_mergeable(merge_spec(1, 1), exec_b, exec_c)

    def test_adjacent_rounds_same_bit_mergeable(self, spec):
        exec_b = isolated(spec, GROUP_B, 3, bit=0)
        exec_c = isolated(spec, GROUP_C, 2, bit=0)
        assert is_mergeable(merge_spec(3, 2), exec_b, exec_c)

    def test_adjacent_rounds_different_bits_not_mergeable(self, spec):
        exec_b = isolated(spec, GROUP_B, 3, bit=0)
        exec_c = isolated(spec, GROUP_C, 2, bit=1)
        assert not is_mergeable(merge_spec(3, 2), exec_b, exec_c)

    def test_distant_rounds_not_mergeable(self, spec):
        exec_b = isolated(spec, GROUP_B, 4, bit=0)
        exec_c = isolated(spec, GROUP_C, 2, bit=0)
        assert not is_mergeable(merge_spec(4, 2), exec_b, exec_c)

    def test_isolation_round_must_match_claim(self, spec):
        exec_b = isolated(spec, GROUP_B, 2, bit=0)
        exec_c = isolated(spec, GROUP_C, 2, bit=0)
        with pytest.raises(ModelViolation):
            check_merge_inputs(merge_spec(1, 2), exec_b, exec_c)

    def test_uniform_proposal_required(self, spec):
        mixed = spec.run(
            [0, 0, 0, 1, 1, 0, 0], isolate_group(GROUP_B, 1)
        )
        with pytest.raises(ModelViolation, match="uniform"):
            uniform_proposal(mixed)


class TestLemma16Conclusions:
    def test_merge_round_one(self, spec):
        """The E_0^{B(1)} + E_1^{C(1)} splice of Lemma 3's base case."""
        exec_b = isolated(spec, GROUP_B, 1, bit=0)
        exec_c = isolated(spec, GROUP_C, 1, bit=1)
        merged = merge(merge_spec(1, 1), exec_b, exec_c, spec.factory)
        # check=True already ran the Lemma 16 verifier; spot-check the
        # conclusions independently.
        assert merged.faulty == GROUP_B | GROUP_C
        check_isolated(merged, GROUP_B, 1)
        check_isolated(merged, GROUP_C, 1)
        for pid in GROUP_B:
            assert behaviors_indistinguishable(
                merged.behavior(pid), exec_b.behavior(pid)
            )
        for pid in GROUP_C:
            assert behaviors_indistinguishable(
                merged.behavior(pid), exec_c.behavior(pid)
            )

    def test_merged_proposals_come_from_both_sides(self, spec):
        exec_b = isolated(spec, GROUP_B, 1, bit=0)
        exec_c = isolated(spec, GROUP_C, 1, bit=1)
        merged = merge(merge_spec(1, 1), exec_b, exec_c, spec.factory)
        proposals = merged.proposals()
        assert all(proposals[pid] == 0 for pid in range(5))
        assert proposals[5] == 0  # B side proposes with exec_b
        assert proposals[6] == 1  # C side proposes with exec_c

    def test_replayed_groups_keep_their_decisions(self, spec):
        exec_b = isolated(spec, GROUP_B, 1, bit=0)
        exec_c = isolated(spec, GROUP_C, 1, bit=1)
        merged = merge(merge_spec(1, 1), exec_b, exec_c, spec.factory)
        for pid in GROUP_B:
            assert merged.decision(pid) == exec_b.decision(pid)
        for pid in GROUP_C:
            assert merged.decision(pid) == exec_c.decision(pid)

    @settings(max_examples=12, deadline=None)
    @given(
        k_b=st.integers(1, 5),
        delta=st.sampled_from([-1, 0, 1]),
    )
    def test_lemma16_across_adjacent_rounds(self, k_b, delta):
        """Property: every Definition-2 pair merges into a valid
        execution with both isolations and both indistinguishabilities.

        (`merge` with check=True machine-verifies all of Lemma 16; the
        test also cross-checks with phase king, a chattier protocol.)"""
        k_c = k_b + delta
        if k_c < 1:
            k_c = 1
        spec = phase_king_spec(9, 2)
        group_b, group_c = frozenset({7}), frozenset({8})
        exec_b = spec.run_uniform(0, isolate_group(group_b, k_b))
        exec_c = spec.run_uniform(0, isolate_group(group_c, k_c))
        merged = merge(
            MergeSpec(
                group_b=group_b,
                group_c=group_c,
                round_b=k_b,
                round_c=k_c,
            ),
            exec_b,
            exec_c,
            spec.factory,
        )
        assert merged.faulty == group_b | group_c


class TestPaperRegimeGroups:
    def test_merge_with_quarter_sized_groups(self):
        """The paper's |B| = |C| = t/4 sizing at t = 16: groups of 4."""
        from repro.lowerbound.partition import paper_partition

        n, t = 24, 16
        spec = broadcast_weak_consensus_spec(n, t)
        partition = paper_partition(n, t)
        exec_b = spec.run_uniform(
            0, isolate_group(partition.group_b, 3)
        )
        exec_c = spec.run_uniform(
            0, isolate_group(partition.group_c, 2)
        )
        merged = merge(
            MergeSpec(
                group_b=partition.group_b,
                group_c=partition.group_c,
                round_b=3,
                round_c=2,
            ),
            exec_b,
            exec_c,
            spec.factory,
        )
        assert (
            merged.faulty == partition.group_b | partition.group_c
        )
        assert len(merged.faulty) == t // 2


class TestStrictReplay:
    def test_wrong_factory_detected(self, spec):
        """Merging executions of algorithm X with algorithm Y's factory
        trips the determinism cross-check."""
        exec_b = isolated(spec, GROUP_B, 1, bit=0)
        exec_c = isolated(spec, GROUP_C, 1, bit=1)
        other = phase_king_spec(N, T // 2)
        with pytest.raises(ModelViolation):
            merge(
                merge_spec(1, 1), exec_b, exec_c, other.factory
            )
