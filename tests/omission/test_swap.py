"""Tests for repro.omission.swap (Algorithm 4 / Lemma 15)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ModelViolation
from repro.omission.indistinguishability import indistinguishable_to_all
from repro.omission.isolation import isolate_group
from repro.omission.swap import (
    blamed_senders,
    swap_omission,
    swap_omission_checked,
)
from repro.protocols.subquadratic import (
    committee_cheater_spec,
    leader_echo_spec,
)
from repro.protocols.weak_consensus import broadcast_weak_consensus_spec
from repro.sim.adversary import CrashAdversary
from repro.sim.execution import check_execution


def isolated_leader_echo(n=8, t=4, k=1, group=None):
    spec = leader_echo_spec(n, t)
    group = frozenset(group or {n - 1})
    return spec, group, spec.run_uniform(0, isolate_group(group, k))


class TestSwapMechanics:
    def test_focal_process_becomes_correct(self):
        _, group, execution = isolated_leader_echo()
        pid = next(iter(group))
        swapped = swap_omission(execution, pid)
        assert pid not in swapped.faulty

    def test_blame_moves_to_senders(self):
        _, group, execution = isolated_leader_echo()
        pid = next(iter(group))
        senders = blamed_senders(execution, pid)
        assert senders == {0}  # only the leader's verdict was dropped
        swapped = swap_omission(execution, pid)
        assert senders <= swapped.faulty

    def test_messages_move_to_send_omitted(self):
        _, group, execution = isolated_leader_echo()
        pid = next(iter(group))
        dropped = execution.behavior(pid).all_receive_omitted()
        swapped = swap_omission(execution, pid)
        assert swapped.behavior(pid).all_receive_omitted() == frozenset()
        for message in dropped:
            sender_behavior = swapped.behavior(message.sender)
            assert message in sender_behavior.all_send_omitted()
            assert message not in sender_behavior.all_sent()

    def test_no_omissions_yields_empty_faulty(self):
        """Swapping a process that omitted nothing un-faults everyone who
        committed no faults (e.g. late isolation that never bit)."""
        spec = leader_echo_spec(6, 3)
        execution = spec.run_uniform(
            0, isolate_group({5}, 10)  # beyond the 2-round horizon
        )
        swapped = swap_omission(execution, 5)
        assert swapped.faulty == frozenset()


class TestLemma15Conclusions:
    def test_checked_swap_validates_everything(self):
        _, group, execution = isolated_leader_echo()
        pid = next(iter(group))
        result = swap_omission_checked(
            execution, pid, witness_correct=1
        )
        check_execution(result.execution)
        assert indistinguishable_to_all(execution, result.execution)
        assert result.now_correct == pid
        assert result.newly_faulty == {0}

    def test_precondition_send_omissions_rejected(self):
        spec = leader_echo_spec(6, 3)
        execution = spec.run_uniform(0, CrashAdversary({5: 1}))
        with pytest.raises(ModelViolation, match="must not send-omit"):
            swap_omission_checked(execution, 5)

    def test_precondition_budget_rejected(self):
        """A chatty protocol blames too many senders: |F'| > t."""
        spec = broadcast_weak_consensus_spec(8, 2)
        execution = spec.run_uniform(0, isolate_group({7}, 1))
        with pytest.raises(ModelViolation, match="exceeds t"):
            swap_omission_checked(execution, 7)

    def test_witness_correct_preserved(self):
        _, group, execution = isolated_leader_echo()
        pid = next(iter(group))
        # p0 (the leader) is blamed; using it as a witness must fail.
        with pytest.raises(ModelViolation, match="became faulty"):
            swap_omission_checked(execution, pid, witness_correct=0)

    def test_decisions_preserved_by_swap(self):
        """Indistinguishability at work: every decision is unchanged."""
        _, group, execution = isolated_leader_echo()
        pid = next(iter(group))
        swapped = swap_omission(execution, pid)
        assert swapped.decisions() == execution.decisions()


class TestSwapProperty:
    @settings(max_examples=25, deadline=None)
    @given(
        k=st.integers(1, 3),
        committee=st.integers(1, 2),
        member=st.integers(0, 1),
    )
    def test_lemma15_on_random_isolations(self, k, committee, member):
        """Property: for the sparse committee cheater, any isolated
        member can be swapped and all Lemma-15 conclusions hold."""
        n, t = 9, 4
        spec = committee_cheater_spec(n, t, committee_size=committee)
        group = frozenset({n - 2, n - 1})
        execution = spec.run_uniform(0, isolate_group(group, k))
        pid = sorted(group)[member]
        result = swap_omission_checked(execution, pid)
        assert pid not in result.execution.faulty
        assert indistinguishable_to_all(execution, result.execution)
