"""Tests for repro.omission.isolation (Definition 1)."""

import pytest

from repro.errors import AdversaryError, ModelViolation
from repro.omission.isolation import (
    IsolationAdversary,
    check_isolated,
    is_isolated,
    isolate_group,
)
from repro.protocols.phase_king import phase_king_spec
from repro.protocols.weak_consensus import broadcast_weak_consensus_spec
from repro.sim.adversary import CrashAdversary
from repro.sim.message import Message


class TestAdversaryConstruction:
    def test_members_become_corrupted(self):
        adversary = isolate_group({2, 3}, 1)
        assert adversary.corrupted == {2, 3}

    def test_rejects_empty_group(self):
        with pytest.raises(AdversaryError, match="empty group"):
            IsolationAdversary({frozenset(): 1})

    def test_rejects_overlapping_groups(self):
        with pytest.raises(AdversaryError, match="disjoint"):
            IsolationAdversary(
                {frozenset({1, 2}): 1, frozenset({2, 3}): 1}
            )

    def test_rejects_round_zero(self):
        with pytest.raises(AdversaryError, match=">= 1"):
            isolate_group({1}, 0)


class TestDropRule:
    def test_drops_outside_traffic_from_round_k(self):
        adversary = isolate_group({2, 3}, 4)
        assert adversary.receive_omits(Message(0, 2, 4))
        assert adversary.receive_omits(Message(0, 3, 9))

    def test_keeps_early_traffic(self):
        adversary = isolate_group({2, 3}, 4)
        assert not adversary.receive_omits(Message(0, 2, 3))

    def test_keeps_in_group_traffic(self):
        adversary = isolate_group({2, 3}, 1)
        assert not adversary.receive_omits(Message(3, 2, 7))

    def test_never_send_omits(self):
        adversary = isolate_group({2, 3}, 1)
        assert not adversary.send_omits(Message(2, 0, 5))

    def test_two_groups_isolated_independently(self):
        adversary = IsolationAdversary(
            {frozenset({1}): 2, frozenset({4}): 5}
        )
        assert adversary.receive_omits(Message(0, 1, 2))
        assert not adversary.receive_omits(Message(0, 4, 4))
        assert adversary.receive_omits(Message(0, 4, 5))


class TestRecordedExecutionChecks:
    def test_simulated_isolation_satisfies_definition(self):
        spec = phase_king_spec(7, 2)
        for k in (1, 3, 5):
            execution = spec.run_uniform(0, isolate_group({5, 6}, k))
            check_isolated(execution, {5, 6}, k)

    def test_crash_is_not_isolation(self):
        spec = broadcast_weak_consensus_spec(5, 2)
        # Crash the designated broadcaster: it send-omits its round-1
        # broadcast, which Definition 1 forbids.  (Crashing a process
        # with nothing to send *is* indistinguishable from isolating it.)
        execution = spec.run_uniform(0, CrashAdversary({0: 1}))
        assert not is_isolated(execution, {0}, 1)

    def test_wrong_round_rejected(self):
        spec = phase_king_spec(7, 2)
        execution = spec.run_uniform(0, isolate_group({5, 6}, 3))
        # Claiming isolation from round 1 fails: rounds 1-2 traffic was
        # received, which isolation-from-1 requires dropping.
        assert not is_isolated(execution, {5, 6}, 1)

    def test_group_must_be_faulty(self):
        spec = phase_king_spec(7, 2)
        execution = spec.run_uniform(0)
        with pytest.raises(ModelViolation, match="not within faulty"):
            check_isolated(execution, {5}, 1)

    def test_group_must_fit_budget(self):
        spec = phase_king_spec(7, 2)
        execution = spec.run_uniform(0, isolate_group({5, 6}, 1))
        with pytest.raises(ModelViolation, match="exceeds t"):
            check_isolated(execution, {4, 5, 6}, 1)

    def test_empty_group_rejected(self):
        spec = phase_king_spec(7, 2)
        execution = spec.run_uniform(0)
        with pytest.raises(ModelViolation, match="empty"):
            check_isolated(execution, set(), 1)

    def test_whole_system_rejected(self):
        """Isolating all of Π is impossible: |G| <= t < n forces a proper
        subset, so the size check fires first."""
        spec = broadcast_weak_consensus_spec(4, 3)
        execution = spec.run_uniform(0, isolate_group({1, 2, 3}, 1))
        with pytest.raises(ModelViolation, match="exceeds t"):
            check_isolated(execution, {0, 1, 2, 3}, 1)
