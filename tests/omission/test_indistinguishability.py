"""Tests for repro.omission.indistinguishability (§3, Figure 1)."""

from repro.omission.indistinguishability import (
    divergence_profile,
    first_distinguishing_round,
    first_send_divergence,
    indistinguishable_to,
    indistinguishable_to_all,
)
from repro.omission.isolation import isolate_group
from repro.protocols.eig import eig_consensus_spec
from repro.protocols.phase_king import phase_king_spec


def reference_and_isolated(spec, group, k, proposals=None):
    proposals = proposals or [index % 2 for index in range(spec.n)]
    return (
        spec.run(proposals),
        spec.run(proposals, isolate_group(group, k)),
    )


class TestBasicRelations:
    def test_identical_runs_indistinguishable_to_all(self):
        spec = phase_king_spec(4, 1)
        left = spec.run([0, 1, 0, 1])
        right = spec.run([0, 1, 0, 1])
        assert indistinguishable_to_all(left, right)

    def test_isolation_is_visible_to_the_isolated(self):
        spec = phase_king_spec(7, 2)
        reference, isolated = reference_and_isolated(spec, {5, 6}, 2)
        assert not indistinguishable_to(reference, isolated, 5)

    def test_isolation_invisible_before_it_starts(self):
        spec = phase_king_spec(7, 2)
        reference, isolated = reference_and_isolated(spec, {5, 6}, 3)
        assert first_distinguishing_round(reference, isolated, 5) >= 3

    def test_proposal_difference_is_round_zero(self):
        spec = phase_king_spec(4, 1)
        left = spec.run([0, 1, 0, 1])
        right = spec.run([1, 1, 0, 1])
        assert first_distinguishing_round(left, right, 0) == 0

    def test_different_sizes_never_indistinguishable(self):
        small = phase_king_spec(4, 1).run([0, 1, 0, 1])
        large = phase_king_spec(7, 2).run_uniform(0)
        assert not indistinguishable_to_all(small, large)


class TestFigureOneBands:
    """The quantitative content of Figure 1, on EIG's relay cascade."""

    def test_bands_at_r_plus_one_and_r_plus_two(self):
        spec = eig_consensus_spec(10, 3)
        group = frozenset({8, 9})
        isolate_at = 2
        reference, isolated = reference_and_isolated(
            spec, group, isolate_at
        )
        profile = divergence_profile(reference, isolated)
        inside = profile.earliest_send_divergence(group)
        outside = profile.earliest_send_divergence(
            frozenset(range(10)) - group
        )
        # Red band: the isolated group's sends deviate no earlier than
        # one round after the isolation bites.
        assert inside is not None and inside >= isolate_at + 1
        # Blue band: the outside deviates no earlier than one further
        # propagation step.
        assert outside is not None and outside >= isolate_at + 2

    def test_no_divergence_without_faults(self):
        spec = eig_consensus_spec(7, 2)
        proposals = [index % 2 for index in range(7)]
        left = spec.run(proposals)
        right = spec.run(proposals)
        profile = divergence_profile(left, right)
        assert all(
            value is None
            for value in profile.send_divergence.values()
        )

    def test_first_send_divergence_ignores_omission_split(self):
        """Send divergence compares attempted sends (sent ∪ omitted):
        pure receive-omission adversaries never forge divergence before
        the state actually changes."""
        spec = eig_consensus_spec(7, 2)
        reference, isolated = reference_and_isolated(spec, {6}, 1)
        assert first_send_divergence(reference, isolated, 6) >= 2
