"""Tests for the reusable Byzantine strategies themselves."""

from repro.protocols.byzantine_strategies import (
    crash_at,
    garbage,
    mute,
    two_faced,
)
from repro.protocols.phase_king import phase_king_spec


def build(strategy, pid=0, n=4, t=1, proposal=0):
    spec = phase_king_spec(n, t)
    return strategy(pid, spec.factory, proposal)


class TestMute:
    def test_sends_nothing(self):
        machine = build(mute())
        for round_ in range(1, 7):
            assert machine.outgoing(round_) == {}
            machine.deliver(round_, {})
        assert machine.decision is None


class TestCrashAt:
    def test_honest_then_silent(self):
        honest = build(lambda p, f, v: f(p, v))
        crashing = build(crash_at(3))
        assert crashing.outgoing(1) == honest.outgoing(1)
        honest.deliver(1, {})
        crashing.deliver(1, {})
        assert crashing.outgoing(2) == honest.outgoing(2)
        honest.deliver(2, {})
        crashing.deliver(2, {})
        assert crashing.outgoing(3) == {}
        assert crashing.outgoing(4) == {}


class TestTwoFaced:
    def test_shows_different_faces(self):
        machine = build(two_faced(0, 1), n=4, t=1)
        outgoing = machine.outgoing(1)
        # Phase king round 1 broadcasts the current value: the low half
        # sees value 0 and the high half value 1.
        low = {r: p for r, p in outgoing.items() if r < 2}
        high = {r: p for r, p in outgoing.items() if r >= 2}
        assert all(payload == ("value", 0) for payload in low.values())
        assert all(payload == ("value", 1) for payload in high.values())

    def test_routes_receipts_to_matching_face(self):
        machine = build(two_faced(0, 1), n=4, t=1)
        machine.outgoing(1)
        # Delivery must not crash and must keep both inner machines
        # consistent with their own half's traffic.
        machine.deliver(
            1, {1: ("value", 0), 2: ("value", 1), 3: ("value", 1)}
        )
        outgoing = machine.outgoing(2)
        assert set(outgoing) <= {0, 1, 2, 3}


class TestGarbage:
    def test_deterministic_junk(self):
        machine_a = build(garbage())
        machine_b = build(garbage())
        assert machine_a.outgoing(1) == machine_b.outgoing(1)
        assert machine_a.outgoing(2)[1] == ("garbage", 0, 2)
