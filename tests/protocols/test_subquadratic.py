"""Tests for the sub-quadratic cheaters: they really are sub-quadratic,
they look plausible in easy cases, and they are genuinely incorrect."""

import pytest

from repro.lowerbound.bound import weak_consensus_floor
from repro.omission.isolation import isolate_group
from repro.protocols.subquadratic import (
    ALL_CHEATERS,
    committee_cheater_spec,
    leader_echo_spec,
    ring_token_spec,
    silent_cheater_spec,
)


def decisions(execution):
    return set(execution.correct_decisions().values())


class TestPlausibleBehaviour:
    """Fault-free, each cheater looks like a weak consensus protocol."""

    @pytest.mark.parametrize("builder", ALL_CHEATERS)
    def test_weak_validity_fault_free(self, builder):
        spec = builder(10, 8)
        assert decisions(spec.run_uniform(0)) == {0}
        assert decisions(spec.run_uniform(1)) == {1}

    @pytest.mark.parametrize("builder", ALL_CHEATERS)
    def test_fault_free_agreement_on_mixed(self, builder):
        if builder is silent_cheater_spec:
            pytest.skip("silent cheater is honest only on unanimity")
        spec = builder(10, 8)
        execution = spec.run([0, 1] * 5)
        assert len(decisions(execution)) == 1


class TestSubQuadraticBudgets:
    def test_silent_sends_nothing(self):
        spec = silent_cheater_spec(64, 56)
        assert spec.run_uniform(0).message_complexity() == 0

    def test_leader_echo_linear(self):
        for t in (16, 32, 56):
            n = t + 8
            spec = leader_echo_spec(n, t)
            messages = spec.run_uniform(0).message_complexity()
            assert messages == 2 * (n - 1)

    def test_leader_echo_below_floor_at_scale(self):
        t = 128
        n = t + 8
        spec = leader_echo_spec(n, t)
        messages = spec.run_uniform(0).message_complexity()
        assert messages < weak_consensus_floor(t)

    def test_committee_message_count(self):
        """Exact count: reports to the committee + verdict broadcasts."""
        n, t, c = 10, 8, 2
        spec = committee_cheater_spec(n, t, committee_size=c)
        messages = spec.run_uniform(0).message_complexity()
        # Each process reports to every committee member but itself:
        # c(c-1) within the committee plus (n-c)c from outside = c(n-1).
        reports = c * (n - 1)
        verdicts = c * (n - 1)
        assert messages == reports + verdicts

    def test_committee_subquadratic_scaling(self):
        """With the √t default committee, the exponent stays below 2."""
        from repro.analysis.fitting import fit_power_law

        ts = [16, 36, 64, 100]
        counts = []
        for t in ts:
            spec = committee_cheater_spec(t + 8, t)
            counts.append(spec.run_uniform(0).message_complexity())
        fit = fit_power_law(ts, counts)
        assert fit.exponent < 1.8

    def test_ring_token_linear(self):
        for t in (16, 48):
            n = t + 8
            spec = ring_token_spec(n, t)
            messages = spec.run_uniform(0).message_complexity()
            assert messages == 2 * (n - 1)


class TestGenuineIncorrectness:
    """Hand-built failing executions, independent of the attack driver."""

    def test_leader_echo_splits_under_isolation_swap_setup(self):
        """Isolating one process makes it default to 1 while the rest
        decide 0 — the disagreement the driver later 'launders' into a
        correct-vs-correct violation via swap_omission."""
        spec = leader_echo_spec(8, 4)
        execution = spec.run_uniform(0, isolate_group({7}, 1))
        assert execution.decision(7) == 1
        assert execution.decision(1) == 0

    def test_ring_token_critical_round_flip(self):
        """The ring cheater's correct-group decision flips with the
        isolation round — the Lemma-4 structure in the wild."""
        n, t = 12, 8
        spec = ring_token_spec(n, t)
        group_b = frozenset({n - 4, n - 3})
        early = spec.run_uniform(0, isolate_group(group_b, 1))
        late = spec.run_uniform(0, isolate_group(group_b, n))
        assert early.decision(0) == 1  # poisoned token: default wins
        assert late.decision(0) == 0  # isolation came too late

    def test_committee_ignores_minority_isolation(self):
        spec = committee_cheater_spec(10, 8, committee_size=2)
        execution = spec.run_uniform(0, isolate_group({8, 9}, 1))
        # The committee never notices: outsiders decide 0, the isolated
        # pair misses the verdicts and defaults to 1.
        assert execution.decision(0) == 0
        assert execution.decision(8) == 1


class TestGuards:
    def test_committee_size_bounds(self):
        with pytest.raises(ValueError, match="committee size"):
            committee_cheater_spec(5, 2, committee_size=6).factory(0, 0)
        with pytest.raises(ValueError, match="committee size"):
            committee_cheater_spec(5, 2, committee_size=0).factory(0, 0)
