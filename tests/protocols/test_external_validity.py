"""Tests for external-validity agreement (§4.3, Corollary 1)."""

from repro.protocols.byzantine_strategies import garbage, mute
from repro.protocols.external_validity import (
    ClientPool,
    external_validity_spec,
)
from repro.sim.adversary import ByzantineAdversary, CrashAdversary


def make_setup(n=5, t=2):
    pool = ClientPool(clients=n)
    spec = external_validity_spec(
        n,
        t,
        validator=pool.validator(),
        fallback=pool.issue(0, "fallback"),
    )
    return pool, spec


def decisions(execution):
    return set(execution.correct_decisions().values())


class TestClientPool:
    def test_issue_validates(self):
        pool, _ = make_setup()
        valid = pool.validator()
        assert valid(pool.issue(1, "pay alice 5"))

    def test_forge_fails_validation(self):
        pool, _ = make_setup()
        valid = pool.validator()
        assert not valid(pool.forge(1, "pay mallory 500"))

    def test_non_transactions_invalid(self):
        pool, _ = make_setup()
        valid = pool.validator()
        assert not valid("just a string")
        assert not valid(None)

    def test_tamper_detected(self):
        from dataclasses import replace

        pool, _ = make_setup()
        valid = pool.validator()
        transaction = pool.issue(2, "original")
        tampered = replace(transaction, body="evil")
        assert not valid(tampered)


class TestAgreement:
    def test_fault_free_decides_leader_zero_tx(self):
        pool, spec = make_setup()
        txs = [pool.issue(client, f"tx-{client}") for client in range(5)]
        execution = spec.run(txs)
        assert decisions(execution) == {txs[0]}

    def test_decision_always_valid(self):
        pool, spec = make_setup()
        valid = pool.validator()
        txs = [pool.issue(client, f"tx-{client}") for client in range(5)]
        adversary = ByzantineAdversary({0}, {0: garbage()})
        execution = spec.run(txs, adversary)
        agreed = decisions(execution)
        assert len(agreed) == 1
        assert valid(next(iter(agreed)))

    def test_invalid_leader_proposals_skipped(self):
        """Faulty leaders broadcasting forged transactions are skipped in
        favour of the first valid broadcast (External Validity)."""
        pool, spec = make_setup()
        valid = pool.validator()
        txs = [pool.issue(client, f"tx-{client}") for client in range(5)]
        txs[0] = pool.forge(0, "bad")  # leader 0 proposes a forgery
        execution = spec.run(txs)
        agreed = decisions(execution)
        assert agreed == {txs[1]}
        assert valid(next(iter(agreed)))

    def test_crashing_leaders(self):
        pool, spec = make_setup()
        txs = [pool.issue(client, f"tx-{client}") for client in range(5)]
        execution = spec.run(txs, CrashAdversary({0: 1, 1: 1}))
        # Leaders 0 and 1 silent; leader 2 (the last designated) saves it.
        assert decisions(execution) == {txs[2]}

    def test_all_designated_leaders_byzantine(self):
        pool, spec = make_setup()
        txs = [pool.issue(client, f"tx-{client}") for client in range(5)]
        adversary = ByzantineAdversary(
            {0, 1}, {0: mute(), 1: garbage()}
        )
        execution = spec.run(txs, adversary)
        agreed = decisions(execution)
        # Leader 2 is the only correct designated sender left.
        assert agreed == {txs[2]}


class TestFallbackBranch:
    def test_combine_falls_back_when_nothing_valid(self):
        """Unreachable in well-formed runs (some designated leader is
        correct and proposes a valid transaction), but the combinator
        must stay total on adversarial vectors."""
        pool, spec = make_setup()
        machine = spec.factory(0, pool.issue(0, "tx"))
        fallback = machine.fallback
        result = machine.combine(("junk", None, 42))
        assert result == fallback

    def test_validators_cannot_decide_unseen_transactions(self):
        """The §4.3 point: deciding tx requires knowing tx.  In the
        simulation this is structural — a decision is always one of the
        broadcast outputs, and broadcast outputs of correct runs are the
        leaders' actual proposals."""
        pool, spec = make_setup()
        txs = [pool.issue(client, f"tx-{client}") for client in range(5)]
        execution = spec.run(txs)
        decided = next(iter(decisions(execution)))
        assert decided in txs  # never an out-of-thin-air transaction


class TestCorollaryOneHypothesis:
    def test_two_fully_correct_executions_decide_differently(self):
        """The hypothesis of Corollary 1 holds for this algorithm."""
        pool, spec = make_setup()
        txs_a = [pool.issue(client, "workload-A") for client in range(5)]
        txs_b = [pool.issue(client, "workload-B") for client in range(5)]
        decision_a = decisions(spec.run(txs_a))
        decision_b = decisions(spec.run(txs_b))
        assert decision_a != decision_b
