"""Tests for interactive consistency (authenticated and unauthenticated)."""

from repro.protocols.byzantine_strategies import garbage, mute, two_faced
from repro.protocols.dolev_strong import SENDER_FAULTY
from repro.protocols.interactive_consistency import (
    authenticated_ic_spec,
    ic_spec,
    unauthenticated_ic_spec,
)
from repro.sim.adversary import ByzantineAdversary, CrashAdversary


def decisions(execution):
    return set(execution.correct_decisions().values())


class TestAuthenticatedIC:
    def test_fault_free_vector(self):
        spec = authenticated_ic_spec(4, 1)
        execution = spec.run(["a", "b", "c", "d"])
        assert decisions(execution) == {("a", "b", "c", "d")}

    def test_crashed_slot_marked_faulty(self):
        spec = authenticated_ic_spec(4, 1)
        execution = spec.run(
            ["a", "b", "c", "d"], CrashAdversary({2: 1})
        )
        agreed = decisions(execution)
        assert len(agreed) == 1
        vector = next(iter(agreed))
        assert vector[0] == "a"
        assert vector[1] == "b"
        assert vector[2] == SENDER_FAULTY
        assert vector[3] == "d"

    def test_ic_validity_under_byzantine(self):
        spec = authenticated_ic_spec(5, 2)
        adversary = ByzantineAdversary(
            {1, 4}, {1: garbage(), 4: mute()}
        )
        execution = spec.run(["a", "b", "c", "d", "e"], adversary)
        agreed = decisions(execution)
        assert len(agreed) == 1
        vector = next(iter(agreed))
        for pid in (0, 2, 3):
            assert vector[pid] == execution.proposals()[pid]

    def test_dishonest_majority(self):
        """Authenticated IC holds for any t < n (Theorem 4, auth branch)."""
        spec = authenticated_ic_spec(5, 3)
        adversary = ByzantineAdversary(
            {1, 2, 3}, {pid: mute() for pid in (1, 2, 3)}
        )
        execution = spec.run(["a", "b", "c", "d", "e"], adversary)
        agreed = decisions(execution)
        assert len(agreed) == 1
        vector = next(iter(agreed))
        assert vector[0] == "a"
        assert vector[4] == "e"

    def test_horizon_t_plus_one(self):
        assert authenticated_ic_spec(5, 2).rounds == 3


class TestUnauthenticatedIC:
    def test_fault_free_vector(self):
        spec = unauthenticated_ic_spec(4, 1)
        execution = spec.run([1, 0, 1, 0])
        assert decisions(execution) == {(1, 0, 1, 0)}

    def test_two_faced_does_not_split(self):
        spec = unauthenticated_ic_spec(7, 2)
        adversary = ByzantineAdversary(
            {5, 6}, {5: two_faced(0, 1), 6: two_faced(1, 0)}
        )
        execution = spec.run([0, 1, 0, 1, 0, 1, 0], adversary)
        assert len(decisions(execution)) == 1


class TestSelector:
    def test_selects_by_setting(self):
        assert ic_spec(4, 1, authenticated=True).authenticated
        assert not ic_spec(4, 1, authenticated=False).authenticated

    def test_unauthenticated_requires_n_over_3t(self):
        import pytest

        spec = ic_spec(6, 2, authenticated=False)
        with pytest.raises(ValueError, match="n > 3t"):
            spec.factory(0, 0)
