"""Tests for approximate agreement (§7's beyond-agreement direction)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.protocols.approximate import (
    approximate_agreement_spec,
    rounds_for_precision,
)
from repro.protocols.byzantine_strategies import garbage, mute
from repro.sim.adversary import ByzantineAdversary
from repro.sim.process import Process
from repro.types import Round


def correct_decisions(execution):
    return [
        execution.decision(pid) for pid in sorted(execution.correct)
    ]


class TestRoundsForPrecision:
    def test_halving_analysis(self):
        assert rounds_for_precision(1.0, 0.25) == 2
        assert rounds_for_precision(8.0, 1.0) == 3
        assert rounds_for_precision(0.1, 1.0) == 1


class TestFaultFree:
    def test_unanimous_inputs_fixed_point(self):
        spec = approximate_agreement_spec(4, 1, rounds=3)
        execution = spec.run([5.0, 5.0, 5.0, 5.0])
        assert correct_decisions(execution) == [5.0] * 4

    def test_convergence_within_epsilon(self):
        epsilon = 1e-3
        spec = approximate_agreement_spec(
            7, 2, spread=1.0, epsilon=epsilon
        )
        execution = spec.run([0.0, 1.0, 0.5, 0.25, 0.75, 0.1, 0.9])
        decisions = correct_decisions(execution)
        assert max(decisions) - min(decisions) <= epsilon

    def test_range_validity(self):
        spec = approximate_agreement_spec(4, 1, rounds=4)
        execution = spec.run([0.0, 0.2, 0.8, 1.0])
        for decision in correct_decisions(execution):
            assert 0.0 <= decision <= 1.0

    def test_rejects_non_numeric_proposal(self):
        spec = approximate_agreement_spec(4, 1, rounds=2)
        with pytest.raises(ValueError, match="numbers"):
            spec.factory(0, "not-a-number")

    def test_resilience_guard(self):
        with pytest.raises(ValueError, match="n > 3t"):
            approximate_agreement_spec(6, 2, rounds=2).factory(0, 0.0)


class _Extremist(Process):
    """Byzantine strategy: scream huge values in both directions."""

    def outgoing(self, round_: Round):
        return {
            other: ("aa", 1e9 if other % 2 else -1e9)
            for other in range(self.n)
            if other != self.pid
        }

    def deliver(self, round_, received):
        return None


class TestByzantine:
    def _extremist(self):
        return lambda pid, factory, proposal: _Extremist(
            pid, 7, 2, proposal
        )

    def test_extreme_values_trimmed(self):
        """Byzantine ±1e9 values must never drag decisions outside the
        correct range — the trimming at work."""
        spec = approximate_agreement_spec(7, 2, rounds=6)
        adversary = ByzantineAdversary(
            {5, 6},
            {5: self._extremist(), 6: self._extremist()},
        )
        execution = spec.run(
            [0.0, 0.5, 1.0, 0.25, 0.75, 0.0, 0.0], adversary
        )
        decisions = correct_decisions(execution)
        for decision in decisions:
            assert 0.0 <= decision <= 1.0

    def test_epsilon_agreement_under_attack(self):
        epsilon = 2 ** -8
        spec = approximate_agreement_spec(7, 2, rounds=10)
        adversary = ByzantineAdversary(
            {5, 6}, {5: self._extremist(), 6: mute()}
        )
        execution = spec.run(
            [0.0, 0.5, 1.0, 0.25, 0.75, 0.0, 0.0], adversary
        )
        decisions = correct_decisions(execution)
        assert max(decisions) - min(decisions) <= epsilon

    def test_garbage_ignored(self):
        spec = approximate_agreement_spec(4, 1, rounds=5)
        adversary = ByzantineAdversary({3}, {3: garbage()})
        execution = spec.run([0.0, 1.0, 0.5, 0.5], adversary)
        decisions = correct_decisions(execution)
        assert max(decisions) - min(decisions) <= 0.5
        for decision in decisions:
            assert 0.0 <= decision <= 1.0

    @settings(max_examples=20, deadline=None)
    @given(
        proposals=st.lists(
            st.floats(
                min_value=0.0,
                max_value=1.0,
                allow_nan=False,
                allow_infinity=False,
            ),
            min_size=7,
            max_size=7,
        ),
        corrupt=st.integers(0, 6),
    )
    def test_validity_and_convergence_property(
        self, proposals, corrupt
    ):
        """Property: decisions stay in the correct range and halve the
        spread per round, under one extremist Byzantine process."""
        spec = approximate_agreement_spec(7, 2, rounds=8)
        adversary = ByzantineAdversary(
            {corrupt}, {corrupt: self._extremist()}
        )
        execution = spec.run(list(proposals), adversary)
        correct = sorted(execution.correct)
        low = min(proposals[pid] for pid in correct)
        high = max(proposals[pid] for pid in correct)
        decisions = correct_decisions(execution)
        for decision in decisions:
            assert low - 1e-9 <= decision <= high + 1e-9
        assert max(decisions) - min(decisions) <= max(
            (high - low) / 2**8, 1e-12
        ) + 1e-12


class TestOutsideTheFormalism:
    def test_decisions_may_legitimately_differ(self):
        """With few rounds, correct decisions differ (within the bound):
        approximate agreement has no Agreement property, so the §4.1
        formalism — and with it the Ω(t²) theorem — does not apply.
        That is the paper's §7 open direction, reproduced as a fact."""
        spec = approximate_agreement_spec(7, 2, rounds=1)
        # A mute Byzantine process makes views differ (each correct
        # process substitutes its own value for the silent slot), so a
        # single round leaves genuinely different decisions.
        adversary = ByzantineAdversary({6}, {6: mute()})
        execution = spec.run(
            [0.0, 0.1, 0.2, 0.3, 0.4, 1.0, 0.5], adversary
        )
        decisions = set(correct_decisions(execution))
        assert len(decisions) > 1
