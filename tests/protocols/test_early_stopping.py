"""Tests for early-stopping crash consensus (§6, [50])."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.latency import LatencyReport
from repro.protocols.early_stopping import early_stopping_spec
from repro.sim.adversary import CrashAdversary


def decisions(execution):
    return set(execution.correct_decisions().values())


class TestCorrectness:
    def test_fault_free_decides_min(self):
        spec = early_stopping_spec(5, 3)
        execution = spec.run([4, 2, 7, 2, 9])
        assert decisions(execution) == {2}

    def test_agreement_under_crashes(self):
        spec = early_stopping_spec(5, 3)
        execution = spec.run(
            [4, 2, 7, 2, 9], CrashAdversary({1: 1, 3: 2})
        )
        agreed = decisions(execution)
        assert len(agreed) == 1
        assert None not in agreed

    @settings(max_examples=40, deadline=None)
    @given(
        proposals=st.lists(
            st.integers(0, 4), min_size=6, max_size=6
        ),
        crashes=st.dictionaries(
            st.integers(0, 5), st.integers(1, 6), max_size=3
        ),
    )
    def test_agreement_property_under_any_crash_schedule(
        self, proposals, crashes
    ):
        spec = early_stopping_spec(6, 3)
        execution = spec.run(proposals, CrashAdversary(crashes))
        agreed = decisions(execution)
        assert len(agreed) == 1
        assert None not in agreed
        # Validity: the decision is somebody's proposal.
        assert agreed.pop() in set(proposals)


class TestEarlyStoppingLatency:
    def test_fault_free_decides_in_two_rounds(self):
        """f = 0: W stabilizes immediately; decide at round 2 = f + 2."""
        spec = early_stopping_spec(8, 6)
        report = LatencyReport.of(spec.run_uniform(1))
        assert report.latest == 2

    def test_latency_tracks_actual_faults(self):
        """f crashes delay decision to about f + 2 rounds, far below the
        worst-case t + 2 when f << t."""
        n, t = 8, 6
        spec = early_stopping_spec(n, t)
        # f = 2 staggered crashes (each visible in a distinct round).
        execution = spec.run_uniform(
            1, CrashAdversary({6: 1, 7: 2})
        )
        report = LatencyReport.of(execution)
        assert report.all_decided
        assert report.latest <= 2 + 2
        assert report.latest < t + 2

    def test_worst_case_still_bounded(self):
        n, t = 6, 4
        spec = early_stopping_spec(n, t)
        crashes = {pid: pid for pid in range(1, 5)}  # one per round
        execution = spec.run_uniform(1, CrashAdversary(crashes))
        report = LatencyReport.of(execution)
        assert report.all_decided
        assert report.latest <= t + 2

    def test_plain_floodset_never_stops_early(self):
        """The baseline FloodSet always takes t + 1 rounds; the early
        stopper beats it whenever f < t."""
        from repro.protocols.floodset import floodset_spec

        n, t = 8, 6
        flood = LatencyReport.of(floodset_spec(n, t).run_uniform(1))
        early = LatencyReport.of(
            early_stopping_spec(n, t).run_uniform(1)
        )
        assert flood.latest == t + 1
        assert early.latest == 2
