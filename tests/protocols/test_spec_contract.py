"""The ProtocolSpec contract, enforced uniformly across every protocol.

Whatever the algorithm, a spec must satisfy the library-wide contract:

1. a fault-free run produces a model-valid trace (all A.1.6 conditions);
2. every behavior replays deterministically (A.1.5 condition 7);
3. every process decides within the declared horizon;
4. two identical runs produce identical executions (determinism);
5. message complexity is invariant across identical runs.

One parametrized test-class covers all protocols, so any new protocol
gets the whole battery by adding a single registry entry.
"""

import pytest

from repro.protocols.approximate import approximate_agreement_spec
from repro.protocols.dolev_strong import dolev_strong_spec
from repro.protocols.early_stopping import early_stopping_spec
from repro.protocols.eig import eig_consensus_spec, eig_vector_spec
from repro.protocols.external_validity import (
    ClientPool,
    external_validity_spec,
)
from repro.protocols.floodset import floodset_spec
from repro.protocols.gradecast import gradecast_spec
from repro.protocols.interactive_consistency import authenticated_ic_spec
from repro.protocols.kset import kset_spec
from repro.protocols.phase_king import phase_king_spec
from repro.protocols.strong_consensus import (
    authenticated_strong_consensus_spec,
)
from repro.protocols.subquadratic import (
    committee_cheater_spec,
    leader_echo_spec,
    ring_token_spec,
    seeded_committee_cheater_spec,
    silent_cheater_spec,
)
from repro.protocols.vector_consensus import vector_consensus_spec
from repro.protocols.weak_consensus import (
    broadcast_weak_consensus_spec,
    naive_flooding_spec,
)
from repro.sim.execution import check_execution, check_transitions


def _external_validity_case():
    pool = ClientPool(clients=5)
    spec = external_validity_spec(
        5, 2, validator=pool.validator(), fallback=pool.issue(0, "fb")
    )
    proposals = [pool.issue(client, f"tx{client}") for client in range(5)]
    return spec, proposals


CASES = {
    "dolev-strong": lambda: (dolev_strong_spec(5, 2), ["v", 0, 0, 0, 0]),
    "eig-consensus": lambda: (eig_consensus_spec(7, 2), [0, 1] * 3 + [0]),
    "eig-vector": lambda: (eig_vector_spec(4, 1), [0, 1, 1, 0]),
    "phase-king": lambda: (phase_king_spec(7, 2), [1, 0] * 3 + [1]),
    "auth-ic": lambda: (authenticated_ic_spec(4, 1), list("abcd")),
    "strong-ic": lambda: (
        authenticated_strong_consensus_spec(5, 2),
        [1, 1, 0, 1, 0],
    ),
    "weak-broadcast": lambda: (
        broadcast_weak_consensus_spec(5, 2),
        [0] * 5,
    ),
    "naive-flooding": lambda: (naive_flooding_spec(5, 2), [0] * 5),
    "floodset": lambda: (floodset_spec(5, 2), [3, 1, 4, 1, 5]),
    "early-stopping": lambda: (
        early_stopping_spec(5, 2),
        [3, 1, 4, 1, 5],
    ),
    "gradecast": lambda: (gradecast_spec(7, 2), ["g"] + [None] * 6),
    "vector-consensus": lambda: (
        vector_consensus_spec(4, 1),
        [0, 1, 0, 1],
    ),
    "approximate": lambda: (
        approximate_agreement_spec(4, 1, rounds=4),
        [0.0, 1.0, 0.25, 0.75],
    ),
    "kset": lambda: (kset_spec(6, 3, k=2), [5, 2, 8, 1, 9, 4]),
    "external-validity": _external_validity_case,
    "silent-cheater": lambda: (silent_cheater_spec(8, 4), [0] * 8),
    "leader-echo": lambda: (leader_echo_spec(8, 4), [0] * 8),
    "committee-cheater": lambda: (
        committee_cheater_spec(8, 4),
        [0] * 8,
    ),
    "ring-token": lambda: (ring_token_spec(8, 4), [0] * 8),
    "seeded-committee": lambda: (
        seeded_committee_cheater_spec(8, 4, seed=1),
        [0] * 8,
    ),
}


@pytest.mark.parametrize("case_name", sorted(CASES))
class TestProtocolContract:
    def test_trace_valid_and_replayable(self, case_name):
        spec, proposals = CASES[case_name]()
        execution = spec.run(list(proposals), check=False)
        check_execution(execution)
        check_transitions(execution, spec.factory)

    def test_decides_within_declared_horizon(self, case_name):
        spec, proposals = CASES[case_name]()
        execution = spec.run(list(proposals))
        for pid in range(spec.n):
            assert execution.decision(pid) is not None, (
                f"{spec.name}: p{pid} undecided within "
                f"{spec.rounds} rounds"
            )

    def test_deterministic_across_runs(self, case_name):
        spec, proposals = CASES[case_name]()
        first = spec.run(list(proposals))
        second = spec.run(list(proposals))
        assert first == second
        assert (
            first.message_complexity() == second.message_complexity()
        )
