"""Tests for EIG agreement (n > 3t): Agreement + Strong Validity."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.protocols.byzantine_strategies import garbage, mute, two_faced
from repro.protocols.eig import (
    eig_consensus_spec,
    eig_vector_spec,
)
from repro.sim.adversary import ByzantineAdversary, CrashAdversary


def decisions(execution):
    return set(execution.correct_decisions().values())


class TestResilienceGuard:
    def test_rejects_n_at_most_3t(self):
        with pytest.raises(ValueError, match="n > 3t"):
            eig_consensus_spec(6, 2).factory(0, 0)

    def test_accepts_boundary(self):
        eig_consensus_spec(7, 2).factory(0, 0)


class TestFaultFree:
    def test_unanimous_proposals_decided(self):
        spec = eig_consensus_spec(4, 1)
        assert decisions(spec.run_uniform(1)) == {1}

    def test_majority_value_wins(self):
        spec = eig_consensus_spec(4, 1)
        assert decisions(spec.run([0, 1, 1, 1])) == {1}

    def test_common_vector(self):
        spec = eig_vector_spec(4, 1)
        execution = spec.run([3, 1, 4, 1])
        assert decisions(execution) == {(3, 1, 4, 1)}


class TestDeeperTree:
    def test_t_three_tree_resolution(self):
        """t = 3 exercises three levels of recursive majority."""
        spec = eig_consensus_spec(10, 3)
        execution = spec.run([0, 1] * 5)
        assert decisions(execution) == {0} or decisions(
            execution
        ) == {1}
        assert len(decisions(execution)) == 1

    def test_t_three_under_attack(self):
        spec = eig_consensus_spec(10, 3)
        adversary = ByzantineAdversary(
            {7, 8, 9},
            {7: two_faced(0, 1), 8: mute(), 9: garbage()},
        )
        execution = spec.run([1] * 7 + [0, 0, 0], adversary)
        assert decisions(execution) == {1}


class TestByzantine:
    def test_agreement_under_two_faced(self):
        spec = eig_consensus_spec(7, 2)
        adversary = ByzantineAdversary(
            {5, 6},
            {5: two_faced(0, 1), 6: two_faced(1, 0)},
        )
        execution = spec.run([0, 0, 0, 1, 1, 0, 1], adversary)
        assert len(decisions(execution)) == 1

    def test_strong_validity_under_mute(self):
        spec = eig_consensus_spec(7, 2)
        adversary = ByzantineAdversary({5, 6}, {5: mute(), 6: mute()})
        execution = spec.run([1, 1, 1, 1, 1, 0, 0], adversary)
        assert decisions(execution) == {1}

    def test_strong_validity_under_garbage(self):
        spec = eig_consensus_spec(4, 1)
        adversary = ByzantineAdversary({3}, {3: garbage()})
        execution = spec.run([1, 1, 1, 0], adversary)
        assert decisions(execution) == {1}

    def test_vector_mode_ic_validity(self):
        """IC-Validity: correct slots hold the correct proposals."""
        spec = eig_vector_spec(7, 2)
        adversary = ByzantineAdversary(
            {5, 6}, {5: two_faced(0, 1), 6: mute()}
        )
        execution = spec.run([0, 1, 0, 1, 0, 1, 0], adversary)
        agreed = decisions(execution)
        assert len(agreed) == 1
        vector = next(iter(agreed))
        for pid in range(5):  # the correct processes
            assert vector[pid] == execution.proposals()[pid]

    def test_crash_faults(self):
        spec = eig_consensus_spec(4, 1)
        execution = spec.run([1, 1, 1, 1], CrashAdversary({2: 2}))
        assert decisions(execution) == {1}

    @settings(max_examples=20, deadline=None)
    @given(
        proposals=st.lists(
            st.integers(0, 1), min_size=4, max_size=4
        ),
        strategy_pick=st.sampled_from(["mute", "garbage", "two-faced"]),
        corrupt=st.integers(0, 3),
    )
    def test_agreement_property(self, proposals, strategy_pick, corrupt):
        """Property: one Byzantine process never splits n=4, t=1 EIG."""
        strategies = {
            "mute": mute(),
            "garbage": garbage(),
            "two-faced": two_faced(0, 1),
        }
        spec = eig_consensus_spec(4, 1)
        adversary = ByzantineAdversary(
            {corrupt}, {corrupt: strategies[strategy_pick]}
        )
        execution = spec.run(proposals, adversary)
        agreed = decisions(execution)
        assert len(agreed) == 1
        assert None not in agreed
        # Strong validity among the correct.
        correct_proposals = {
            proposals[pid] for pid in execution.correct
        }
        if len(correct_proposals) == 1:
            assert agreed == correct_proposals
