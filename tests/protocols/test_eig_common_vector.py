"""The EIG common-vector lemma, tested directly on the internals.

The n > 3t correctness of EIG rests on: after t+1 rounds, all correct
processes resolve *identical* level-1 vectors.  The decision tests only
observe the consequence; here the resolved vectors themselves are
compared, under each attack strategy.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.protocols.byzantine_strategies import garbage, mute, two_faced
from repro.protocols.eig import EIGProcess, eig_consensus_spec
from repro.sim.adversary import ByzantineAdversary
from repro.sim.engine import RoundEngine, TraceRecorder
from repro.sim.simulator import SimulationConfig, build_machines
from repro.sim.adversary import NoFaults


def run_and_collect_vectors(n, t, proposals, adversary):
    """Drive machines manually so the resolved vectors stay accessible."""
    spec = eig_consensus_spec(n, t)
    config = SimulationConfig(n=n, t=t, rounds=spec.rounds)
    machines = build_machines(
        config, proposals, spec.factory, adversary or NoFaults()
    )
    recorder = TraceRecorder()
    engine = RoundEngine(
        config, machines, adversary or NoFaults(), [recorder]
    )
    engine.run()
    execution = recorder.execution()
    vectors = {
        pid: tuple(machines[pid].resolved_vector())
        for pid in execution.correct
        if isinstance(machines[pid], EIGProcess)
    }
    return vectors, execution


class TestCommonVectorLemma:
    @pytest.mark.parametrize(
        "strategy", [mute(), garbage(), two_faced(0, 1)]
    )
    def test_vectors_identical_across_correct(self, strategy):
        adversary = ByzantineAdversary({3}, {3: strategy})
        vectors, execution = run_and_collect_vectors(
            4, 1, [0, 1, 1, 0], adversary
        )
        assert len(set(vectors.values())) == 1

    def test_correct_slots_hold_proposals(self):
        adversary = ByzantineAdversary({2}, {2: mute()})
        vectors, execution = run_and_collect_vectors(
            4, 1, [1, 0, 1, 0], adversary
        )
        vector = next(iter(vectors.values()))
        for pid in execution.correct:
            assert vector[pid] == [1, 0, 1, 0][pid]

    @settings(max_examples=15, deadline=None)
    @given(
        proposals=st.lists(st.integers(0, 1), min_size=7, max_size=7),
        corrupted=st.sets(st.integers(0, 6), min_size=1, max_size=2),
        pick=st.sampled_from(["mute", "garbage", "two-faced"]),
    )
    def test_common_vector_property(self, proposals, corrupted, pick):
        strategies = {
            "mute": mute(),
            "garbage": garbage(),
            "two-faced": two_faced(0, 1),
        }
        adversary = ByzantineAdversary(
            corrupted, {pid: strategies[pick] for pid in corrupted}
        )
        vectors, _ = run_and_collect_vectors(
            7, 2, proposals, adversary
        )
        assert len(set(vectors.values())) == 1
