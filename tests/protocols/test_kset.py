"""Tests for crash-model k-set agreement (§7's other relaxation)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.protocols.kset import kset_rounds, kset_spec
from repro.sim.adversary import CrashAdversary


def decided_values(execution):
    return {
        execution.decision(pid) for pid in execution.correct
    }


class TestRounds:
    def test_round_bound(self):
        assert kset_rounds(6, 1) == 7  # consensus latency
        assert kset_rounds(6, 2) == 4
        assert kset_rounds(6, 3) == 3
        assert kset_rounds(6, 7) == 1

    def test_k_must_be_positive(self):
        with pytest.raises(ValueError, match="k must be"):
            kset_rounds(4, 0)
        with pytest.raises(ValueError, match="k must be"):
            kset_spec(5, 2, 0).factory(0, 0)


class TestFaultFree:
    def test_fault_free_converges_to_one_value(self):
        spec = kset_spec(6, 4, k=2)
        execution = spec.run([5, 3, 9, 1, 7, 2])
        assert decided_values(execution) == {1}

    def test_k1_is_consensus(self):
        spec = kset_spec(5, 2, k=1)
        execution = spec.run([4, 2, 7, 2, 9], CrashAdversary({1: 1}))
        assert len(decided_values(execution)) == 1


class TestKSetBound:
    def test_at_most_k_decisions_under_staggered_crashes(self):
        """The adversarial crash pattern that defeats one-round-per-
        crash flooding: each round, one crasher reaches only some
        processes.  Decisions may split, but never beyond k."""
        n, t, k = 8, 6, 2
        spec = kset_spec(n, t, k=k)
        # Stagger crashes through the ⌊t/k⌋+1 = 4 rounds.
        from repro.sim.adversary import (
            OmissionSchedule,
            ScheduledOmissionAdversary,
        )

        def drop(message):
            crashers = {0: 1, 1: 2, 2: 3, 3: 4}
            crash_round = crashers.get(message.sender)
            if crash_round is None:
                return False
            if message.round > crash_round:
                return True
            # In its crash round, reach only one neighbour.
            return (
                message.round == crash_round
                and message.receiver != message.sender + 4
            )

        adversary = ScheduledOmissionAdversary(
            {0, 1, 2, 3},
            OmissionSchedule(
                send_drops=drop, receive_drops=lambda m: False
            ),
        )
        execution = spec.run([0, 1, 2, 3, 9, 9, 9, 9], adversary)
        assert len(decided_values(execution)) <= k

    @settings(max_examples=40, deadline=None)
    @given(
        proposals=st.lists(
            st.integers(0, 9), min_size=6, max_size=6
        ),
        crashes=st.dictionaries(
            st.integers(0, 5), st.integers(1, 4), max_size=3
        ),
        k=st.integers(1, 3),
    )
    def test_k_bound_property_under_crashes(
        self, proposals, crashes, k
    ):
        """Property: across random crash schedules, at most k distinct
        values are decided and each is some process's proposal."""
        n, t = 6, 3
        spec = kset_spec(n, t, k=k)
        execution = spec.run(proposals, CrashAdversary(crashes))
        values = decided_values(execution)
        assert None not in values
        assert len(values) <= k
        assert values <= set(proposals)

    def test_latency_advantage_over_consensus(self):
        """The point of relaxing: k=3 at t=6 needs 3 rounds, consensus 7."""
        assert kset_spec(8, 6, k=3).rounds == 3
        assert kset_spec(8, 6, k=1).rounds == 7
