"""Tests for gradecast / crusader broadcast (§6, [13])."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.keys import KeyRegistry
from repro.crypto.signatures import SignatureScheme
from repro.protocols.byzantine_strategies import garbage, mute
from repro.protocols.gradecast import (
    NO_VALUE,
    crusader_decision,
    gradecast_spec,
)
from repro.sim.adversary import ByzantineAdversary, CrashAdversary
from repro.sim.process import Process
from repro.types import Round


def graded_outputs(execution):
    return {
        pid: execution.decision(pid) for pid in execution.correct
    }


def check_graded_agreement(outputs):
    """The two clauses of Graded Agreement."""
    grades = [grade for _, grade in outputs.values()]
    assert max(grades) - min(grades) <= 1
    valued = {
        value for value, grade in outputs.values() if grade >= 1
    }
    assert len(valued) <= 1


class TestGradedValidity:
    def test_correct_sender_all_grade_two(self):
        spec = gradecast_spec(7, 2)
        execution = spec.run(["v"] + [None] * 6)
        outputs = graded_outputs(execution)
        assert all(output == ("v", 2) for output in outputs.values())

    def test_resilience_guard(self):
        with pytest.raises(ValueError, match="n > 3t"):
            gradecast_spec(6, 2).factory(0, 0)


class TestGradedAgreement:
    def test_mute_sender_gives_grade_zero(self):
        spec = gradecast_spec(7, 2)
        adversary = ByzantineAdversary({0}, {0: mute()})
        execution = spec.run(["v"] + [None] * 6, adversary)
        outputs = graded_outputs(execution)
        assert all(
            output == (NO_VALUE, 0) for output in outputs.values()
        )

    def test_crashing_sender_mid_broadcast(self):
        """The sender reaches only some processes: grades may split
        between adjacent levels, but never by 2, and never on values."""
        from repro.sim.adversary import (
            OmissionSchedule,
            ScheduledOmissionAdversary,
        )

        spec = gradecast_spec(7, 2)
        adversary = ScheduledOmissionAdversary(
            {0},
            OmissionSchedule(
                send_drops=lambda m: m.round == 1 and m.receiver >= 4,
                receive_drops=lambda m: False,
            ),
        )
        execution = spec.run(["v"] + [None] * 6, adversary)
        check_graded_agreement(graded_outputs(execution))

    def test_garbage_helpers_do_not_split_grades(self):
        spec = gradecast_spec(7, 2)
        adversary = ByzantineAdversary(
            {3, 5}, {3: garbage(), 5: garbage()}
        )
        execution = spec.run(["v"] + [None] * 6, adversary)
        outputs = graded_outputs(execution)
        check_graded_agreement(outputs)
        # Honest majority still echoes/proposes v: grade 2 everywhere.
        assert all(output == ("v", 2) for output in outputs.values())


class _EquivocatingGradecastSender(Process):
    """Signs two values, shows each half of the system one of them."""

    def __init__(self, pid, n, t, proposal, scheme, instance="gc"):
        super().__init__(pid, n, t, proposal)
        signer = scheme.signer_for(pid)
        self._low = (
            "send",
            "low",
            signer.sign(("gradecast", instance, "low")),
        )
        self._high = (
            "send",
            "high",
            signer.sign(("gradecast", instance, "high")),
        )

    def outgoing(self, round_: Round):
        if round_ != 1:
            return {}
        boundary = self.n // 2
        return {
            receiver: self._low if receiver < boundary else self._high
            for receiver in range(self.n)
            if receiver != self.pid
        }

    def deliver(self, round_, received):
        return None


class TestEquivocation:
    def test_two_faced_sender_cannot_win_two_grades(self):
        """The n > 3t echo-quorum argument: the adversary can depress
        grades but never make two correct processes carry different
        values at grade >= 1."""
        n, t = 7, 2
        seed = b"repro-gc"
        spec = gradecast_spec(n, t, seed=seed)
        scheme = SignatureScheme(KeyRegistry(n, seed))
        adversary = ByzantineAdversary(
            {0},
            {
                0: lambda pid, factory, proposal: (
                    _EquivocatingGradecastSender(
                        pid, n, t, proposal, scheme
                    )
                )
            },
        )
        execution = spec.run(["x"] + [None] * 6, adversary)
        outputs = graded_outputs(execution)
        check_graded_agreement(outputs)


class TestCrusaderView:
    def test_grade_two_commits(self):
        assert crusader_decision(("v", 2)) == "v"

    def test_lower_grades_abstain(self):
        assert crusader_decision(("v", 1)) == NO_VALUE
        assert crusader_decision((NO_VALUE, 0)) == NO_VALUE
        assert crusader_decision("malformed") == NO_VALUE

    def test_crusader_never_splits_on_values(self):
        """Crusader Agreement: correct decisions are {v}, {⊥}, or
        {v, ⊥} — never two values."""
        spec = gradecast_spec(7, 2)
        execution = spec.run(
            ["v"] + [None] * 6, CrashAdversary({0: 1})
        )
        decisions = {
            crusader_decision(output)
            for output in graded_outputs(execution).values()
        }
        assert len(decisions - {NO_VALUE}) <= 1


class TestOutsideTheFormalism:
    def test_gradecast_is_not_a_val_agreement_problem(self):
        """Gradecast can legitimately split correct outputs (grade 1 vs
        2), which the paper's Agreement property forbids — so the §4.1
        formalism (and hence the Algorithm-1 reduction machinery) does
        not capture it.  The bound for crusader broadcast needs its own
        argument [13]."""
        from repro.sim.adversary import (
            OmissionSchedule,
            ScheduledOmissionAdversary,
        )

        spec = gradecast_spec(7, 2)
        # Drop the sender's round-1 message to exactly two receivers:
        # they end below grade 2 while the rest may reach it.
        adversary = ScheduledOmissionAdversary(
            {0},
            OmissionSchedule(
                send_drops=lambda m: m.round == 1
                and m.receiver in (5, 6),
                receive_drops=lambda m: False,
            ),
        )
        execution = spec.run(["v"] + [None] * 6, adversary)
        outputs = set(graded_outputs(execution).values())
        check_graded_agreement(graded_outputs(execution))
        # At least sometimes the outputs genuinely differ: that is the
        # allowed partial disagreement.
        assert len(outputs) >= 1  # structure holds; splits permitted


class TestGradeProperty:
    @settings(max_examples=20, deadline=None)
    @given(
        drop_mask=st.sets(st.integers(1, 6), max_size=4),
    )
    def test_graded_agreement_under_partial_sends(self, drop_mask):
        """Property: however the faulty sender's round-1 messages are
        dropped, Graded Agreement holds among correct processes."""
        from repro.sim.adversary import (
            OmissionSchedule,
            ScheduledOmissionAdversary,
        )

        spec = gradecast_spec(7, 2)
        adversary = ScheduledOmissionAdversary(
            {0},
            OmissionSchedule(
                send_drops=lambda m: m.round == 1
                and m.receiver in drop_mask,
                receive_drops=lambda m: False,
            ),
        )
        execution = spec.run(["v"] + [None] * 6, adversary)
        check_graded_agreement(graded_outputs(execution))
