"""Tests for FloodSet: crash-correct, omission-fragile."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.protocols.floodset import floodset_spec
from repro.sim.adversary import (
    CrashAdversary,
    OmissionSchedule,
    ScheduledOmissionAdversary,
)


def decisions(execution):
    return set(execution.correct_decisions().values())


class TestCrashModel:
    def test_fault_free_decides_min(self):
        spec = floodset_spec(4, 1)
        execution = spec.run([3, 1, 4, 1])
        assert decisions(execution) == {1}

    def test_single_crash(self):
        spec = floodset_spec(4, 1)
        execution = spec.run([3, 1, 4, 5], CrashAdversary({1: 1}))
        agreed = decisions(execution)
        assert len(agreed) == 1
        # p1 crashed before sending anything: 1 never circulates.
        assert agreed == {3}

    def test_validity_values_are_proposals(self):
        spec = floodset_spec(5, 2)
        proposals = [9, 7, 8, 7, 9]
        execution = spec.run(
            proposals, CrashAdversary({0: 2, 4: 1})
        )
        decided = decisions(execution)
        assert len(decided) == 1
        assert decided.pop() in set(proposals)

    @settings(max_examples=30, deadline=None)
    @given(
        proposals=st.lists(
            st.integers(0, 3), min_size=5, max_size=5
        ),
        crashes=st.dictionaries(
            st.integers(0, 4), st.integers(1, 4), max_size=2
        ),
    )
    def test_agreement_under_any_crash_schedule(
        self, proposals, crashes
    ):
        """Property: the t+1-round common-round argument really works
        for crashes — agreement holds for every crash schedule."""
        spec = floodset_spec(5, 2)
        execution = spec.run(proposals, CrashAdversary(crashes))
        agreed = decisions(execution)
        assert len(agreed) == 1
        assert None not in agreed


class TestOmissionFragility:
    def test_last_round_selective_omission_splits(self):
        """The §3 trap: one omission-faulty process reaching a single
        receiver in the final round splits the correct processes —
        FloodSet's crash argument does not survive the omission model."""
        n, t = 5, 2
        spec = floodset_spec(n, t)
        last = spec.rounds

        def drop(message):
            if message.sender != 0:
                return False
            if message.round < last:
                return True
            return message.receiver != 1

        adversary = ScheduledOmissionAdversary(
            {0},
            OmissionSchedule(
                send_drops=drop, receive_drops=lambda m: False
            ),
        )
        # p0 holds the unique minimum; only p1 ever learns it.
        execution = spec.run([0, 5, 5, 5, 5], adversary)
        assert execution.decision(1) == 0
        assert execution.decision(2) == 5
        assert {1, 2} <= execution.correct
