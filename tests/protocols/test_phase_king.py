"""Tests for the King algorithm (n > 3t strong consensus)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.protocols.byzantine_strategies import garbage, mute, two_faced
from repro.protocols.phase_king import PhaseKingProcess, phase_king_spec
from repro.sim.adversary import ByzantineAdversary, CrashAdversary


def decisions(execution):
    return set(execution.correct_decisions().values())


class TestStructure:
    def test_rejects_n_at_most_3t(self):
        with pytest.raises(ValueError, match="n > 3t"):
            phase_king_spec(9, 3).factory(0, 0)

    def test_phase_round_mapping(self):
        assert PhaseKingProcess.phase_and_step(1) == (1, 0)
        assert PhaseKingProcess.phase_and_step(3) == (1, 2)
        assert PhaseKingProcess.phase_and_step(4) == (2, 0)

    def test_horizon_is_three_rounds_per_phase(self):
        assert phase_king_spec(4, 1).rounds == 6
        assert phase_king_spec(7, 2).rounds == 9


class TestFaultFree:
    def test_unanimous_decided(self):
        spec = phase_king_spec(4, 1)
        assert decisions(spec.run_uniform(0)) == {0}
        assert decisions(spec.run_uniform(1)) == {1}

    def test_mixed_agreement(self):
        spec = phase_king_spec(7, 2)
        execution = spec.run([0, 1, 0, 1, 0, 1, 0])
        assert len(decisions(execution)) == 1

    def test_multivalued_domain(self):
        spec = phase_king_spec(4, 1)
        execution = spec.run_uniform("value-x")
        assert decisions(execution) == {"value-x"}

    def test_multivalued_strong_validity_under_byzantine(self):
        """The quorum arguments are domain-agnostic: strings behave like
        bits, even with a two-faced Byzantine process."""
        spec = phase_king_spec(7, 2)
        adversary = ByzantineAdversary(
            {5, 6}, {5: two_faced("red", "blue"), 6: mute()}
        )
        execution = spec.run(["red"] * 5 + ["blue", "blue"], adversary)
        assert decisions(execution) == {"red"}


class TestByzantine:
    def test_strong_validity_with_byzantine_king(self):
        """Phase 1's king (p0) is Byzantine; unanimity must still win."""
        spec = phase_king_spec(7, 2)
        adversary = ByzantineAdversary(
            {0, 1}, {0: two_faced(0, 1), 1: garbage()}
        )
        execution = spec.run([0, 0, 1, 1, 1, 1, 1], adversary)
        assert decisions(execution) == {1}

    def test_agreement_with_two_byzantine(self):
        spec = phase_king_spec(7, 2)
        adversary = ByzantineAdversary(
            {2, 5}, {2: two_faced(0, 1), 5: mute()}
        )
        execution = spec.run([0, 1, 0, 1, 0, 1, 0], adversary)
        assert len(decisions(execution)) == 1

    def test_crashing_kings(self):
        """Kings of the first two phases crash; phase 3's king saves it."""
        spec = phase_king_spec(7, 2)
        execution = spec.run(
            [0, 1, 0, 1, 0, 1, 1], CrashAdversary({0: 1, 1: 4})
        )
        agreed = decisions(execution)
        assert len(agreed) == 1
        assert None not in agreed

    @settings(max_examples=20, deadline=None)
    @given(
        proposals=st.lists(st.integers(0, 1), min_size=7, max_size=7),
        corrupted=st.sets(st.integers(0, 6), min_size=1, max_size=2),
        pick=st.sampled_from(["mute", "garbage", "two-faced"]),
    )
    def test_agreement_and_validity_property(
        self, proposals, corrupted, pick
    ):
        strategies = {
            "mute": mute(),
            "garbage": garbage(),
            "two-faced": two_faced(0, 1),
        }
        spec = phase_king_spec(7, 2)
        adversary = ByzantineAdversary(
            corrupted, {pid: strategies[pick] for pid in corrupted}
        )
        execution = spec.run(proposals, adversary)
        agreed = decisions(execution)
        assert len(agreed) == 1
        assert None not in agreed
        correct_proposals = {
            proposals[pid] for pid in execution.correct
        }
        if len(correct_proposals) == 1:
            assert agreed == correct_proposals
