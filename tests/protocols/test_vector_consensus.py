"""Tests for vector consensus ([38] in §6)."""

from repro.protocols.byzantine_strategies import garbage, mute
from repro.protocols.vector_consensus import vector_consensus_spec
from repro.sim.adversary import ByzantineAdversary, CrashAdversary
from repro.validity.input_config import InputConfig
from repro.validity.standard import ABSENT, vector_consensus_problem


def decisions(execution):
    return set(execution.correct_decisions().values())


class TestProtocol:
    def test_fault_free_full_vector(self):
        spec = vector_consensus_spec(4, 1)
        execution = spec.run([1, 0, 1, 0])
        assert decisions(execution) == {(1, 0, 1, 0)}

    def test_crashed_slot_absent(self):
        spec = vector_consensus_spec(4, 1)
        execution = spec.run([1, 0, 1, 0], CrashAdversary({2: 1}))
        agreed = decisions(execution)
        assert len(agreed) == 1
        vector = next(iter(agreed))
        assert vector[2] == ABSENT
        filled = sum(1 for slot in vector if slot != ABSENT)
        assert filled >= 4 - 1

    def test_validity_against_the_problem(self):
        """Decisions satisfy the formal vector-consensus validity."""
        problem = vector_consensus_problem(4, 1)
        spec = vector_consensus_spec(4, 1)
        adversary = ByzantineAdversary({3}, {3: mute()})
        execution = spec.run([0, 1, 1, 0], adversary)
        config = InputConfig.from_mapping(
            4, 1, {pid: execution.proposals()[pid]
                   for pid in execution.correct}
        )
        agreed = decisions(execution)
        assert len(agreed) == 1
        assert problem.check_decision(config, next(iter(agreed)))

    def test_agreement_under_garbage(self):
        spec = vector_consensus_spec(5, 2)
        adversary = ByzantineAdversary(
            {1, 4}, {1: garbage(), 4: garbage()}
        )
        execution = spec.run([0, 1, 0, 1, 0], adversary)
        agreed = decisions(execution)
        assert len(agreed) == 1
        vector = next(iter(agreed))
        for pid in (0, 2, 3):
            assert vector[pid] == execution.proposals()[pid]


class TestProblemFormalization:
    def test_cc_holds(self):
        from repro.solvability.cc import satisfies_cc

        assert satisfies_cc(vector_consensus_problem(3, 1))

    def test_non_trivial(self):
        assert not vector_consensus_problem(3, 1).is_trivial()

    def test_correct_slots_constrained(self):
        problem = vector_consensus_problem(3, 1)
        config = InputConfig.full(3, 1, [0, 1, 0])
        for vector in problem.admissible(config):
            assert vector[0] in (0, ABSENT)
            assert vector[1] in (1, ABSENT)
            assert vector[2] in (0, ABSENT)

    def test_minimum_fill_enforced(self):
        problem = vector_consensus_problem(3, 1)
        config = InputConfig.full(3, 1, [0, 0, 0])
        for vector in problem.admissible(config):
            filled = sum(1 for slot in vector if slot != ABSENT)
            assert filled >= 2

    def test_subject_to_the_lower_bound(self):
        """Theorem 3 via Algorithm 1: vector consensus anchors a weak
        consensus at zero extra messages."""
        from repro.reductions.weak_from_any import reduce_weak_consensus

        n, t = 4, 1
        spec = vector_consensus_spec(n, t)
        problem = vector_consensus_problem(n, t)
        weak = reduce_weak_consensus(spec, problem)
        assert set(
            weak.run_uniform(0).correct_decisions().values()
        ) == {0}
        assert set(
            weak.run_uniform(1).correct_decisions().values()
        ) == {1}
        assert (
            weak.run_uniform(0).message_complexity()
            == spec.run_uniform(
                problem.input_values[0]
            ).message_complexity()
        )
