"""Tests for weak consensus — and the flooding counterexample that shows
why the omission model makes it genuinely hard (§3's framing)."""

from repro.omission.isolation import isolate_group
from repro.protocols.byzantine_strategies import mute, two_faced
from repro.protocols.weak_consensus import (
    broadcast_weak_consensus_spec,
    naive_flooding_spec,
)
from repro.sim.adversary import (
    ByzantineAdversary,
    CrashAdversary,
    OmissionSchedule,
    ScheduledOmissionAdversary,
)
from repro.sim.metrics import dolev_reischuk_floor


def decisions(execution):
    return set(execution.correct_decisions().values())


class TestBroadcastWeakConsensus:
    def test_weak_validity_both_bits(self):
        spec = broadcast_weak_consensus_spec(5, 2)
        assert decisions(spec.run_uniform(0)) == {0}
        assert decisions(spec.run_uniform(1)) == {1}

    def test_mixed_proposals_agree(self):
        spec = broadcast_weak_consensus_spec(5, 2)
        execution = spec.run([1, 0, 0, 1, 0])
        # Weak validity does not bind; agreement must.
        assert len(decisions(execution)) == 1

    def test_byzantine_leader_defaults(self):
        spec = broadcast_weak_consensus_spec(5, 2)
        adversary = ByzantineAdversary({0}, {0: mute()})
        execution = spec.run_uniform(0, adversary)
        assert decisions(execution) == {1}  # the default

    def test_agreement_under_two_faced_leader(self):
        spec = broadcast_weak_consensus_spec(6, 2)
        adversary = ByzantineAdversary({0}, {0: two_faced(0, 1)})
        execution = spec.run_uniform(0, adversary)
        assert len(decisions(execution)) == 1

    def test_omission_resilience(self):
        """Byzantine resilience subsumes the omission model of Lemma 1."""
        spec = broadcast_weak_consensus_spec(8, 4)
        for k in (1, 2, 3):
            execution = spec.run_uniform(
                0, isolate_group({6, 7}, k)
            )
            correct = {
                execution.decision(pid) for pid in execution.correct
            }
            assert len(correct) == 1
            assert None not in correct

    def test_respects_lemma1_floor(self):
        spec = broadcast_weak_consensus_spec(12, 10)
        execution = spec.run_uniform(0)
        assert execution.message_complexity() >= dolev_reischuk_floor(
            10
        )

    def test_dishonest_majority_tolerated(self):
        spec = broadcast_weak_consensus_spec(5, 4)
        execution = spec.run_uniform(
            0, CrashAdversary({1: 1, 2: 1, 3: 1, 4: 2})
        )
        correct = {
            execution.decision(pid) for pid in execution.correct
        }
        assert len(correct) == 1


class TestNaiveFloodingCounterexample:
    """The unsound protocol and the execution that breaks it.

    This is the §3 intuition in miniature: detectable faults tempt an
    algorithm into a cheap "default on silence" rule, and selective
    *last-round* send-omissions then split the correct processes.
    """

    def test_correct_under_crash_faults(self):
        """FloodSet logic is fine for crash faults — that's the trap."""
        spec = naive_flooding_spec(5, 2)
        execution = spec.run_uniform(0, CrashAdversary({0: 2, 1: 3}))
        correct = {
            execution.decision(pid) for pid in execution.correct
        }
        assert len(correct) == 1

    def test_fault_free_weak_validity(self):
        spec = naive_flooding_spec(5, 2)
        assert decisions(spec.run_uniform(0)) == {0}
        assert decisions(spec.run_uniform(1)) == {1}

    def test_last_round_selective_omission_splits_it(self):
        """One omission-faulty process (p0) whose proposal reaches only
        q=1, and only in the last round: q completes the all-zero picture
        and decides 0; every other correct process decides 1."""
        n, t = 5, 2
        spec = naive_flooding_spec(n, t)
        last_round = spec.rounds

        def drop(message):
            if message.sender != 0:
                return False
            if message.round < last_round:
                return True
            return message.receiver != 1

        adversary = ScheduledOmissionAdversary(
            {0},
            OmissionSchedule(
                send_drops=drop, receive_drops=lambda m: False
            ),
        )
        execution = spec.run_uniform(0, adversary)
        assert execution.decision(1) == 0
        assert execution.decision(2) == 1
        assert {1, 2} <= execution.correct
        # Two correct processes disagree: Agreement is broken with a
        # single omission-faulty process.
        assert len(decisions(execution)) == 2
