"""Tests for the strong consensus wrappers."""

import pytest

from repro.protocols.byzantine_strategies import garbage, mute, two_faced
from repro.protocols.strong_consensus import (
    authenticated_strong_consensus_spec,
    unauthenticated_strong_consensus_spec,
)
from repro.sim.adversary import ByzantineAdversary


def decisions(execution):
    return set(execution.correct_decisions().values())


class TestAuthenticatedStrongConsensus:
    def test_requires_n_over_2t(self):
        with pytest.raises(ValueError, match="n > 2t"):
            authenticated_strong_consensus_spec(4, 2)

    def test_strong_validity_fault_free(self):
        spec = authenticated_strong_consensus_spec(5, 2)
        assert decisions(spec.run_uniform("v")) == {"v"}

    def test_strong_validity_with_byzantine_minority(self):
        """All correct propose 1; two Byzantine processes cannot stop it
        — the heart of Strong Validity at n > 2t."""
        spec = authenticated_strong_consensus_spec(5, 2)
        adversary = ByzantineAdversary(
            {3, 4}, {3: two_faced(0, 1), 4: garbage()}
        )
        execution = spec.run([1, 1, 1, 0, 0], adversary)
        assert decisions(execution) == {1}

    def test_agreement_on_split_proposals(self):
        spec = authenticated_strong_consensus_spec(5, 2)
        adversary = ByzantineAdversary({4}, {4: mute()})
        execution = spec.run([0, 1, 0, 1, 1], adversary)
        agreed = decisions(execution)
        assert len(agreed) == 1
        assert None not in agreed

    def test_t_equals_two_n_five_boundary(self):
        """n = 2t + 1 is exactly Theorem 5's edge of solvability."""
        spec = authenticated_strong_consensus_spec(5, 2)
        adversary = ByzantineAdversary(
            {0, 1}, {0: mute(), 1: mute()}
        )
        execution = spec.run(["w", "w", "w", "w", "w"], adversary)
        assert decisions(execution) == {"w"}


class TestUnauthenticatedStrongConsensus:
    def test_phase_king_variant(self):
        spec = unauthenticated_strong_consensus_spec(7, 2)
        assert "phase-king" in spec.name
        assert decisions(spec.run_uniform(1)) == {1}

    def test_eig_variant(self):
        spec = unauthenticated_strong_consensus_spec(
            7, 2, algorithm="eig"
        )
        assert "eig" in spec.name
        assert decisions(spec.run_uniform(0)) == {0}

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ValueError, match="unknown algorithm"):
            unauthenticated_strong_consensus_spec(
                7, 2, algorithm="raft"
            )

    def test_variants_agree_under_attack(self):
        adversary = ByzantineAdversary({6}, {6: two_faced(0, 1)})
        for algorithm in ("phase-king", "eig"):
            spec = unauthenticated_strong_consensus_spec(
                7, 2, algorithm=algorithm
            )
            execution = spec.run([1, 1, 1, 1, 1, 1, 0], adversary)
            assert decisions(execution) == {1}
