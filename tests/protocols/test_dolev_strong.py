"""Tests for Dolev–Strong broadcast: Sender Validity, Agreement,
Termination for any t < n, under the classic Byzantine attacks."""

import pytest

from repro.protocols.byzantine_strategies import (
    crash_at,
    equivocating_sender,
    garbage,
    mute,
)
from repro.protocols.dolev_strong import (
    SENDER_FAULTY,
    dolev_strong_spec,
    scheme_for_spec,
)
from repro.sim.adversary import ByzantineAdversary, CrashAdversary


def decisions(execution):
    return set(execution.correct_decisions().values())


class TestFaultFree:
    def test_sender_value_decided(self):
        spec = dolev_strong_spec(5, 2)
        execution = spec.run(["payload", 0, 0, 0, 0])
        assert decisions(execution) == {"payload"}

    def test_works_for_any_value_type(self):
        spec = dolev_strong_spec(4, 1)
        execution = spec.run([("tuple", 1), 0, 0, 0])
        assert decisions(execution) == {("tuple", 1)}

    def test_non_default_sender(self):
        spec = dolev_strong_spec(5, 2, sender=3)
        execution = spec.run([0, 0, 0, "from-three", 0])
        assert decisions(execution) == {"from-three"}

    def test_t_zero_single_round(self):
        spec = dolev_strong_spec(3, 0)
        assert spec.rounds == 1
        execution = spec.run(["v", 0, 0])
        assert decisions(execution) == {"v"}

    def test_decides_within_t_plus_one_rounds(self):
        spec = dolev_strong_spec(5, 3)
        execution = spec.run(["v", 0, 0, 0, 0])
        assert all(
            execution.behavior(pid).decision_round == spec.t + 1
            for pid in range(5)
        )


class TestCrashFaults:
    def test_crashed_sender_yields_common_default(self):
        spec = dolev_strong_spec(5, 2)
        execution = spec.run(
            ["v", 0, 0, 0, 0], CrashAdversary({0: 1})
        )
        assert decisions(execution) == {SENDER_FAULTY}

    def test_sender_crash_mid_broadcast(self):
        """The sender reaches some relays; Agreement must still hold."""
        spec = dolev_strong_spec(6, 2)
        from repro.sim.adversary import (
            OmissionSchedule,
            ScheduledOmissionAdversary,
        )

        adversary = ScheduledOmissionAdversary(
            {0},
            OmissionSchedule(
                send_drops=lambda m: m.receiver >= 3,
                receive_drops=lambda m: False,
            ),
        )
        execution = spec.run(["v", 0, 0, 0, 0, 0], adversary)
        assert len(decisions(execution)) == 1

    def test_crashed_relay_harmless(self):
        spec = dolev_strong_spec(5, 2)
        execution = spec.run(
            ["v", 0, 0, 0, 0], CrashAdversary({2: 2, 3: 1})
        )
        assert decisions(execution) == {"v"}


class TestByzantineAttacks:
    def test_equivocating_sender_never_splits(self):
        spec = dolev_strong_spec(6, 2)
        scheme = scheme_for_spec(6)
        adversary = ByzantineAdversary(
            {0},
            {0: equivocating_sender(scheme, "low", "high")},
        )
        execution = spec.run(["x", 0, 0, 0, 0, 0], adversary)
        agreed = decisions(execution)
        assert len(agreed) == 1
        # With a 2-value equivocation, honest processes converge on the
        # provably-faulty default (both chains circulate in round 2).
        assert agreed == {SENDER_FAULTY}

    def test_mute_sender(self):
        spec = dolev_strong_spec(5, 2)
        adversary = ByzantineAdversary({0}, {0: mute()})
        execution = spec.run(["v", 0, 0, 0, 0], adversary)
        assert decisions(execution) == {SENDER_FAULTY}

    def test_garbage_relays_ignored(self):
        spec = dolev_strong_spec(6, 2)
        adversary = ByzantineAdversary(
            {2, 3}, {2: garbage(), 3: garbage()}
        )
        execution = spec.run(["v", 0, 0, 0, 0, 0], adversary)
        assert decisions(execution) == {"v"}

    def test_late_crash_relay_with_byzantine_helper(self):
        spec = dolev_strong_spec(7, 3)
        scheme = scheme_for_spec(7)
        adversary = ByzantineAdversary(
            {0, 4},
            {
                0: equivocating_sender(scheme, 1, 2),
                4: crash_at(2),
            },
        )
        execution = spec.run([0] * 7, adversary)
        assert len(decisions(execution)) == 1

    def test_dishonest_majority_tolerated(self):
        """Authenticated broadcast survives t >= n/2 (unlike any
        unauthenticated algorithm — Theorem 4's other branch)."""
        spec = dolev_strong_spec(5, 3)
        adversary = ByzantineAdversary(
            {1, 2, 3}, {pid: mute() for pid in (1, 2, 3)}
        )
        execution = spec.run(["v", 0, 0, 0, 0], adversary)
        assert decisions(execution) == {"v"}


class TestMessageComplexity:
    def test_quadratic_in_fault_free_runs(self):
        spec = dolev_strong_spec(8, 3)
        execution = spec.run(["v"] + [0] * 7)
        # Round 1: n-1 sends; round 2: every relay broadcasts once.
        expected = (8 - 1) + (8 - 1) * (8 - 1)
        assert execution.message_complexity() == expected


class TestGuards:
    def test_signer_must_match_pid(self):
        scheme = scheme_for_spec(4)
        from repro.protocols.dolev_strong import DolevStrongProcess

        with pytest.raises(ValueError, match="signer"):
            DolevStrongProcess(
                1,
                4,
                1,
                0,
                sender=0,
                scheme=scheme,
                signer=scheme.signer_for(2),
            )
