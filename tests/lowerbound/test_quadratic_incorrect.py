"""The boundary of the driver's guarantee: quadratic-but-incorrect
protocols.

Theorem 2's constructive content is conditional: *sub-quadratic* ⇒
breakable by the isolation/merge pipeline.  Naive flooding is incorrect
(tests/protocols/test_weak_consensus.py builds its failing execution by
hand) yet spends Θ(n²·t) messages — so the pipeline's extraction budget
(``|M_{X→p}| < t/2``) rightly refuses, and the driver reports
"bound respected" rather than claiming a violation it cannot construct.
This is a feature: the driver never produces unverifiable claims.
"""

from repro.analysis.complexity import exhaustive_isolation_scan
from repro.lowerbound.driver import attack_weak_consensus
from repro.protocols.weak_consensus import naive_flooding_spec


class TestQuadraticIncorrectProtocol:
    def test_driver_does_not_fabricate_a_violation(self):
        spec = naive_flooding_spec(12, 8)
        outcome = attack_weak_consensus(spec)
        assert not outcome.found_violation
        # The refusal is the budget, not silence: extraction attempts
        # are logged as protected by the message-count premise.
        assert any(
            "premise" in line or "inconclusive" in line
            for line in outcome.log
        )

    def test_it_really_is_quadratic(self):
        spec = naive_flooding_spec(12, 8)
        point = exhaustive_isolation_scan(spec, [0] * 12)
        assert point.worst_messages >= point.floor
        # Θ(n²·(t+1)) flooding: all-to-all every round.
        assert point.worst_messages >= 12 * 11

    def test_exhaustive_scan_finds_late_isolation_peaks(self):
        """For the ring cheater, traffic depends on when isolation
        strikes; the exhaustive scan must dominate the sampled battery."""
        from repro.analysis.complexity import measure_point
        from repro.protocols.subquadratic import ring_token_spec

        spec = ring_token_spec(12, 8)
        sampled = measure_point(spec, [[0] * 12])
        exhaustive = exhaustive_isolation_scan(spec, [0] * 12)
        assert exhaustive.worst_messages >= sampled.worst_messages
