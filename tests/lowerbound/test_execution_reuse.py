"""Execution reuse in the attack driver (acceptance for the engine PR).

The refactored :class:`LowerBoundDriver` avoids re-simulating rounds it
can prove redundant — exact cache hits, quiescent-aliasing of isolation
runs, checkpoint resume of fault-free prefixes, and early stopping of
decision-only probes.  The acceptance bar: on the seed cheater
candidates the fast pipeline simulates at least **2x fewer** rounds in
aggregate than the reuse-free pipeline, while producing *identical*
witnesses and verdicts.

The reuse-free round count is measured two ways and cross-checked:
``rounds_simulated`` of an actual slow run, and ``rounds_baseline``
(distinct logical runs x horizon) accounted by the fast run.  They must
agree exactly — otherwise the baseline would be a fiction.
"""

import pytest

from repro.lowerbound.driver import attack_weak_consensus
from repro.protocols.subquadratic import ALL_CHEATERS, ring_token_spec
from repro.protocols.weak_consensus import broadcast_weak_consensus_spec

GRID = [(12, 8), (20, 16)]


def _attack_pair(spec):
    fast = attack_weak_consensus(spec)
    slow = attack_weak_consensus(
        spec, early_stop=False, reuse=False
    )
    return fast, slow


def _outcomes_agree(fast, slow):
    assert fast.found_violation == slow.found_violation
    assert fast.default_bit == slow.default_bit
    assert fast.critical_round == slow.critical_round
    assert (fast.witness is None) == (slow.witness is None)
    if fast.witness is not None:
        assert fast.witness == slow.witness
    if fast.bound is not None and slow.bound is not None:
        assert fast.bound.observed == slow.bound.observed


class TestReuseAcceptance:
    def test_aggregate_two_x_on_seed_candidates(self):
        fast_total = 0
        slow_total = 0
        for n, t in GRID:
            for build in ALL_CHEATERS:
                fast, slow = _attack_pair(build(n, t))
                _outcomes_agree(fast, slow)
                # The baseline accounted by the fast run must equal
                # what the reuse-free pipeline actually simulates.
                assert fast.rounds_baseline == slow.rounds_simulated
                assert slow.rounds_baseline == slow.rounds_simulated
                fast_total += fast.rounds_simulated
                slow_total += slow.rounds_simulated
        assert slow_total >= 2 * fast_total, (
            f"aggregate reuse below 2x on the seed matrix: "
            f"{slow_total} baseline vs {fast_total} simulated"
        )

    @pytest.mark.parametrize("n, t", GRID)
    def test_ring_token_individually_two_x(self, n, t):
        fast, slow = _attack_pair(ring_token_spec(n, t))
        _outcomes_agree(fast, slow)
        assert slow.rounds_simulated >= 2 * fast.rounds_simulated

    def test_counter_line_in_log(self):
        fast = attack_weak_consensus(ring_token_spec(12, 8))
        engine_lines = [
            line for line in fast.log if "engine: simulated" in line
        ]
        assert len(engine_lines) == 1
        assert "reuse hits" in engine_lines[0]
        assert "baseline" in engine_lines[0]
        rendered = fast.render()
        assert (
            f"simulated {fast.rounds_simulated} rounds "
            f"(baseline {fast.rounds_baseline})" in rendered
        )

    def test_correct_protocol_unaffected(self):
        spec = broadcast_weak_consensus_spec(12, 8)
        fast, slow = _attack_pair(spec)
        assert not fast.found_violation
        assert not slow.found_violation
        assert fast.bound is not None
        assert fast.bound.observed == slow.bound.observed
