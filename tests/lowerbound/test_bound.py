"""Tests for the quantitative bound helpers."""

from repro.lowerbound.bound import (
    BoundComparison,
    dolev_reischuk_floor,
    weak_consensus_floor,
)


class TestFloors:
    def test_lemma1_constant(self):
        assert weak_consensus_floor(8) == 2.0
        assert weak_consensus_floor(32) == 32.0
        assert weak_consensus_floor(0) == 0.0

    def test_dolev_reischuk(self):
        assert dolev_reischuk_floor(10, 4, authenticated=True) == 26.0
        assert dolev_reischuk_floor(10, 4, authenticated=False) == 40.0


class TestComparison:
    def test_below_floor(self):
        comparison = BoundComparison(t=32, observed=10)
        assert comparison.below_floor
        assert comparison.ratio < 1

    def test_at_or_above_floor(self):
        comparison = BoundComparison(t=32, observed=64)
        assert not comparison.below_floor
        assert comparison.ratio == 2.0

    def test_zero_t_edge(self):
        assert BoundComparison(t=0, observed=0).ratio == 1.0
        assert BoundComparison(t=0, observed=5).ratio == float("inf")

    def test_render(self):
        text = BoundComparison(t=8, observed=1).render()
        assert "t=8" in text
        assert "<" in text
