"""Tests for witness minimization."""

from repro.lowerbound.driver import attack_weak_consensus
from repro.lowerbound.witnesses import (
    ViolationKind,
    minimize_witness,
    verify_witness,
)
from repro.protocols.subquadratic import (
    leader_echo_spec,
    ring_token_spec,
)


class TestMinimizeWitness:
    def test_ring_token_witness_shrinks(self):
        """The ring cheater's witness spans the full n-round horizon,
        but both parties decide by round n; the minimized witness stops
        right there."""
        spec = ring_token_spec(16, 8)
        outcome = attack_weak_consensus(spec)
        witness = outcome.witness
        minimized = minimize_witness(witness, spec.factory)
        assert minimized.execution.rounds <= witness.execution.rounds
        verify_witness(minimized, spec.factory)
        assert "minimized" in minimized.note or (
            minimized.execution.rounds == witness.execution.rounds
        )

    def test_minimized_witness_keeps_the_disagreement(self):
        spec = leader_echo_spec(12, 8)
        outcome = attack_weak_consensus(spec)
        minimized = minimize_witness(outcome.witness, spec.factory)
        execution = minimized.execution
        assert execution.decision(
            minimized.culprit
        ) != execution.decision(minimized.counterpart)

    def test_termination_witnesses_untouched(self):
        from repro.protocols.base import ProtocolSpec
        from repro.sim.process import Process

        class Never(Process):
            def outgoing(self, round_):
                return {}

            def deliver(self, round_, received):
                return None

        spec = ProtocolSpec(
            name="never",
            n=12,
            t=8,
            rounds=3,
            factory=lambda pid, v: Never(pid, 12, 8, v),
        )
        outcome = attack_weak_consensus(spec)
        assert outcome.witness.kind is ViolationKind.TERMINATION
        minimized = minimize_witness(outcome.witness, spec.factory)
        assert minimized is outcome.witness


class TestRenderExecution:
    def test_round_table_shape(self):
        from repro.analysis.tables import render_execution

        spec = leader_echo_spec(8, 4)
        execution = spec.run_uniform(0)
        text = render_execution(execution)
        assert "execution: n=8 t=4" in text
        lines = text.splitlines()
        # header + table header + separator + one row per round
        assert len(lines) == 3 + execution.rounds

    def test_max_rounds_truncates(self):
        from repro.analysis.tables import render_execution

        spec = ring_token_spec(10, 4)
        execution = spec.run_uniform(0)
        text = render_execution(execution, max_rounds=3)
        assert len(text.splitlines()) == 3 + 3
