"""Tests for the Theorem-2 attack pipeline (Lemmas 2-5 end to end)."""

import pytest

from repro.lowerbound.driver import attack_weak_consensus
from repro.lowerbound.partition import ABCPartition, canonical_partition
from repro.lowerbound.witnesses import ViolationKind, verify_witness
from repro.protocols.base import ProtocolSpec
from repro.protocols.subquadratic import (
    ALL_CHEATERS,
    leader_echo_spec,
    ring_token_spec,
    silent_cheater_spec,
)
from repro.protocols.weak_consensus import broadcast_weak_consensus_spec
from repro.sim.process import Process


class TestBreaksEveryCheater:
    @pytest.mark.parametrize("builder", ALL_CHEATERS)
    @pytest.mark.parametrize("t", [8, 16])
    def test_cheater_broken_with_verified_witness(self, builder, t):
        n = t + 4
        spec = builder(n, t)
        outcome = attack_weak_consensus(spec)
        assert outcome.found_violation
        # Independent re-verification (the driver already did one).
        verify_witness(outcome.witness, spec.factory)
        # The witness execution respects the corruption budget.
        assert len(outcome.witness.execution.faulty) <= t

    def test_silent_cheater_yields_fault_free_disagreement(self):
        """The zero-message protocol is broken by an execution with *no*
        faults at all — the strongest possible counterexample."""
        outcome = attack_weak_consensus(silent_cheater_spec(12, 8))
        assert outcome.witness.kind is ViolationKind.AGREEMENT
        assert outcome.witness.execution.faulty == frozenset()

    def test_ring_cheater_exercises_the_interpolation(self):
        """The ring protocol survives the round-1 stages; the driver must
        find its default bit and walk the Lemma-4 scan."""
        outcome = attack_weak_consensus(ring_token_spec(16, 8))
        assert outcome.default_bit == 1
        assert outcome.found_violation
        assert any("Lemma 3 consistent" in line for line in outcome.log)

    def test_leader_echo_dies_at_round_one_stage(self):
        outcome = attack_weak_consensus(leader_echo_spec(12, 8))
        assert outcome.found_violation
        assert any(
            "Lemma 2 premise violated" in line for line in outcome.log
        )


class TestCorrectAlgorithmsSurvive:
    def test_broadcast_weak_consensus_not_broken(self):
        spec = broadcast_weak_consensus_spec(10, 8)
        outcome = attack_weak_consensus(spec)
        assert not outcome.found_violation
        assert not outcome.bound.below_floor

    def test_reduction_built_weak_consensus_not_broken(self):
        from repro.protocols.strong_consensus import (
            authenticated_strong_consensus_spec,
        )
        from repro.reductions.weak_from_any import reduce_weak_consensus
        from repro.validity.standard import strong_consensus_problem

        inner = authenticated_strong_consensus_spec(7, 3)
        reduced = reduce_weak_consensus(
            inner, strong_consensus_problem(7, 3)
        )
        outcome = attack_weak_consensus(reduced)
        assert not outcome.found_violation


class TestDriverInterface:
    def test_custom_partition(self):
        partition = ABCPartition(
            n=12,
            t=8,
            group_b=frozenset({4, 5}),
            group_c=frozenset({10, 11}),
        )
        outcome = attack_weak_consensus(
            leader_echo_spec(12, 8), partition
        )
        assert outcome.found_violation
        assert outcome.partition is partition

    def test_coordinator_inside_isolated_group(self):
        """Isolating the cheater's own leader still yields a violation:
        the silenced coordinator changes the default-bit landscape, and
        the Lemma-3 merge path picks up the slack."""
        partition = ABCPartition(
            n=12,
            t=8,
            group_b=frozenset({0, 1}),  # the leader sits in B
            group_c=frozenset({10, 11}),
        )
        outcome = attack_weak_consensus(
            leader_echo_spec(12, 8), partition
        )
        assert outcome.found_violation

    def test_partition_mismatch_rejected(self):
        with pytest.raises(ValueError, match="does not match"):
            attack_weak_consensus(
                leader_echo_spec(12, 8),
                canonical_partition(16, 8),
            )

    def test_outcome_render(self):
        outcome = attack_weak_consensus(silent_cheater_spec(12, 8))
        text = outcome.render()
        assert "VIOLATION" in text
        assert "t=8" in text

    def test_bound_comparison_tracks_worst_execution(self):
        spec = leader_echo_spec(12, 8)
        outcome = attack_weak_consensus(spec)
        fault_free = spec.run_uniform(0).message_complexity()
        assert outcome.bound.observed >= fault_free


class _NonTerminating(Process):
    """Never decides: the driver must produce a termination witness."""

    def outgoing(self, round_):
        return {}

    def deliver(self, round_, received):
        return None


class _BiasedValidity(Process):
    """Always decides 1 — violates Weak Validity in the all-0 run."""

    def outgoing(self, round_):
        return {}

    def deliver(self, round_, received):
        self.decide(1)


class TestDirectViolations:
    def test_non_termination_caught_immediately(self):
        spec = ProtocolSpec(
            name="never-decides",
            n=12,
            t=8,
            rounds=2,
            factory=lambda pid, v: _NonTerminating(pid, 12, 8, v),
        )
        outcome = attack_weak_consensus(spec)
        assert outcome.witness.kind is ViolationKind.TERMINATION

    def test_weak_validity_breach_caught_immediately(self):
        spec = ProtocolSpec(
            name="always-one",
            n=12,
            t=8,
            rounds=1,
            factory=lambda pid, v: _BiasedValidity(pid, 12, 8, v),
        )
        outcome = attack_weak_consensus(spec)
        assert outcome.witness.kind is ViolationKind.WEAK_VALIDITY
        assert outcome.witness.execution.faulty == frozenset()
