"""Tests for violation witnesses and their from-scratch verifier."""

import pytest

from repro.errors import ModelViolation
from repro.lowerbound.witnesses import (
    ViolationKind,
    ViolationWitness,
    is_valid_witness,
    verify_witness,
)
from repro.omission.isolation import isolate_group
from repro.omission.swap import swap_omission
from repro.protocols.subquadratic import (
    leader_echo_spec,
    silent_cheater_spec,
)


def agreement_witness():
    """A genuine agreement violation for the leader-echo cheater."""
    spec = leader_echo_spec(8, 4)
    isolated = spec.run_uniform(0, isolate_group({7}, 1))
    swapped = swap_omission(isolated, 7)
    witness = ViolationWitness(
        kind=ViolationKind.AGREEMENT,
        execution=swapped,
        culprit=7,
        counterpart=1,
        note="test witness",
    )
    return spec, witness


class TestVerifier:
    def test_accepts_genuine_agreement_witness(self):
        spec, witness = agreement_witness()
        verify_witness(witness, spec.factory)
        assert is_valid_witness(witness, spec.factory)

    def test_rejects_faulty_culprit(self):
        spec, witness = agreement_witness()
        bogus = ViolationWitness(
            kind=ViolationKind.AGREEMENT,
            execution=witness.execution,
            culprit=0,  # the leader is faulty after the swap
            counterpart=1,
        )
        with pytest.raises(ModelViolation, match="not correct"):
            verify_witness(bogus, spec.factory)

    def test_rejects_agreeing_parties(self):
        spec, witness = agreement_witness()
        bogus = ViolationWitness(
            kind=ViolationKind.AGREEMENT,
            execution=witness.execution,
            culprit=1,
            counterpart=2,  # both decided 0
        )
        with pytest.raises(ModelViolation, match="both decided"):
            verify_witness(bogus, spec.factory)

    def test_rejects_missing_counterpart(self):
        spec, witness = agreement_witness()
        bogus = ViolationWitness(
            kind=ViolationKind.AGREEMENT,
            execution=witness.execution,
            culprit=7,
        )
        with pytest.raises(ModelViolation, match="counterpart"):
            verify_witness(bogus, spec.factory)

    def test_rejects_wrong_algorithm(self):
        _, witness = agreement_witness()
        other = silent_cheater_spec(8, 4)
        with pytest.raises(ModelViolation):
            verify_witness(witness, other.factory)

    def test_rejects_fake_termination_claim(self):
        spec, witness = agreement_witness()
        bogus = ViolationWitness(
            kind=ViolationKind.TERMINATION,
            execution=witness.execution,
            culprit=7,  # decided 1, so the claim is false
        )
        with pytest.raises(ModelViolation, match="decided"):
            verify_witness(bogus, spec.factory)

    def test_weak_validity_witness_requirements(self):
        spec = silent_cheater_spec(4, 2)
        execution = spec.run([0, 0, 1, 0])
        non_unanimous = ViolationWitness(
            kind=ViolationKind.WEAK_VALIDITY,
            execution=execution,
            culprit=2,
        )
        with pytest.raises(ModelViolation, match="unanimous"):
            verify_witness(non_unanimous, spec.factory)

    def test_weak_validity_witness_must_be_fault_free(self):
        spec = leader_echo_spec(6, 2)
        execution = spec.run_uniform(0, isolate_group({5}, 1))
        bogus = ViolationWitness(
            kind=ViolationKind.WEAK_VALIDITY,
            execution=execution,
            culprit=1,  # correct, so the fault-free check is reached
        )
        with pytest.raises(ModelViolation, match="fault-free"):
            verify_witness(bogus, spec.factory)

    def test_correct_decision_is_not_a_weak_validity_breach(self):
        spec = silent_cheater_spec(4, 2)
        execution = spec.run_uniform(0)
        bogus = ViolationWitness(
            kind=ViolationKind.WEAK_VALIDITY,
            execution=execution,
            culprit=0,
        )
        with pytest.raises(ModelViolation, match="decided the unanimous"):
            verify_witness(bogus, spec.factory)


class TestSummary:
    def test_summary_shows_decisions(self):
        spec, witness = agreement_witness()
        text = witness.summary()
        assert "agreement" in text
        assert "decisions=" in text
