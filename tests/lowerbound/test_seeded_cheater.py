"""The §7 'randomized' direction, conditioned on coins: every seed
instance of the sampled-committee cheater is a deterministic algorithm,
and the Theorem-2 pipeline breaks each one."""

import pytest

from repro.lowerbound.driver import attack_weak_consensus
from repro.protocols.subquadratic import seeded_committee_cheater_spec


class TestSeededCommittee:
    def test_seed_determines_committee(self):
        a = seeded_committee_cheater_spec(16, 8, seed=1)
        b = seeded_committee_cheater_spec(16, 8, seed=1)
        machine_a = a.factory(0, 0)
        machine_b = b.factory(0, 0)
        assert machine_a.committee == machine_b.committee

    def test_different_seeds_vary_the_committee(self):
        committees = {
            seeded_committee_cheater_spec(16, 8, seed=s)
            .factory(0, 0)
            .committee
            for s in range(8)
        }
        assert len(committees) > 1

    def test_weak_validity_fault_free(self):
        spec = seeded_committee_cheater_spec(12, 8, seed=3)
        assert set(
            spec.run_uniform(0).correct_decisions().values()
        ) == {0}
        assert set(
            spec.run_uniform(1).correct_decisions().values()
        ) == {1}

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 7])
    def test_every_seed_instance_is_broken(self, seed):
        """Fixing the coins yields a deterministic sub-quadratic weak
        consensus — and Theorem 2 eats it, seed by seed."""
        spec = seeded_committee_cheater_spec(16, 8, seed=seed)
        outcome = attack_weak_consensus(spec)
        assert outcome.found_violation
