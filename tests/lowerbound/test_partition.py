"""Tests for the (A, B, C) partitions (Table 1)."""

import pytest

from repro.lowerbound.partition import (
    ABCPartition,
    canonical_partition,
    paper_partition,
)


class TestABCPartition:
    def test_group_a_is_complement(self):
        partition = ABCPartition(
            n=8, t=4, group_b=frozenset({6}), group_c=frozenset({7})
        )
        assert partition.group_a == frozenset(range(6))

    def test_rejects_overlap(self):
        with pytest.raises(ValueError, match="disjoint"):
            ABCPartition(
                n=8,
                t=4,
                group_b=frozenset({6}),
                group_c=frozenset({6, 7}),
            )

    def test_rejects_budget_overflow(self):
        with pytest.raises(ValueError, match="exceeds"):
            ABCPartition(
                n=8,
                t=2,
                group_b=frozenset({5, 6}),
                group_c=frozenset({7}),
            )

    def test_rejects_empty_a(self):
        # Covering all of Π with B ∪ C requires |B|+|C| = n > t, so the
        # budget check necessarily fires first; group A can never be
        # empty in a budget-respecting partition.
        with pytest.raises(ValueError, match="exceeds"):
            ABCPartition(
                n=2,
                t=1,
                group_b=frozenset({0}),
                group_c=frozenset({1}),
            )

    def test_describe(self):
        partition = canonical_partition(12, 8)
        text = partition.describe()
        assert "A=" in text and "B=" in text and "C=" in text


class TestCanonical:
    def test_paper_sizing_at_t_divisible_by_8(self):
        partition = canonical_partition(24, 16)
        assert len(partition.group_b) == 4
        assert len(partition.group_c) == 4

    def test_small_t_degrades_to_singletons(self):
        partition = canonical_partition(6, 2)
        assert len(partition.group_b) == 1
        assert len(partition.group_c) == 1

    def test_groups_sit_at_top_ids(self):
        partition = canonical_partition(10, 4)
        assert partition.group_c == {9}
        assert partition.group_b == {8}
        assert 0 in partition.group_a

    def test_rejects_t_below_2(self):
        with pytest.raises(ValueError, match="t >= 2"):
            canonical_partition(5, 1)

    def test_rejects_degenerate_population(self):
        # t >= n is rejected by the system-size validator before the
        # group-fitting logic can run.
        with pytest.raises(ValueError, match="0 <= t < n"):
            canonical_partition(2, 8)


class TestPaperRegime:
    def test_accepts_paper_parameters(self):
        partition = paper_partition(17, 16)
        assert len(partition.group_b) == 4

    def test_rejects_non_multiple_of_8(self):
        with pytest.raises(ValueError, match="divisible by 8"):
            paper_partition(17, 12)

    def test_rejects_small_t(self):
        with pytest.raises(ValueError, match="divisible by 8"):
            paper_partition(17, 4)
