"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_experiment_subcommands_registered(self):
        parser = build_parser()
        for experiment in ("e1", "e5", "e9", "all"):
            args = parser.parse_args([experiment])
            assert args.command == experiment

    def test_attack_arguments(self):
        args = build_parser().parse_args(
            ["attack", "silent", "--n", "20", "--t", "12"]
        )
        assert args.protocol == "silent"
        assert (args.n, args.t) == (20, 12)

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestMain:
    def test_experiment_runs(self, capsys):
        assert main(["e6"]) == 0
        out = capsys.readouterr().out
        assert "Theorem 5" in out

    def test_attack_cheater_exits_zero_on_break(self, capsys):
        assert main(["attack", "silent", "--n", "12", "--t", "8"]) == 0
        assert "VIOLATION" in capsys.readouterr().out

    def test_attack_correct_exits_zero_on_survival(self, capsys):
        assert main(["attack", "correct", "--n", "8", "--t", "4"]) == 0
        assert "no violation" in capsys.readouterr().out

    def test_attack_log_flag(self, capsys):
        assert (
            main(["attack", "silent", "--n", "12", "--t", "8", "--log"])
            == 0
        )
        captured = capsys.readouterr()
        assert "VIOLATION" in captured.out
        # The pipeline narrative is a diagnostic: stderr only.
        assert "Lemma" in captured.err
        assert "Lemma" not in captured.out

    def test_classify(self, capsys):
        assert main(["classify", "strong", "--n", "4", "--t", "2"]) == 0
        out = capsys.readouterr().out
        assert "CC=N" in out

    def test_attack_naive_flooding_expects_no_violation(self, capsys):
        assert (
            main(["attack", "naive-flooding", "--n", "12", "--t", "8"])
            == 0
        )
        assert "no violation" in capsys.readouterr().out


class TestLedgerCommands:
    def test_attack_ledger_then_trace(self, tmp_path, capsys):
        path = str(tmp_path / "run.jsonl")
        assert (
            main(
                [
                    "attack",
                    "ring-token",
                    "--n",
                    "12",
                    "--t",
                    "8",
                    "--ledger",
                    path,
                ]
            )
            == 0
        )
        captured = capsys.readouterr()
        assert "run ledger written" in captured.err
        assert "run ledger written" not in captured.out
        assert main(["trace", path]) == 0
        trace = capsys.readouterr().out
        assert "phase tree" in trace
        assert "fault-free" in trace
        assert "messages / (t²/32)" in trace
        assert "cache hit rate" in trace

    def test_trace_missing_file_exits_two(self, tmp_path, capsys):
        missing = str(tmp_path / "nope.jsonl")
        assert main(["trace", missing]) == 2
        assert "error:" in capsys.readouterr().err

    def test_report_trend_appends_and_diffs(self, tmp_path, capsys):
        out = str(tmp_path / "trend.jsonl")
        assert main(["report", "--trend", "--out", out]) == 0
        first = capsys.readouterr()
        assert "first recorded point" in first.out
        assert "trend point appended" in first.err
        assert main(["report", "--trend", "--out", out]) == 0
        again = capsys.readouterr().out
        assert "wall vs previous" in again

    def test_sweep_ledger_records_measure_cells(
        self, tmp_path, capsys
    ):
        from repro.obs.ledger import read_events

        path = str(tmp_path / "sweep.jsonl")
        assert (
            main(
                [
                    "sweep",
                    "weak-consensus",
                    "--max-t",
                    "4",
                    "--ledger",
                    path,
                ]
            )
            == 0
        )
        capsys.readouterr()
        events = read_events(path)
        names = {event.name for event in events}
        assert "measure.worst_messages" in names
        assert "cell.wall_seconds" in names

    def test_profile_table_goes_to_stderr(self, capsys):
        assert (
            main(
                [
                    "attack",
                    "silent",
                    "--n",
                    "12",
                    "--t",
                    "8",
                    "--profile",
                ]
            )
            == 0
        )
        captured = capsys.readouterr()
        assert "wall time:" in captured.err
        assert "wall time:" not in captured.out


class TestWitnessFiles:
    def test_save_and_verify_roundtrip(self, tmp_path, capsys):
        path = str(tmp_path / "witness.json")
        assert (
            main(
                [
                    "attack",
                    "leader-echo",
                    "--n",
                    "12",
                    "--t",
                    "8",
                    "--save",
                    path,
                ]
            )
            == 0
        )
        assert (
            main(
                [
                    "verify-witness",
                    path,
                    "leader-echo",
                    "--n",
                    "12",
                    "--t",
                    "8",
                ]
            )
            == 0
        )
        assert "VERIFIED" in capsys.readouterr().out

    def test_verify_against_wrong_protocol_rejected(
        self, tmp_path, capsys
    ):
        path = str(tmp_path / "witness.json")
        main(
            [
                "attack",
                "leader-echo",
                "--n",
                "12",
                "--t",
                "8",
                "--save",
                path,
            ]
        )
        assert (
            main(
                ["verify-witness", path, "silent", "--n", "12", "--t", "8"]
            )
            == 1
        )
        # Rejection details are diagnostics: stderr, not stdout.
        assert "REJECTED" in capsys.readouterr().err
