"""Tests for the command-line interface."""

import os

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_experiment_subcommands_registered(self):
        parser = build_parser()
        for experiment in ("e1", "e5", "e9", "all"):
            args = parser.parse_args([experiment])
            assert args.command == experiment

    def test_attack_arguments(self):
        args = build_parser().parse_args(
            ["attack", "silent", "--n", "20", "--t", "12"]
        )
        assert args.protocol == "silent"
        assert (args.n, args.t) == (20, 12)

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestMain:
    def test_experiment_runs(self, capsys):
        assert main(["e6"]) == 0
        out = capsys.readouterr().out
        assert "Theorem 5" in out

    def test_attack_cheater_exits_zero_on_break(self, capsys):
        assert main(["attack", "silent", "--n", "12", "--t", "8"]) == 0
        assert "VIOLATION" in capsys.readouterr().out

    def test_attack_correct_exits_zero_on_survival(self, capsys):
        assert main(["attack", "correct", "--n", "8", "--t", "4"]) == 0
        assert "no violation" in capsys.readouterr().out

    def test_attack_log_flag(self, capsys):
        assert (
            main(["attack", "silent", "--n", "12", "--t", "8", "--log"])
            == 0
        )
        captured = capsys.readouterr()
        assert "VIOLATION" in captured.out
        # The pipeline narrative is a diagnostic: stderr only.
        assert "Lemma" in captured.err
        assert "Lemma" not in captured.out

    def test_classify(self, capsys):
        assert main(["classify", "strong", "--n", "4", "--t", "2"]) == 0
        out = capsys.readouterr().out
        assert "CC=N" in out

    def test_attack_naive_flooding_expects_no_violation(self, capsys):
        assert (
            main(["attack", "naive-flooding", "--n", "12", "--t", "8"])
            == 0
        )
        assert "no violation" in capsys.readouterr().out


class TestLedgerCommands:
    def test_attack_ledger_then_trace(self, tmp_path, capsys):
        path = str(tmp_path / "run.jsonl")
        assert (
            main(
                [
                    "attack",
                    "ring-token",
                    "--n",
                    "12",
                    "--t",
                    "8",
                    "--ledger",
                    path,
                ]
            )
            == 0
        )
        captured = capsys.readouterr()
        assert "run ledger written" in captured.err
        assert "run ledger written" not in captured.out
        assert main(["trace", path]) == 0
        trace = capsys.readouterr().out
        assert "phase tree" in trace
        assert "fault-free" in trace
        assert "messages / (t²/32)" in trace
        assert "cache hit rate" in trace

    def test_trace_missing_file_exits_two(self, tmp_path, capsys):
        missing = str(tmp_path / "nope.jsonl")
        assert main(["trace", missing]) == 2
        assert "error:" in capsys.readouterr().err

    def test_trace_corrupt_file_exits_two(self, tmp_path, capsys):
        corrupt = tmp_path / "garbage.jsonl"
        corrupt.write_text("this is not a ledger\n")
        assert main(["trace", str(corrupt)]) == 2
        captured = capsys.readouterr()
        # One diagnostic line naming file and line, no traceback.
        assert "error:" in captured.err
        assert "garbage.jsonl:1" in captured.err
        assert captured.out == ""

    def test_trend_corrupt_log_exits_two(self, tmp_path, capsys):
        log = tmp_path / "trend.jsonl"
        log.write_text("{broken\n")
        assert main(["report", "--trend", "--out", str(log)]) == 2
        captured = capsys.readouterr()
        assert "error:" in captured.err
        assert "not a trend point" in captured.err

    def test_trend_out_creates_parent_directories(
        self, tmp_path, capsys
    ):
        out = str(tmp_path / "deep" / "nested" / "trend.jsonl")
        assert main(["report", "--trend", "--out", out]) == 0
        capsys.readouterr()
        import os

        assert os.path.exists(out)

    def test_report_trend_appends_and_diffs(self, tmp_path, capsys):
        out = str(tmp_path / "trend.jsonl")
        assert main(["report", "--trend", "--out", out]) == 0
        first = capsys.readouterr()
        assert "first recorded point" in first.out
        assert "trend point appended" in first.err
        assert main(["report", "--trend", "--out", out]) == 0
        again = capsys.readouterr().out
        assert "wall vs previous" in again

    def test_sweep_ledger_records_measure_cells(
        self, tmp_path, capsys
    ):
        from repro.obs.ledger import read_events

        path = str(tmp_path / "sweep.jsonl")
        assert (
            main(
                [
                    "sweep",
                    "weak-consensus",
                    "--max-t",
                    "4",
                    "--ledger",
                    path,
                ]
            )
            == 0
        )
        capsys.readouterr()
        events = read_events(path)
        names = {event.name for event in events}
        assert "measure.worst_messages" in names
        assert "cell.wall_seconds" in names

    def test_profile_table_goes_to_stderr(self, capsys):
        assert (
            main(
                [
                    "attack",
                    "silent",
                    "--n",
                    "12",
                    "--t",
                    "8",
                    "--profile",
                ]
            )
            == 0
        )
        captured = capsys.readouterr()
        assert "wall time:" in captured.err
        assert "wall time:" not in captured.out


class TestWitnessFiles:
    def test_save_and_verify_roundtrip(self, tmp_path, capsys):
        path = str(tmp_path / "witness.json")
        assert (
            main(
                [
                    "attack",
                    "leader-echo",
                    "--n",
                    "12",
                    "--t",
                    "8",
                    "--save",
                    path,
                ]
            )
            == 0
        )
        assert (
            main(
                [
                    "verify-witness",
                    path,
                    "leader-echo",
                    "--n",
                    "12",
                    "--t",
                    "8",
                ]
            )
            == 0
        )
        assert "VERIFIED" in capsys.readouterr().out

    def test_verify_against_wrong_protocol_rejected(
        self, tmp_path, capsys
    ):
        path = str(tmp_path / "witness.json")
        main(
            [
                "attack",
                "leader-echo",
                "--n",
                "12",
                "--t",
                "8",
                "--save",
                path,
            ]
        )
        assert (
            main(
                ["verify-witness", path, "silent", "--n", "12", "--t", "8"]
            )
            == 1
        )
        # Rejection details are diagnostics: stderr, not stdout.
        assert "REJECTED" in capsys.readouterr().err


_TINY_BENCH_MODULE = '''
"""A hermetic observatory kernel for the CLI tests."""

from repro.obs.bench import register


def _tiny_kernel():
    assert sum(range(100)) == 4950


register("clitest", "tiny_sum", _tiny_kernel, quick=True)
'''


class TestBenchCommands:
    """The benchmark observatory CLI, run against a hermetic tmp suite."""

    @pytest.fixture()
    def bench_dir(self, tmp_path):
        directory = tmp_path / "kernels"
        directory.mkdir()
        (directory / "bench_clitest.py").write_text(_TINY_BENCH_MODULE)
        return str(directory)

    def _run(self, bench_dir, out_dir):
        return main(
            [
                "bench",
                "run",
                "--quick",
                "--suite",
                "clitest",
                "--dir",
                bench_dir,
                "--out-dir",
                out_dir,
            ]
        )

    def test_run_writes_schema_versioned_trajectory(
        self, bench_dir, tmp_path, capsys
    ):
        import json

        out_dir = str(tmp_path / "out")
        assert self._run(bench_dir, out_dir) == 0
        captured = capsys.readouterr()
        # Results table on stdout, measurement narration on stderr.
        assert "tiny_sum" in captured.out
        assert "measuring clitest/tiny_sum" in captured.err
        assert "measuring" not in captured.out
        document = json.loads(
            (tmp_path / "out" / "BENCH_clitest.json").read_text()
        )
        assert document["schema"] == "repro.bench/v1"
        (point,) = document["points"]
        assert point["stats"]["repetitions"] == 3  # quick tier
        assert point["tier"] == "quick"
        assert point["memory"]["tracemalloc_peak_bytes"] >= 0
        assert "messages_materialized" in point["objects"]
        assert "git_sha" in point["fingerprint"]

    def test_self_comparison_exits_zero(
        self, bench_dir, tmp_path, capsys
    ):
        out_dir = str(tmp_path / "out")
        assert self._run(bench_dir, out_dir) == 0
        baseline = str(tmp_path / "out" / "BENCH_clitest.json")
        assert (
            main(
                ["bench", "compare", baseline, "--out-dir", out_dir]
            )
            == 0
        )
        assert "0 regression(s)" in capsys.readouterr().out

    def test_injected_regression_exits_one(
        self, bench_dir, tmp_path, capsys
    ):
        import json

        out_dir = str(tmp_path / "out")
        assert self._run(bench_dir, out_dir) == 0
        trajectory = tmp_path / "out" / "BENCH_clitest.json"
        slowed = json.loads(trajectory.read_text())
        for point in slowed["points"]:
            point["stats"]["median"] *= 10
            point["stats"]["noise"] = 0.0
        current = tmp_path / "slowed.json"
        current.write_text(json.dumps(slowed))
        assert (
            main(
                [
                    "bench",
                    "compare",
                    str(trajectory),
                    str(current),
                ]
            )
            == 1
        )
        assert "REGRESSION" in capsys.readouterr().out

    def test_missing_baseline_exits_two(self, tmp_path, capsys):
        missing = str(tmp_path / "nope.json")
        assert main(["bench", "compare", missing]) == 2
        assert "error:" in capsys.readouterr().err

    def test_corrupt_baseline_exits_two(self, tmp_path, capsys):
        corrupt = tmp_path / "BENCH_x.json"
        corrupt.write_text("{broken")
        assert main(["bench", "compare", str(corrupt)]) == 2
        assert "not a bench trajectory" in capsys.readouterr().err

    def test_unknown_suite_exits_one(self, bench_dir, capsys):
        assert (
            main(
                [
                    "bench",
                    "run",
                    "--suite",
                    "no-such-suite",
                    "--dir",
                    bench_dir,
                ]
            )
            == 1
        )
        assert "unknown bench suite" in capsys.readouterr().err

    def test_list_names_kernels_and_tiers(self, bench_dir, capsys):
        assert main(["bench", "list", "--dir", bench_dir]) == 0
        assert "clitest/tiny_sum [quick]" in capsys.readouterr().out


class TestSweepProgress:
    def test_jobs_sweep_keeps_stdout_machine_readable(self, capsys):
        assert (
            main(
                [
                    "sweep",
                    "silent",
                    "--max-t",
                    "4",
                    "--jobs",
                    "2",
                    "--progress",
                ]
            )
            == 0
        )
        captured = capsys.readouterr()
        # The live status line is stderr-only.
        assert "cells" in captured.err
        assert "cells" not in captured.out
        assert "protocol" in captured.out  # the results table

    def test_no_progress_flag_silences_the_line(self, capsys):
        assert (
            main(
                ["sweep", "silent", "--max-t", "4", "--no-progress"]
            )
            == 0
        )
        assert "cells" not in capsys.readouterr().err


class TestWorldLogCommands:
    def _attack_into_worldlog(self, tmp_path):
        log_path = str(tmp_path / "run.worldlog")
        assert (
            main(
                [
                    "attack",
                    "silent",
                    "--n",
                    "8",
                    "--t",
                    "4",
                    "--ledger",
                    log_path,
                ]
            )
            == 0
        )
        return log_path

    def test_ledger_worldlog_shim_records(self, tmp_path, capsys):
        log_path = self._attack_into_worldlog(tmp_path)
        captured = capsys.readouterr()
        assert "world log written" in captured.err
        from repro.worldlog import read_worldlog

        kinds = {record.kind for record in read_worldlog(log_path)}
        assert {"log.open", "ledger.event", "checkpoint"} <= kinds

    def test_log_show_lists_records(self, tmp_path, capsys):
        log_path = self._attack_into_worldlog(tmp_path)
        capsys.readouterr()
        assert main(["log", "show", log_path]) == 0
        out = capsys.readouterr().out
        assert "record(s)" in out
        assert "checkpoint" in out
        assert (
            main(["log", "show", log_path, "--kind", "checkpoint"]) == 0
        )
        filtered = capsys.readouterr().out
        assert "ledger.event" not in filtered

    def test_log_derive_writes_views(self, tmp_path, capsys):
        log_path = self._attack_into_worldlog(tmp_path)
        capsys.readouterr()
        out_dir = str(tmp_path / "views")
        assert main(["log", "derive", log_path, "--out", out_dir]) == 0
        import os

        assert os.path.exists(os.path.join(out_dir, "ledger.jsonl"))
        assert os.path.exists(os.path.join(out_dir, "checkpoints.json"))

    def test_trace_sniffs_a_world_log(self, tmp_path, capsys):
        log_path = self._attack_into_worldlog(tmp_path)
        capsys.readouterr()
        assert main(["trace", log_path]) == 0
        assert "phase tree" in capsys.readouterr().out

    def test_sweep_resume_conflicts_with_ledger(self, tmp_path, capsys):
        log_path = str(tmp_path / "run.worldlog")
        code = main(
            [
                "sweep",
                "silent",
                "--max-t",
                "4",
                "--resume",
                log_path,
                "--ledger",
                log_path,
            ]
        )
        # ReproError: a domain refusal, not an environment failure.
        assert code == 1


class TestServiceCommands:
    """Exit-code and diagnostic pinning for serve/submit/jobs/watch."""

    @pytest.fixture
    def service(self):
        """A live in-thread job server on a short /tmp socket path."""
        import os
        import shutil
        import tempfile
        import threading

        from repro.service import JobServer, QuotaPolicy

        scratch = tempfile.mkdtemp(prefix="rcli", dir="/tmp")
        sock = os.path.join(scratch, "s.sock")
        log = os.path.join(scratch, "log.worldlog")
        server = JobServer(
            log_path=log,
            socket_path=sock,
            quota=QuotaPolicy(max_pending=1, rate=1000.0, burst=1000),
        )
        thread = threading.Thread(
            target=server.serve_forever, daemon=True
        )
        thread.start()
        assert server.ready.wait(timeout=30)
        try:
            yield sock, log
        finally:
            server.request_shutdown()
            thread.join(timeout=60)
            shutil.rmtree(scratch, ignore_errors=True)

    def test_submit_wait_prints_the_verdict(self, service, capsys):
        sock, _ = service
        code = main(
            [
                "submit",
                "--socket",
                sock,
                "classify",
                "weak",
                "--n",
                "5",
                "--t",
                "1",
                "--wait",
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        # The verdict is the result: stdout.  Progress is diagnostic:
        # stderr.
        assert "weak n=5 t=1" in captured.out
        assert "job.start" in captured.err
        assert "job.start" not in captured.out

    def test_submit_then_jobs_and_watch(self, service, capsys):
        sock, log = service
        assert (
            main(
                [
                    "submit",
                    "--socket",
                    sock,
                    "classify",
                    "weak",
                    "--n",
                    "5",
                    "--t",
                    "1",
                ]
            )
            == 0
        )
        key = capsys.readouterr().out.split()[0]
        assert len(key) == 16
        assert main(["watch", "--socket", sock, key]) == 0
        capsys.readouterr()
        assert main(["jobs", "--socket", sock]) == 0
        out = capsys.readouterr().out
        assert key in out
        assert "classify/weak/n5/t1" in out

    def test_resubmission_is_cached(self, service, capsys):
        sock, _ = service
        spec = [
            "submit",
            "--socket",
            sock,
            "classify",
            "weak",
            "--n",
            "5",
            "--t",
            "1",
            "--wait",
        ]
        assert main(spec) == 0
        capsys.readouterr()
        assert main(spec[:-1]) == 0  # same spec, no --wait
        assert "(cached)" in capsys.readouterr().out

    def test_quota_rejection_is_a_domain_failure(self, service, capsys):
        sock, _ = service
        # max_pending=1: a slow measure occupies the tenant's only slot.
        assert (
            main(
                [
                    "submit",
                    "--socket",
                    sock,
                    "measure",
                    "weak-consensus",
                    "--n",
                    "40",
                    "--t",
                    "36",
                    "--tenant",
                    "alice",
                ]
            )
            == 0
        )
        capsys.readouterr()
        code = main(
            [
                "submit",
                "--socket",
                sock,
                "classify",
                "weak",
                "--n",
                "5",
                "--t",
                "1",
                "--tenant",
                "alice",
            ]
        )
        captured = capsys.readouterr()
        assert code == 1
        assert (
            "error: quota: tenant alice has 1 pending jobs (max 1)"
            in captured.err
        )
        assert captured.out == ""

    def test_unknown_builder_fails_fast_client_side(
        self, service, capsys
    ):
        sock, _ = service
        code = main(
            [
                "submit",
                "--socket",
                sock,
                "attack",
                "no-such-cheater",
                "--n",
                "8",
                "--t",
                "4",
            ]
        )
        captured = capsys.readouterr()
        assert code == 1
        assert "unknown spec builder 'no-such-cheater'" in captured.err

    def test_certify_on_classify_is_rejected(self, service, capsys):
        sock, _ = service
        code = main(
            [
                "submit",
                "--socket",
                sock,
                "classify",
                "weak",
                "--n",
                "5",
                "--t",
                "1",
                "--certify",
            ]
        )
        assert code == 1
        assert (
            "--certify applies to attack jobs only"
            in capsys.readouterr().err
        )

    def test_missing_socket_is_an_environment_failure(self, capsys):
        code = main(
            [
                "submit",
                "--socket",
                "/tmp/no-such-service.sock",
                "classify",
                "weak",
                "--n",
                "5",
                "--t",
                "1",
            ]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_jobs_offline_reads_the_log(self, service, capsys):
        sock, log = service
        spec = [
            "submit",
            "--socket",
            sock,
            "classify",
            "weak",
            "--n",
            "5",
            "--t",
            "1",
            "--wait",
        ]
        assert main(spec) == 0
        capsys.readouterr()
        assert main(["jobs", "--log", log]) == 0
        assert "classify/weak/n5/t1" in capsys.readouterr().out

    def test_jobs_offline_rejects_a_non_log_uniformly(
        self, tmp_path, capsys
    ):
        bogus = tmp_path / "not-a-log.worldlog"
        bogus.write_text("definitely not a record\n")
        assert main(["jobs", "--log", str(bogus)]) == 2
        err = capsys.readouterr().err
        # The shared repro.artifact file:line diagnostic, verbatim.
        assert f"error: {bogus}:1: not a world-log record" in err


class TestTimeTravelCommands:
    """``log show`` filters and the ``replay``/``diff``/``stats`` trio."""

    GOLDEN = os.path.join(
        os.path.dirname(os.path.abspath(__file__)),
        "worldlog",
        "golden",
        "run.worldlog",
    )

    def test_log_show_filters_and_tail(self, capsys):
        assert (
            main(
                [
                    "log", "show", self.GOLDEN,
                    "--kind", "ledger.event",
                    "--run", "golden",
                    "--tail", "2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        # Header plus exactly the last two surviving records.
        body = [line for line in out.splitlines()[1:] if line.strip()]
        assert len(body) == 2
        assert all("ledger.event" in line for line in body)

    def test_log_show_cell_filter(self, capsys):
        assert (
            main(["log", "show", self.GOLDEN, "--cell", "no-such-cell"])
            == 0
        )
        out = capsys.readouterr().out
        assert len([ln for ln in out.splitlines()[1:] if ln.strip()]) == 0

    def test_log_replay_one_shot(self, capsys):
        assert main(["log", "replay", self.GOLDEN, "--at", "20"]) == 0
        out = capsys.readouterr().out
        assert "tick 20" in out
        assert "21/39 record(s) applied" in out
        assert "open spans:" in out

    def test_log_replay_stdin_script(self, capsys, monkeypatch):
        import io

        monkeypatch.setattr(
            "sys.stdin",
            io.StringIO("next 3\nstate\nprev 2\nseek 38\nstate\nquit\n"),
        )
        assert main(["log", "replay", self.GOLDEN]) == 0
        out = capsys.readouterr().out
        assert "log.open" in out  # the first stepped record line
        assert "at tick 38" in out
        assert "39/39 record(s) applied" in out

    def test_log_diff_empty_exits_zero(self, capsys):
        assert main(["log", "diff", self.GOLDEN, self.GOLDEN]) == 0
        assert "semantically identical" in capsys.readouterr().out

    def test_log_diff_divergence_exits_one(self, tmp_path, capsys):
        import json

        mutated = tmp_path / "mutated.worldlog"
        with open(self.GOLDEN, encoding="utf-8") as handle:
            lines = handle.readlines()
        raw = json.loads(lines[20])
        raw["payload"]["name"] = "not-the-same-event"
        lines[20] = json.dumps(raw) + "\n"
        mutated.write_text("".join(lines))
        assert main(["log", "diff", self.GOLDEN, str(mutated)]) == 1
        out = capsys.readouterr().out
        assert "first divergence" in out
        assert "not-the-same-event" in out

    def test_log_diff_missing_file_exits_two(self, capsys):
        assert main(["log", "diff", self.GOLDEN, "no-such.worldlog"]) == 2

    def test_log_stats_prints_trend_shaped_json(self, capsys):
        import json

        assert main(["log", "stats", self.GOLDEN]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["schema"] == "repro.logstats/v1"
        assert document["label"] == "log/golden"
        for key in (
            "wall_seconds",
            "rounds_simulated",
            "messages_observed",
            "events",
            "cache_hit_rate",
            "spans",
            "percentiles",
        ):
            assert key in document


class TestObservabilityCommands:
    """PR 10 surface: interval validation, tail/top/status, exports."""

    GOLDEN = os.path.join(
        os.path.dirname(os.path.abspath(__file__)),
        "worldlog",
        "golden",
        "run.worldlog",
    )

    def _attack_into_worldlog(self, tmp_path, *extra):
        log_path = str(tmp_path / "run.worldlog")
        assert (
            main(
                ["attack", "silent", "--n", "8", "--t", "4",
                 "--ledger", log_path, *extra]
            )
            == 0
        )
        return log_path

    # ------------------------------------------------------------------
    # uniform interval validation (exit 1, one-line diagnostic)
    # ------------------------------------------------------------------

    @pytest.mark.parametrize(
        "argv",
        [
            ["log", "tail", "x.worldlog", "--interval", "0"],
            ["top", "--log", "x.worldlog", "--interval", "-1"],
            ["top", "--log", "x.worldlog", "--interval", "abc"],
        ],
    )
    def test_nonpositive_intervals_are_domain_errors(
        self, argv, capsys
    ):
        assert main(argv) == 1
        err = capsys.readouterr().err
        assert err.count("\n") == 1
        assert "error: --interval expects a positive number" in err

    def test_telemetry_interval_shares_the_diagnostic(
        self, tmp_path, capsys
    ):
        code = main(
            ["attack", "silent", "--n", "8", "--t", "4",
             "--ledger", str(tmp_path / "r.worldlog"),
             "--telemetry-interval", "abc"]
        )
        assert code == 1
        err = capsys.readouterr().err
        assert (
            "error: --telemetry-interval expects a positive number"
            in err
        )

    def test_telemetry_without_a_worldlog_ledger_is_refused(
        self, capsys
    ):
        code = main(
            ["attack", "silent", "--n", "8", "--t", "4", "--telemetry"]
        )
        assert code == 1
        assert "pass --ledger PATH.worldlog" in capsys.readouterr().err

    # ------------------------------------------------------------------
    # telemetry recording end to end
    # ------------------------------------------------------------------

    def test_attack_telemetry_records_snapshots(self, tmp_path, capsys):
        log_path = self._attack_into_worldlog(
            tmp_path, "--telemetry", "--telemetry-interval", "0.001"
        )
        capsys.readouterr()
        from repro.worldlog import read_worldlog

        snaps = [
            record
            for record in read_worldlog(log_path)
            if record.kind == "telemetry.snapshot"
        ]
        assert snaps
        assert snaps[-1].payload["source"] == "attack"

    # ------------------------------------------------------------------
    # log tail
    # ------------------------------------------------------------------

    def test_log_tail_prints_record_lines(self, tmp_path, capsys):
        log_path = self._attack_into_worldlog(tmp_path)
        capsys.readouterr()
        assert main(["log", "tail", log_path]) == 0
        out = capsys.readouterr().out
        assert "log.open" in out
        assert "checkpoint" in out

    def test_log_tail_missing_file_is_an_environment_failure(
        self, tmp_path, capsys
    ):
        code = main(
            ["log", "tail", str(tmp_path / "missing.worldlog")]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_log_tail_follow_stops_after_max_polls(
        self, tmp_path, capsys
    ):
        log_path = self._attack_into_worldlog(tmp_path)
        capsys.readouterr()
        code = main(
            ["log", "tail", log_path, "--follow",
             "--interval", "0.001", "--max-polls", "3"]
        )
        assert code == 0
        assert "log.open" in capsys.readouterr().out

    # ------------------------------------------------------------------
    # export adapters over the committed golden fixture
    # ------------------------------------------------------------------

    def test_metrics_export_prometheus(self, capsys):
        assert (
            main(["metrics", "export", self.GOLDEN, "--format", "prom"])
            == 0
        )
        out = capsys.readouterr().out
        assert "# TYPE repro_engine_round_total counter" in out
        assert "repro_span_attack_seconds_count 1" in out

    def test_metrics_export_to_a_file(self, tmp_path, capsys):
        out_path = str(tmp_path / "metrics.prom")
        assert (
            main(["metrics", "export", self.GOLDEN, "--out", out_path])
            == 0
        )
        captured = capsys.readouterr()
        assert "metrics exposition written to" in captured.err
        assert captured.out == ""
        with open(out_path, encoding="utf-8") as handle:
            assert "repro_engine_round_total" in handle.read()

    def test_trace_chrome_format(self, capsys):
        import json

        assert (
            main(["trace", self.GOLDEN, "--format", "chrome"]) == 0
        )
        document = json.loads(capsys.readouterr().out)
        assert document["displayTimeUnit"] == "ms"
        assert any(
            entry["ph"] == "B" for entry in document["traceEvents"]
        )

    # ------------------------------------------------------------------
    # top / status
    # ------------------------------------------------------------------

    def test_top_log_mode_once_renders_to_stderr(
        self, tmp_path, capsys
    ):
        log_path = self._attack_into_worldlog(
            tmp_path, "--telemetry", "--telemetry-interval", "0.001"
        )
        capsys.readouterr()
        assert main(["top", "--log", log_path, "--once"]) == 0
        captured = capsys.readouterr()
        # Dashboard frames are diagnostics: stderr, never stdout.
        assert captured.out == ""
        assert "record(s)" in captured.err
        assert "telemetry" in captured.err
        assert "rounds" in captured.err

    @pytest.fixture
    def service(self):
        """A live in-thread job server on a short /tmp socket path."""
        import shutil
        import tempfile
        import threading

        from repro.service import JobServer

        scratch = tempfile.mkdtemp(prefix="rtop", dir="/tmp")
        sock = os.path.join(scratch, "s.sock")
        log = os.path.join(scratch, "log.worldlog")
        server = JobServer(log_path=log, socket_path=sock, jobs=2)
        thread = threading.Thread(
            target=server.serve_forever, daemon=True
        )
        thread.start()
        assert server.ready.wait(timeout=30)
        try:
            yield sock, log
        finally:
            server.request_shutdown()
            thread.join(timeout=60)
            shutil.rmtree(scratch, ignore_errors=True)

    def test_status_renders_the_fold(self, service, capsys):
        sock, _ = service
        assert main(["status", "--socket", sock]) == 0
        out = capsys.readouterr().out
        assert "server run" in out
        assert "0/2 busy" in out

    def test_status_json_is_the_raw_frame(self, service, capsys):
        import json

        sock, _ = service
        assert main(["status", "--socket", sock, "--json"]) == 0
        frame = json.loads(capsys.readouterr().out)
        assert frame["ok"] is True
        assert frame["workers"]["total"] == 2

    def test_top_socket_mode_once(self, service, capsys):
        sock, _ = service
        assert main(["top", "--socket", sock, "--once"]) == 0
        captured = capsys.readouterr()
        assert captured.out == ""
        assert "0/2 busy" in captured.err

    def test_status_against_a_dead_socket_is_exit_2(self, capsys):
        code = main(
            ["status", "--socket", "/tmp/no-such-service.sock"]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err
