"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_experiment_subcommands_registered(self):
        parser = build_parser()
        for experiment in ("e1", "e5", "e9", "all"):
            args = parser.parse_args([experiment])
            assert args.command == experiment

    def test_attack_arguments(self):
        args = build_parser().parse_args(
            ["attack", "silent", "--n", "20", "--t", "12"]
        )
        assert args.protocol == "silent"
        assert (args.n, args.t) == (20, 12)

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestMain:
    def test_experiment_runs(self, capsys):
        assert main(["e6"]) == 0
        out = capsys.readouterr().out
        assert "Theorem 5" in out

    def test_attack_cheater_exits_zero_on_break(self, capsys):
        assert main(["attack", "silent", "--n", "12", "--t", "8"]) == 0
        assert "VIOLATION" in capsys.readouterr().out

    def test_attack_correct_exits_zero_on_survival(self, capsys):
        assert main(["attack", "correct", "--n", "8", "--t", "4"]) == 0
        assert "no violation" in capsys.readouterr().out

    def test_attack_log_flag(self, capsys):
        assert (
            main(["attack", "silent", "--n", "12", "--t", "8", "--log"])
            == 0
        )
        assert "violation:" in capsys.readouterr().out

    def test_classify(self, capsys):
        assert main(["classify", "strong", "--n", "4", "--t", "2"]) == 0
        out = capsys.readouterr().out
        assert "CC=N" in out

    def test_attack_naive_flooding_expects_no_violation(self, capsys):
        assert (
            main(["attack", "naive-flooding", "--n", "12", "--t", "8"])
            == 0
        )
        assert "no violation" in capsys.readouterr().out


class TestWitnessFiles:
    def test_save_and_verify_roundtrip(self, tmp_path, capsys):
        path = str(tmp_path / "witness.json")
        assert (
            main(
                [
                    "attack",
                    "leader-echo",
                    "--n",
                    "12",
                    "--t",
                    "8",
                    "--save",
                    path,
                ]
            )
            == 0
        )
        assert (
            main(
                [
                    "verify-witness",
                    path,
                    "leader-echo",
                    "--n",
                    "12",
                    "--t",
                    "8",
                ]
            )
            == 0
        )
        assert "VERIFIED" in capsys.readouterr().out

    def test_verify_against_wrong_protocol_rejected(
        self, tmp_path, capsys
    ):
        path = str(tmp_path / "witness.json")
        main(
            [
                "attack",
                "leader-echo",
                "--n",
                "12",
                "--t",
                "8",
                "--save",
                path,
            ]
        )
        assert (
            main(
                ["verify-witness", path, "silent", "--n", "12", "--t", "8"]
            )
            == 1
        )
        assert "REJECTED" in capsys.readouterr().out
