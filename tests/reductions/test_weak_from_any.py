"""Tests for Algorithm 1: the zero-message reduction (§4.2)."""

import pytest

from repro.errors import TrivialProblemError, UnsolvableProblemError
from repro.protocols.byzantine_strategies import mute
from repro.protocols.dolev_strong import dolev_strong_spec
from repro.protocols.strong_consensus import (
    authenticated_strong_consensus_spec,
)
from repro.reductions.weak_from_any import (
    derive_plan,
    plan_from_executions,
    reduce_weak_consensus,
)
from repro.sim.adversary import ByzantineAdversary, CrashAdversary
from repro.validity.standard import (
    byzantine_broadcast_problem,
    constant_problem,
    strong_consensus_problem,
)

N, T = 5, 2


def decisions(execution):
    return set(execution.correct_decisions().values())


def always_zero_spec(n, t):
    """A degenerate 'algorithm' that decides 0 regardless of input."""
    from repro.protocols.base import ProtocolSpec
    from repro.sim.process import Process

    class AlwaysZero(Process):
        def outgoing(self, round_):
            return {}

        def deliver(self, round_, received):
            self.decide(0)

    return ProtocolSpec(
        name="always-zero",
        n=n,
        t=t,
        rounds=1,
        factory=lambda pid, v: AlwaysZero(pid, n, t, v),
    )


class TestPlanDerivation:
    def test_plan_from_strong_consensus(self):
        spec = authenticated_strong_consensus_spec(N, T)
        plan = derive_plan(spec, strong_consensus_problem(N, T))
        assert plan.v0 != plan.v1
        assert plan.proposals_for_zero == (0,) * N

    def test_plan_from_broadcast(self):
        spec = dolev_strong_spec(N, T)
        plan = derive_plan(spec, byzantine_broadcast_problem(N, T))
        assert plan.v0 != plan.v1

    def test_trivial_problem_rejected(self):
        """Algorithm 1 is undefined for trivial problems — there is no
        configuration excluding the fault-free decision."""
        spec = always_zero_spec(N, T)
        with pytest.raises(TrivialProblemError, match="trivial"):
            derive_plan(spec, constant_problem(N, T, value=0))

    def test_mismatched_parameters_rejected(self):
        spec = dolev_strong_spec(N, T)
        with pytest.raises(ValueError, match="problem for"):
            derive_plan(spec, byzantine_broadcast_problem(4, 1))

    def test_plan_from_executions_requires_difference(self):
        spec = dolev_strong_spec(N, T)
        with pytest.raises(UnsolvableProblemError, match="same value"):
            plan_from_executions(
                spec, ["v", 0, 0, 0, 0], ["v", 1, 1, 1, 1]
            )


class TestReductionCorrectness:
    @pytest.fixture
    def weak(self):
        spec = authenticated_strong_consensus_spec(N, T)
        return spec, reduce_weak_consensus(
            spec, strong_consensus_problem(N, T)
        )

    def test_weak_validity(self, weak):
        _, reduced = weak
        assert decisions(reduced.run_uniform(0)) == {0}
        assert decisions(reduced.run_uniform(1)) == {1}

    def test_agreement_under_byzantine_faults(self, weak):
        _, reduced = weak
        adversary = ByzantineAdversary({3, 4}, {3: mute(), 4: mute()})
        for bit in (0, 1):
            execution = reduced.run_uniform(bit, adversary)
            agreed = decisions(execution)
            assert len(agreed) == 1
            assert agreed <= {0, 1}

    def test_agreement_under_crash_faults(self, weak):
        _, reduced = weak
        execution = reduced.run_uniform(
            0, CrashAdversary({1: 2, 2: 1})
        )
        assert len(decisions(execution)) == 1

    def test_zero_message_overhead(self, weak):
        """The reduction's whole point: identical message complexity."""
        inner, reduced = weak
        for bit in (0, 1):
            outer_execution = reduced.run_uniform(bit)
            plan_proposals = (
                [0] * N if bit == 0 else None
            )
            # Compare against the inner algorithm run on the proposals
            # the reduction feeds it.
            machines = [reduced.factory(pid, bit) for pid in range(N)]
            inner_proposals = [
                machine.inner.proposal for machine in machines
            ]
            inner_execution = inner.run(inner_proposals)
            assert (
                outer_execution.message_complexity()
                == inner_execution.message_complexity()
            )

    def test_same_rounds_and_metadata(self, weak):
        inner, reduced = weak
        assert reduced.rounds == inner.rounds
        assert reduced.authenticated == inner.authenticated
        assert inner.name in reduced.name


class TestReductionFromBroadcast:
    def test_broadcast_anchor(self):
        spec = dolev_strong_spec(N, T)
        reduced = reduce_weak_consensus(
            spec, byzantine_broadcast_problem(N, T)
        )
        assert decisions(reduced.run_uniform(0)) == {0}
        assert decisions(reduced.run_uniform(1)) == {1}

    def test_lemma7_guard_fires_for_non_solutions(self):
        """Anchoring the reduction on an 'algorithm' that decides the
        same value under c_0 and c_1 trips the Lemma-7 consistency
        check: such an algorithm cannot solve the non-trivial problem."""
        with pytest.raises(UnsolvableProblemError, match="Lemma 7"):
            reduce_weak_consensus(
                always_zero_spec(N, T),
                byzantine_broadcast_problem(N, T),
            )

    def test_disagreeing_anchor_rejected(self):
        """An anchor whose fault-free run disagrees (the silent cheater
        under mixed proposals) is rejected while deriving the plan."""
        from repro.protocols.subquadratic import silent_cheater_spec
        from repro.validity.standard import strong_consensus_problem

        with pytest.raises(UnsolvableProblemError, match="disagrees"):
            reduce_weak_consensus(
                silent_cheater_spec(N, T),
                strong_consensus_problem(N, T),
            )


class TestUnauthenticatedBranch:
    def test_weak_consensus_from_phase_king(self):
        """Theorem 3's unauthenticated face: anchor Algorithm 1 on the
        (unauthenticated, n > 3t) King algorithm."""
        from repro.protocols.phase_king import phase_king_spec
        from repro.validity.standard import strong_consensus_problem

        n, t = 7, 2
        inner = phase_king_spec(n, t)
        reduced = reduce_weak_consensus(
            inner, strong_consensus_problem(n, t)
        )
        assert not reduced.authenticated
        assert decisions(reduced.run_uniform(0)) == {0}
        assert decisions(reduced.run_uniform(1)) == {1}
        # Zero-message overhead on the unauthenticated path too.
        assert (
            reduced.run_uniform(0).message_complexity()
            == inner.run_uniform(0).message_complexity()
        )

    def test_unauthenticated_reduction_survives_the_driver(self):
        from repro.lowerbound.driver import attack_weak_consensus
        from repro.protocols.phase_king import phase_king_spec
        from repro.validity.standard import strong_consensus_problem

        n, t = 13, 4
        inner = phase_king_spec(n, t)
        reduced = reduce_weak_consensus(
            inner, strong_consensus_problem(n, t)
        )
        outcome = attack_weak_consensus(reduced)
        assert not outcome.found_violation


class TestTheorem3Composition:
    def test_reduced_weak_consensus_is_attackable_object(self):
        """The composition that proves Theorem 3: the reduction output is
        a weak consensus algorithm the Theorem-2 driver accepts."""
        from repro.lowerbound.driver import attack_weak_consensus

        spec = authenticated_strong_consensus_spec(6, 2)
        reduced = reduce_weak_consensus(
            spec, strong_consensus_problem(6, 2)
        )
        outcome = attack_weak_consensus(reduced)
        # A correct algorithm: the pipeline must NOT find a violation.
        assert not outcome.found_violation
