"""Tests for the broadcast-from-consensus composition (§6, [17, 82])."""

import pytest

from repro.protocols.byzantine_strategies import mute, two_faced
from repro.protocols.phase_king import phase_king_spec
from repro.protocols.strong_consensus import (
    authenticated_strong_consensus_spec,
)
from repro.reductions.bb_from_consensus import (
    NO_SENDER_VALUE,
    broadcast_from_consensus,
)
from repro.sim.adversary import ByzantineAdversary, CrashAdversary


def decisions(execution):
    return set(execution.correct_decisions().values())


def unauth_bb(n=7, t=2, sender=0):
    return broadcast_from_consensus(phase_king_spec, n, t, sender)


class TestSenderValidity:
    def test_correct_sender_value_decided(self):
        spec = unauth_bb()
        execution = spec.run(["v", 0, 0, 0, 0, 0, 0])
        assert decisions(execution) == {"v"}

    def test_non_default_sender(self):
        spec = unauth_bb(sender=3)
        execution = spec.run([0, 0, 0, "w", 0, 0, 0])
        assert decisions(execution) == {"w"}

    def test_sender_validity_with_other_byzantine(self):
        spec = unauth_bb()
        adversary = ByzantineAdversary(
            {4, 5}, {4: two_faced(0, 1), 5: mute()}
        )
        execution = spec.run(["v", 0, 0, 0, 0, 0, 0], adversary)
        assert decisions(execution) == {"v"}


class TestAgreement:
    def test_two_faced_sender_cannot_split(self):
        spec = unauth_bb()
        adversary = ByzantineAdversary({0}, {0: two_faced("a", "b")})
        execution = spec.run(["a", 0, 0, 0, 0, 0, 0], adversary)
        agreed = decisions(execution)
        assert len(agreed) == 1

    def test_silent_sender_common_default(self):
        spec = unauth_bb()
        adversary = ByzantineAdversary({0}, {0: mute()})
        execution = spec.run(["v", 0, 0, 0, 0, 0, 0], adversary)
        assert decisions(execution) == {NO_SENDER_VALUE}

    def test_crashing_sender_mid_round(self):
        from repro.sim.adversary import (
            OmissionSchedule,
            ScheduledOmissionAdversary,
        )

        spec = unauth_bb()
        adversary = ScheduledOmissionAdversary(
            {0},
            OmissionSchedule(
                send_drops=lambda m: m.round == 1 and m.receiver >= 4,
                receive_drops=lambda m: False,
            ),
        )
        execution = spec.run(["v", 0, 0, 0, 0, 0, 0], adversary)
        assert len(decisions(execution)) == 1


class TestCostAndComposition:
    def test_o_n_additional_messages(self):
        """The [17, 82] remark: broadcast = consensus + O(n) messages."""
        n, t = 7, 2
        bb = unauth_bb(n, t)
        consensus = phase_king_spec(n, t)
        bb_cost = bb.run(["v", 0, 0, 0, 0, 0, 0]).message_complexity()
        consensus_cost = consensus.run_uniform(
            "v"
        ).message_complexity()
        assert bb_cost == consensus_cost + (n - 1)

    def test_resilience_inherited(self):
        spec = unauth_bb(n=6, t=2)  # phase king needs n > 3t
        with pytest.raises(ValueError, match="n > 3t"):
            spec.run_uniform(0)

    def test_authenticated_inner_consensus(self):
        """Composing with the IC-based consensus gives n > 2t broadcast."""
        spec = broadcast_from_consensus(
            authenticated_strong_consensus_spec, 5, 2
        )
        execution = spec.run(
            ["v", 0, 0, 0, 0], CrashAdversary({3: 1, 4: 2})
        )
        assert decisions(execution) == {"v"}
        assert spec.authenticated

    def test_rounds_are_consensus_plus_one(self):
        assert unauth_bb(7, 2).rounds == phase_king_spec(7, 2).rounds + 1
