"""Tests for Algorithm 2: solving any CC problem over IC (Lemma 9)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import UnsolvableProblemError
from repro.protocols.byzantine_strategies import garbage, mute, two_faced
from repro.reductions.any_from_ic import solve_via_ic
from repro.sim.adversary import ByzantineAdversary, CrashAdversary
from repro.validity.input_config import InputConfig
from repro.validity.standard import (
    byzantine_broadcast_problem,
    correct_proposal_problem,
    strong_consensus_problem,
    weak_consensus_problem,
)


def decisions(execution):
    return set(execution.correct_decisions().values())


def input_conf_of(execution):
    """The §4.1 correspondence: proposals of the correct processes."""
    return InputConfig.from_mapping(
        execution.n,
        execution.t,
        {
            pid: execution.proposals()[pid]
            for pid in execution.correct
        },
    )


class TestGuards:
    def test_cc_failure_rejected(self):
        with pytest.raises(UnsolvableProblemError, match="containment"):
            solve_via_ic(
                strong_consensus_problem(4, 2), authenticated=True
            )

    def test_unauthenticated_needs_n_over_3t(self):
        with pytest.raises(UnsolvableProblemError, match="n > 3t"):
            solve_via_ic(
                weak_consensus_problem(6, 2), authenticated=False
            )


class TestFaultFree:
    @pytest.mark.parametrize(
        "builder",
        [
            weak_consensus_problem,
            strong_consensus_problem,
            byzantine_broadcast_problem,
            correct_proposal_problem,
        ],
    )
    def test_termination_agreement_validity(self, builder):
        problem = builder(4, 1)
        spec = solve_via_ic(problem, authenticated=True)
        execution = spec.run([0, 1, 1, 0])
        agreed = decisions(execution)
        assert len(agreed) == 1
        decided = next(iter(agreed))
        assert problem.check_decision(input_conf_of(execution), decided)

    def test_unauthenticated_branch(self):
        problem = strong_consensus_problem(4, 1)
        spec = solve_via_ic(problem, authenticated=False)
        execution = spec.run([1, 1, 1, 1])
        assert decisions(execution) == {1}


@st.composite
def random_solvable_problems(draw):
    """Random binary problems on (n=4, t=1) that satisfy CC *by
    construction*.

    Draw a random choice function γ : I → {0, 1} and define
    ``val(c') = {γ(c) : c ⊇ c'}`` — the γ-values over the up-set of each
    configuration.  Then for every ``c`` and every ``c' ∈ Cnt(c)``,
    ``γ(c) ∈ val(c')`` by definition, so γ itself witnesses the
    containment condition; yet the family ranges over genuinely varied
    validity structures (weak-consensus-like shapes emerge when γ tracks
    unanimity).
    """
    from repro.validity.input_config import enumerate_input_configs
    from repro.validity.property import problem_from_table

    n, t = 4, 1
    configs = list(enumerate_input_configs(n, t, (0, 1)))
    gamma = {
        config: draw(st.integers(0, 1)) for config in configs
    }
    table = {
        lower: frozenset(
            gamma[upper]
            for upper in configs
            if upper.contains(lower)
        )
        for lower in configs
    }
    return problem_from_table("random-γ", n, t, (0, 1), (0, 1), table)


class TestTheorem4SufficiencyOnRandomProblems:
    """Lemma 9 is universally quantified over problems; test it that way."""

    @settings(max_examples=20, deadline=None)
    @given(
        problem=random_solvable_problems(),
        proposals=st.lists(st.integers(0, 1), min_size=4, max_size=4),
        corrupt=st.integers(0, 3),
    )
    def test_algorithm2_solves_random_cc_problems(
        self, problem, proposals, corrupt
    ):
        from repro.solvability.cc import satisfies_cc

        assert satisfies_cc(problem)  # guaranteed by the construction
        spec = solve_via_ic(problem, authenticated=True)
        adversary = ByzantineAdversary({corrupt}, {corrupt: mute()})
        execution = spec.run(proposals, adversary)
        agreed = decisions(execution)
        assert len(agreed) == 1
        decided = next(iter(agreed))
        assert problem.check_decision(
            input_conf_of(execution), decided
        )


class TestUnderFaults:
    def test_crash_faults(self):
        problem = strong_consensus_problem(4, 1)
        spec = solve_via_ic(problem, authenticated=True)
        execution = spec.run([1, 1, 1, 1], CrashAdversary({2: 1}))
        agreed = decisions(execution)
        assert len(agreed) == 1
        assert problem.check_decision(
            input_conf_of(execution), next(iter(agreed))
        )

    def test_byzantine_garbage_sanitized(self):
        """Byzantine slots can carry junk outside V_I; the sanitizer maps
        them back before Γ, preserving validity."""
        problem = strong_consensus_problem(4, 1)
        spec = solve_via_ic(problem, authenticated=True)
        adversary = ByzantineAdversary({3}, {3: garbage()})
        execution = spec.run([1, 1, 1, 0], adversary)
        agreed = decisions(execution)
        assert agreed == {1}

    def test_dishonest_majority_authenticated(self):
        """Lemma 9 at full Dolev–Strong resilience: t = n - 2."""
        problem = weak_consensus_problem(4, 2)
        spec = solve_via_ic(problem, authenticated=True)
        adversary = ByzantineAdversary({2, 3}, {2: mute(), 3: mute()})
        execution = spec.run([0, 0, 0, 0], adversary)
        agreed = decisions(execution)
        assert len(agreed) == 1
        assert problem.check_decision(
            input_conf_of(execution), next(iter(agreed))
        )

    @settings(max_examples=15, deadline=None)
    @given(
        proposals=st.lists(st.integers(0, 1), min_size=4, max_size=4),
        corrupt=st.integers(0, 3),
        pick=st.sampled_from(["mute", "garbage", "two-faced"]),
        authenticated=st.booleans(),
    )
    def test_validity_property_under_attack(
        self, proposals, corrupt, pick, authenticated
    ):
        """Property (the heart of Lemma 9): every decision the reduction
        reaches satisfies the problem's validity for the *actual* input
        configuration, under arbitrary single-process Byzantine attack."""
        strategies = {
            "mute": mute(),
            "garbage": garbage(),
            "two-faced": two_faced(0, 1),
        }
        problem = strong_consensus_problem(4, 1)
        spec = solve_via_ic(problem, authenticated=authenticated)
        adversary = ByzantineAdversary(
            {corrupt}, {corrupt: strategies[pick]}
        )
        execution = spec.run(proposals, adversary)
        agreed = decisions(execution)
        assert len(agreed) == 1
        decided = next(iter(agreed))
        assert decided is not None
        assert problem.check_decision(input_conf_of(execution), decided)
