"""Tests for the IC-from-broadcasts composition (§6)."""

from repro.reductions.ic_from_bb import (
    amortization_ratio,
    ic_from_broadcasts,
    single_broadcast_baseline,
)


class TestComposition:
    def test_composed_ic_decides_full_vector(self):
        spec = ic_from_broadcasts(4, 1)
        execution = spec.run(["a", "b", "c", "d"])
        assert execution.decision(0) == ("a", "b", "c", "d")

    def test_names_the_reduction(self):
        assert ic_from_broadcasts(4, 1).name == "ic-from-n-broadcasts"

    def test_single_baseline_is_dolev_strong(self):
        spec = single_broadcast_baseline(4, 1, sender=2)
        execution = spec.run([0, 0, "v", 0])
        assert execution.decision(0) == "v"


class TestAmortization:
    def test_ratio_below_n(self):
        """Multiplexing n broadcasts costs less than n times one
        broadcast (the [88]/[97] amortization theme)."""
        n, t = 5, 1
        ic_execution = ic_from_broadcasts(n, t).run(["v"] * n)
        bb_execution = single_broadcast_baseline(n, t).run(["v"] * n)
        ratio = amortization_ratio(ic_execution, bb_execution)
        assert 1.0 <= ratio < n

    def test_zero_baseline_is_infinite(self):
        n, t = 5, 1
        ic_execution = ic_from_broadcasts(n, t).run(["v"] * n)
        silent = ic_from_broadcasts(n, t).run(["v"] * n, rounds=1)
        class _Zero:
            def message_complexity(self):
                return 0

        assert amortization_ratio(ic_execution, _Zero()) == float(
            "inf"
        )
