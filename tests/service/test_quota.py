"""Tests for per-tenant admission control (quota + rate limit)."""

from repro.service.quota import QuotaPolicy


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def _policy(**kwargs):
    clock = FakeClock()
    defaults = dict(max_pending=4, rate=1.0, burst=2, clock=clock)
    defaults.update(kwargs)
    return QuotaPolicy(**defaults), clock


class TestPendingQuota:
    def test_under_the_cap_is_admitted(self):
        policy, _ = _policy()
        assert policy.admit("alice", pending=3).allowed

    def test_at_the_cap_is_rejected(self):
        policy, _ = _policy()
        decision = policy.admit("alice", pending=4)
        assert not decision.allowed
        assert decision.kind == "quota"
        assert (
            decision.reason
            == "quota: tenant alice has 4 pending jobs (max 4)"
        )

    def test_quota_is_per_tenant(self):
        policy, _ = _policy()
        assert not policy.admit("alice", pending=4).allowed
        assert policy.admit("bob", pending=0).allowed


class TestRateLimit:
    def test_burst_then_rejection(self):
        policy, _ = _policy(burst=2)
        assert policy.admit("alice", pending=0).allowed
        assert policy.admit("alice", pending=0).allowed
        decision = policy.admit("alice", pending=0)
        assert not decision.allowed
        assert decision.kind == "rate"
        assert (
            decision.reason
            == "rate limit: tenant alice exceeded 1 jobs/s (burst 2)"
        )

    def test_tokens_refill_over_time(self):
        policy, clock = _policy(rate=2.0, burst=1)
        assert policy.admit("alice", pending=0).allowed
        assert not policy.admit("alice", pending=0).allowed
        clock.now = 0.5  # 0.5 s at 2 tokens/s: exactly one token back
        assert policy.admit("alice", pending=0).allowed

    def test_refill_caps_at_burst(self):
        policy, clock = _policy(rate=100.0, burst=2)
        clock.now = 1000.0  # a long idle cannot bank more than burst
        assert policy.admit("alice", pending=0).allowed
        assert policy.admit("alice", pending=0).allowed
        assert not policy.admit("alice", pending=0).allowed

    def test_buckets_are_per_tenant(self):
        policy, _ = _policy(burst=1)
        assert policy.admit("alice", pending=0).allowed
        assert not policy.admit("alice", pending=0).allowed
        assert policy.admit("bob", pending=0).allowed

    def test_rejection_spends_no_token(self):
        policy, clock = _policy(rate=1.0, burst=1)
        assert policy.admit("alice", pending=0).allowed
        for _ in range(5):  # hammering while drained stays free
            assert not policy.admit("alice", pending=0).allowed
        clock.now = 1.0
        assert policy.admit("alice", pending=0).allowed

    def test_pending_gate_checked_before_rate(self):
        policy, _ = _policy(max_pending=1, burst=1)
        assert policy.admit("alice", pending=1).kind == "quota"
        # The quota rejection did not touch the bucket.
        assert policy.admit("alice", pending=0).allowed
