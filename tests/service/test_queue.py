"""Tests for the priority queue and the world-log recovery fold."""

from repro.service.queue import JobEntry, JobQueue, recover_jobs
from repro.worldlog.record import Record


def _entry(key, priority=0, tenant="t"):
    return JobEntry(key=key, tenant=tenant, priority=priority, job={})


def _record(tick, kind, payload):
    return Record(
        tick=tick, kind=kind, payload=payload, run_id="r", worker_id=1
    )


def _submitted(tick, key, priority=0):
    return _record(
        tick,
        "job.submitted",
        {"key": key, "tenant": "t", "priority": priority, "job": {}},
    )


class TestJobQueue:
    def test_higher_priority_pops_first(self):
        queue = JobQueue()
        queue.push(_entry("low", priority=0))
        queue.push(_entry("high", priority=9))
        assert queue.pop().key == "high"
        assert queue.pop().key == "low"

    def test_equal_priority_is_fifo(self):
        queue = JobQueue()
        for key in ("first", "second", "third"):
            queue.push(_entry(key, priority=5))
        assert [queue.pop().key for _ in range(3)] == [
            "first",
            "second",
            "third",
        ]

    def test_pop_marks_running(self):
        queue = JobQueue()
        queue.push(_entry("job"))
        assert queue.pop().state == "running"

    def test_pop_on_empty_returns_none(self):
        assert JobQueue().pop() is None

    def test_len_tracks_pushes_and_pops(self):
        queue = JobQueue()
        queue.push(_entry("a"))
        queue.push(_entry("b"))
        assert len(queue) == 2
        queue.pop()
        assert len(queue) == 1


class TestRecoverJobs:
    def test_never_started_job_is_requeued(self):
        pending, terminals = recover_jobs([_submitted(1, "aa")])
        assert [entry.key for entry in pending] == ["aa"]
        assert terminals == {}

    def test_died_mid_run_job_is_requeued(self):
        # job.start with no terminal record: the signature of a worker
        # killed mid-job.  The attempt is lost; the job is not.
        pending, terminals = recover_jobs(
            [
                _submitted(1, "aa"),
                _record(2, "job.start", {"key": "aa"}),
            ]
        )
        assert [entry.key for entry in pending] == ["aa"]
        assert terminals == {}

    def test_terminal_jobs_are_not_requeued(self):
        result = _record(3, "job.result", {"key": "aa", "result": {}})
        pending, terminals = recover_jobs(
            [
                _submitted(1, "aa"),
                _record(2, "job.start", {"key": "aa"}),
                result,
            ]
        )
        assert pending == []
        assert terminals == {"aa": result}

    def test_failed_jobs_count_as_terminal(self):
        error = _record(
            2,
            "job.error",
            {"key": "aa", "error_kind": "exception", "message": "boom"},
        )
        pending, terminals = recover_jobs([_submitted(1, "aa"), error])
        assert pending == []
        assert terminals["aa"].kind == "job.error"

    def test_recovery_preserves_acceptance_order_and_metadata(self):
        pending, _ = recover_jobs(
            [
                _submitted(1, "aa", priority=1),
                _record(2, "job.result", {"key": "aa", "result": {}}),
                _submitted(3, "bb", priority=7),
                _submitted(4, "cc", priority=0),
            ]
        )
        assert [entry.key for entry in pending] == ["bb", "cc"]
        assert pending[0].priority == 7
        assert pending[0].tenant == "t"
