"""Tests for the service wire protocol and the idempotent job key."""

import pytest

from repro.parallel.jobs import AttackJob, ClassifyJob, MeasureJob
from repro.service.protocol import (
    OPS,
    ProtocolError,
    decode_frame,
    encode_frame,
    error_frame,
    job_key,
    parse_request,
)
from repro.worldlog.codec import encode_job


class TestJobKey:
    def test_same_spec_same_key(self):
        a = job_key(encode_job(AttackJob("silent", 12, 8)))
        b = job_key(encode_job(AttackJob("silent", 12, 8)))
        assert a == b

    def test_key_is_16_hex_digits(self):
        key = job_key(encode_job(MeasureJob("weak-consensus", 8, 4)))
        assert len(key) == 16
        int(key, 16)  # hex or raise

    def test_options_change_the_key(self):
        plain = job_key(encode_job(AttackJob("silent", 12, 8)))
        certified = job_key(
            encode_job(AttackJob("silent", 12, 8, certify=True))
        )
        assert plain != certified

    def test_kinds_never_collide(self):
        keys = {
            job_key(encode_job(job))
            for job in (
                AttackJob("silent", 8, 4),
                MeasureJob("silent", 8, 4),
                ClassifyJob("weak", 8, 4),
            )
        }
        assert len(keys) == 3


class TestFrames:
    def test_round_trip(self):
        frame = {"op": "submit", "tenant": "alice", "priority": 3}
        assert decode_frame(encode_frame(frame)) == frame

    def test_one_frame_per_line(self):
        assert encode_frame({"op": "ping"}).endswith(b"\n")
        assert b"\n" not in encode_frame({"op": "ping"})[:-1]

    def test_malformed_line_raises(self):
        with pytest.raises(ProtocolError, match="malformed frame"):
            decode_frame(b"not json at all\n")

    def test_non_object_raises(self):
        with pytest.raises(ProtocolError, match="not an object"):
            decode_frame(b"[1, 2, 3]\n")

    def test_error_frame_shape(self):
        frame = error_frame("quota", "too many jobs")
        assert frame["ok"] is False
        assert frame["error"] == {
            "kind": "quota",
            "message": "too many jobs",
        }


class TestParseRequest:
    @pytest.mark.parametrize("op", OPS)
    def test_every_documented_op_parses(self, op):
        assert parse_request({"op": op}) == op

    def test_unknown_op_raises(self):
        with pytest.raises(ProtocolError, match="unknown op 'nope'"):
            parse_request({"op": "nope"})

    def test_missing_op_raises(self):
        with pytest.raises(ProtocolError, match="unknown op None"):
            parse_request({})
