"""Job-server tests: lifecycle, idempotency, quotas, crash-resume.

The crash test is the service's acceptance gate: a ``repro serve``
process is SIGKILLed after at least one terminal record hit the disk
but with jobs still queued; a fresh server on the same log must finish
every accepted job with values, certificates and ledger order
signatures bit-identical to an uninterrupted run's — and must write
exactly one terminal record per accepted key.

Sockets live under a short ``/tmp`` directory, not ``tmp_path``: unix
socket paths are capped around 100 bytes and pytest's tmp dirs blow
through that.
"""

import os
import shutil
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time

import pytest

from repro.obs.ledger import order_signature
from repro.parallel.jobs import AttackJob, ClassifyJob, MeasureJob
from repro.service import (
    JobServer,
    QuotaPolicy,
    ServiceClient,
    ServiceError,
)
from repro.worldlog.codec import decode_job_result, encode_job
from repro.worldlog.store import read_worldlog

# One certified+ledgered attack (certificate bytes and event order must
# survive the crash), one plain attack, one classify, and a slow
# measure tail that keeps the queue non-empty at kill time.
def _matrix():
    return [
        AttackJob("silent", 8, 4, certify=True, ledger=True),
        AttackJob("ring-token", 12, 8),
        ClassifyJob("weak", 5, 1),
        MeasureJob("weak-consensus", 56, 52),
    ]


@pytest.fixture
def paths():
    scratch = tempfile.mkdtemp(prefix="rsvc", dir="/tmp")
    try:
        yield (
            os.path.join(scratch, "s.sock"),
            os.path.join(scratch, "log.worldlog"),
        )
    finally:
        shutil.rmtree(scratch, ignore_errors=True)


def _start(log_path, sock_path, **kwargs):
    server = JobServer(
        log_path=log_path, socket_path=sock_path, **kwargs
    )
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    assert server.ready.wait(timeout=30), "server never became ready"
    return server, thread


def _stop(server, thread):
    server.request_shutdown()
    thread.join(timeout=60)
    assert not thread.is_alive(), "server did not shut down"


def _drain(client, keys):
    """Watch every key to its terminal frame."""
    for key in keys:
        frames = list(client.watch(key))
        assert frames[-1].get("final"), f"{key} never went terminal"


def _terminals(log_path):
    """key -> decoded JobResult (or error payload) per terminal record."""
    results = {}
    errors = {}
    for record in read_worldlog(log_path):
        if record.kind == "job.result":
            results[record.payload["key"]] = decode_job_result(
                record.payload["result"]
            )
        elif record.kind == "job.error":
            errors[record.payload["key"]] = record.payload
    return results, errors


def _submit_matrix(client, tenant="suite"):
    return [
        client.submit(encode_job(job), tenant=tenant)["key"]
        for job in _matrix()
    ]


class TestLifecycle:
    def test_submit_runs_and_records_exactly_one_terminal(self, paths):
        sock, log = paths
        server, thread = _start(log, sock)
        client = ServiceClient(sock, timeout=120)
        keys = _submit_matrix(client)
        assert len(set(keys)) == len(keys)
        _drain(client, keys)
        _stop(server, thread)
        records = read_worldlog(log)
        terminal_keys = [
            record.payload["key"]
            for record in records
            if record.kind in ("job.result", "job.error")
        ]
        assert sorted(terminal_keys) == sorted(keys)

    def test_submit_wait_streams_to_the_terminal_frame(self, paths):
        sock, log = paths
        server, thread = _start(log, sock)
        client = ServiceClient(sock, timeout=120)
        frames = list(
            client.submit_wait(encode_job(ClassifyJob("weak", 5, 1)))
        )
        _stop(server, thread)
        assert frames[0]["state"] == "queued"
        assert frames[-1]["final"] is True
        assert frames[-1]["record"]["kind"] == "job.result"

    def test_job_records_carry_the_job_label_cell_id(self, paths):
        sock, log = paths
        server, thread = _start(log, sock)
        client = ServiceClient(sock, timeout=120)
        key = client.submit(
            encode_job(ClassifyJob("weak", 5, 1))
        )["key"]
        _drain(client, [key])
        _stop(server, thread)
        cell_ids = {
            record.cell_id
            for record in read_worldlog(log)
            if record.kind.startswith("job.")
        }
        assert cell_ids == {f"job/classify/weak/n5/t1#{key[:8]}"}

    def test_priorities_order_the_queue(self, paths):
        sock, log = paths
        server, thread = _start(log, sock)
        client = ServiceClient(sock, timeout=120)
        # Occupy the single worker, then queue low before high.
        blocker = client.submit(
            encode_job(MeasureJob("weak-consensus", 40, 36))
        )["key"]
        low = client.submit(
            encode_job(ClassifyJob("weak", 5, 1)), priority=0
        )["key"]
        high = client.submit(
            encode_job(ClassifyJob("strong", 5, 1)), priority=9
        )["key"]
        _drain(client, [blocker, low, high])
        _stop(server, thread)
        starts = [
            record.payload["key"]
            for record in read_worldlog(log)
            if record.kind == "job.start"
        ]
        assert starts == [blocker, high, low]

    def test_failed_job_writes_a_structured_error_record(self, paths):
        sock, log = paths
        server, thread = _start(log, sock)
        client = ServiceClient(sock, timeout=120)
        # The builder name passes decode but fails at run time.
        key = client.submit(
            encode_job(AttackJob("silent", 8, 4))
            | {"builder": "no-such-builder"}
        )["key"]
        frames = list(client.watch(key))
        _stop(server, thread)
        record = frames[-1]["record"]
        assert record["kind"] == "job.error"
        assert record["payload"]["error_kind"] == "exception"
        assert "no-such-builder" in record["payload"]["message"]

    def test_watch_unknown_key_is_rejected(self, paths):
        sock, log = paths
        server, thread = _start(log, sock)
        client = ServiceClient(sock, timeout=30)
        with pytest.raises(ServiceError) as excinfo:
            list(client.watch("feedfacedeadbeef"))
        _stop(server, thread)
        assert excinfo.value.kind == "unknown-key"

    def test_garbage_frame_gets_a_protocol_error(self, paths):
        sock, log = paths
        server, thread = _start(log, sock)
        with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as raw:
            raw.settimeout(30)
            raw.connect(sock)
            raw.sendall(b"definitely not json\n")
            response = raw.makefile("rb").readline()
        _stop(server, thread)
        assert b'"kind": "protocol"' in response


class TestIdempotency:
    def test_resubmitting_a_done_key_runs_nothing(self, paths):
        sock, log = paths
        server, thread = _start(log, sock)
        client = ServiceClient(sock, timeout=120)
        spec = encode_job(AttackJob("silent", 8, 4))
        key = client.submit(spec)["key"]
        _drain(client, [key])
        ticks_before = len(read_worldlog(log))
        response = client.submit(spec)
        assert response == {
            "ok": True,
            "key": key,
            "state": "done",
            "cached": True,
        }
        _stop(server, thread)
        # Zero new records: no re-acceptance, no re-execution.
        assert len(read_worldlog(log)) == ticks_before

    def test_resubmitting_an_in_flight_key_joins_it(self, paths):
        sock, log = paths
        server, thread = _start(log, sock)
        client = ServiceClient(sock, timeout=120)
        spec = encode_job(MeasureJob("weak-consensus", 40, 36))
        key = client.submit(spec)["key"]
        joined = client.submit(spec)
        assert joined["key"] == key
        assert joined["cached"] is True
        assert joined["state"] in ("queued", "running")
        _drain(client, [key])
        _stop(server, thread)
        submitted = [
            record
            for record in read_worldlog(log)
            if record.kind == "job.submitted"
        ]
        assert len(submitted) == 1

    def test_idempotent_resubmission_is_not_rate_charged(self, paths):
        sock, log = paths
        server, thread = _start(
            log, sock, quota=QuotaPolicy(rate=0.001, burst=1)
        )
        client = ServiceClient(sock, timeout=120)
        spec = encode_job(ClassifyJob("weak", 5, 1))
        key = client.submit(spec)["key"]  # spends the only token
        _drain(client, [key])
        for _ in range(3):  # replays bypass admission entirely
            assert client.submit(spec)["cached"] is True
        _stop(server, thread)


class TestQuotas:
    def test_pending_quota_rejects_with_reason(self, paths):
        sock, log = paths
        server, thread = _start(
            log,
            sock,
            quota=QuotaPolicy(max_pending=1, rate=1000.0, burst=1000),
        )
        client = ServiceClient(sock, timeout=120)
        first = client.submit(
            encode_job(MeasureJob("weak-consensus", 40, 36)),
            tenant="alice",
        )["key"]
        with pytest.raises(ServiceError) as excinfo:
            client.submit(
                encode_job(ClassifyJob("weak", 5, 1)), tenant="alice"
            )
        assert excinfo.value.kind == "quota"
        assert "tenant alice has 1 pending jobs (max 1)" in str(
            excinfo.value
        )
        # Another tenant is unaffected.
        other = client.submit(
            encode_job(ClassifyJob("weak", 5, 1)), tenant="bob"
        )["key"]
        _drain(client, [first, other])
        _stop(server, thread)

    def test_rate_limit_rejects_with_reason(self, paths):
        sock, log = paths
        server, thread = _start(
            log, sock, quota=QuotaPolicy(rate=0.001, burst=1)
        )
        client = ServiceClient(sock, timeout=120)
        key = client.submit(
            encode_job(ClassifyJob("weak", 5, 1)), tenant="alice"
        )["key"]
        with pytest.raises(ServiceError) as excinfo:
            client.submit(
                encode_job(ClassifyJob("strong", 5, 1)), tenant="alice"
            )
        assert excinfo.value.kind == "rate"
        assert "rate limit: tenant alice" in str(excinfo.value)
        _drain(client, [key])
        _stop(server, thread)

    def test_rejected_submission_records_only_the_rejection(self, paths):
        """A rejection enters no queue but is recorded for accounting.

        The ``job.rejected`` record is pure observability (``repro log
        stats`` counts rejections per tenant): no ``job.submitted``, no
        quota charge, invisible to recovery and the jobs manifest.
        """
        from repro.worldlog.replay import log_stats
        from repro.worldlog.views import jobs_manifest

        sock, log = paths
        server, thread = _start(
            log, sock, quota=QuotaPolicy(max_pending=0)
        )
        client = ServiceClient(sock, timeout=30)
        with pytest.raises(ServiceError):
            client.submit(encode_job(ClassifyJob("weak", 5, 1)))
        _stop(server, thread)
        records = read_worldlog(log)
        assert [r.kind for r in records] == ["log.open", "job.rejected"]
        rejection = records[-1].payload
        assert rejection["tenant"] == "default"
        assert rejection["kind"] == "quota"
        # Invisible to the queue views, visible to post-hoc stats.
        assert jobs_manifest(records)["jobs"] == []
        stats = log_stats(records)
        assert stats["tenants"]["default"]["rejected"] == {"quota": 1}


def _serve_subprocess(log_path, sock_path):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, ["src", env.get("PYTHONPATH")])
    )
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--socket",
            sock_path,
            "--log",
            log_path,
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def _wait_for_socket(sock_path, child, timeout=60):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        assert child.poll() is None, "serve subprocess died early"
        if os.path.exists(sock_path):
            try:
                ServiceClient(sock_path, timeout=5).ping()
                return
            except OSError:
                pass
        time.sleep(0.05)
    pytest.fail("serve subprocess never started listening")


class TestCrashResume:
    def test_sigkilled_server_resumes_bit_identical(self, paths):
        sock, log = paths
        child = _serve_subprocess(log, sock)
        try:
            _wait_for_socket(sock, child)
            client = ServiceClient(sock, timeout=30)
            keys = _submit_matrix(client)
            # Wait for the first terminal record, then kill -9.
            deadline = time.monotonic() + 120
            while time.monotonic() < deadline:
                with open(log, encoding="utf-8") as handle:
                    if '"kind": "job.result"' in handle.read():
                        break
                time.sleep(0.01)
            else:  # pragma: no cover - diagnostics for a hung child
                pytest.fail("no terminal record appeared in 120s")
        finally:
            if child.poll() is None:
                child.send_signal(signal.SIGKILL)
            child.wait(timeout=60)

        results_before, errors_before = _terminals(log)
        assert results_before, "the kill came before any terminal"
        assert len(results_before) < len(keys), (
            "the kill came too late: nothing left queued"
        )

        # A fresh server on the same log finishes the queue.
        server, thread = _start(log, sock)
        client = ServiceClient(sock, timeout=300)
        _drain(client, keys)
        _stop(server, thread)

        # Uninterrupted baseline: same submissions, fresh log.
        base_sock = sock + "b"
        base_log = log + ".baseline"
        baseline_server, baseline_thread = _start(base_log, base_sock)
        baseline_client = ServiceClient(base_sock, timeout=300)
        baseline_keys = _submit_matrix(baseline_client)
        assert baseline_keys == keys  # specs hash identically
        _drain(baseline_client, baseline_keys)
        _stop(baseline_server, baseline_thread)

        resumed, resumed_errors = _terminals(log)
        baseline, baseline_errors = _terminals(base_log)
        assert resumed_errors == baseline_errors == {}
        assert sorted(resumed) == sorted(baseline) == sorted(keys)
        for key in keys:
            # Outcome values, certificate bytes and event order are
            # bit-identical; wall clocks are telemetry and excluded.
            assert resumed[key].value == baseline[key].value
            assert (
                resumed[key].certificate == baseline[key].certificate
            )
            assert order_signature(
                resumed[key].events or ()
            ) == order_signature(baseline[key].events or ())

        # Exactly one terminal record per accepted key, even across
        # the restart.
        terminal_keys = [
            record.payload["key"]
            for record in read_worldlog(log)
            if record.kind in ("job.result", "job.error")
        ]
        assert sorted(terminal_keys) == sorted(keys)

        # The recorded results survived in the log before the resume:
        # the resumed server replayed them, it did not re-run them.
        for key, result in results_before.items():
            assert resumed[key].wall_seconds == result.wall_seconds

    def test_restart_answers_completed_keys_without_rerunning(
        self, paths
    ):
        sock, log = paths
        spec = encode_job(ClassifyJob("weak", 5, 1))
        server, thread = _start(log, sock)
        client = ServiceClient(sock, timeout=120)
        key = client.submit(spec)["key"]
        _drain(client, [key])
        _stop(server, thread)

        ticks_before = len(read_worldlog(log))
        server, thread = _start(log, sock)
        client = ServiceClient(sock, timeout=30)
        response = client.submit(spec)
        assert response["state"] == "done"
        assert response["cached"] is True
        _stop(server, thread)
        assert len(read_worldlog(log)) == ticks_before


class TestStatus:
    """The ``status`` RPC: the live fold behind ``repro status``/``top``."""

    def test_idle_server_reports_empty_fold(self, paths):
        sock, log = paths
        server, thread = _start(log, sock, jobs=2)
        client = ServiceClient(sock, timeout=30)
        frame = client.status()
        _stop(server, thread)
        assert frame["ok"] is True
        assert frame["workers"] == {
            "total": 2, "busy": 0, "utilization": 0.0,
        }
        assert frame["queue"] == {"depth": 0, "by_priority": {}}
        assert frame["tenants"] == {}
        assert frame["jobs"] == {
            "queued": 0, "running": [], "completed": 0,
        }

    def test_queue_tenants_and_running_jobs(self, paths):
        sock, log = paths
        server, thread = _start(
            log, sock, jobs=1,
            quota=QuotaPolicy(max_pending=4, rate=1000.0, burst=1000),
        )
        client = ServiceClient(sock, timeout=120)
        # One slow blocker occupies the single worker; two classifies
        # queue behind it at different priorities.
        blocker = client.submit(
            encode_job(MeasureJob("weak-consensus", 40, 36)),
            tenant="alice",
        )["key"]
        client.submit(
            encode_job(ClassifyJob("weak", 5, 1)),
            tenant="bob", priority=0,
        )
        client.submit(
            encode_job(ClassifyJob("weak", 6, 1)),
            tenant="bob", priority=7,
        )
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            frame = client.status()
            if frame["workers"]["busy"] == 1:
                break
            time.sleep(0.02)
        assert frame["workers"]["busy"] == 1
        assert frame["workers"]["utilization"] == 1.0
        assert frame["queue"]["depth"] == 2
        # JSON stringifies int priority keys on the wire.
        assert frame["queue"]["by_priority"] == {"7": 1, "0": 1}
        alice = frame["tenants"]["alice"]
        assert alice["pending"] == 1
        assert alice["max_pending"] == 4
        assert alice["quota_occupancy"] == 0.25
        assert frame["tenants"]["bob"]["pending"] == 2
        assert frame["tenants"]["bob"]["quota_occupancy"] == 0.5
        (running,) = frame["jobs"]["running"]
        assert running["key"] == blocker
        assert running["tenant"] == "alice"
        assert running["priority"] == 0
        assert running["seconds"] >= 0
        # Drain and confirm the fold settles.
        keys = [blocker] + [
            entry["key"]
            for entry in client.jobs()["jobs"]
            if entry["key"] != blocker
        ]
        _drain(client, keys)
        settled = client.status()
        _stop(server, thread)
        assert settled["workers"]["busy"] == 0
        assert settled["jobs"]["completed"] == 3
        assert settled["queue"]["depth"] == 0

    def test_serve_telemetry_is_observability_only(self, paths):
        from repro.obs.telemetry import TELEMETRY_SCHEMA
        from repro.service.queue import recover_jobs
        from repro.worldlog.views import jobs_manifest

        sock, log = paths
        server, thread = _start(log, sock, telemetry_interval=0.05)
        client = ServiceClient(sock, timeout=120)
        key = client.submit(encode_job(ClassifyJob("weak", 5, 1)))["key"]
        _drain(client, [key])
        _stop(server, thread)

        records = read_worldlog(log)
        snaps = [
            record for record in records
            if record.kind == "telemetry.snapshot"
        ]
        # close() writes the end-of-run picture even if no interval
        # elapsed, so at least one snapshot is guaranteed.
        assert snaps
        for snap in snaps:
            assert snap.payload["schema"] == TELEMETRY_SCHEMA
            assert snap.payload["source"] == "serve"
            assert "service" in snap.payload
        # Observability-only: recovery and the manifest never see them.
        pending, terminals = recover_jobs(records)
        assert pending == []
        assert set(terminals) == {key}
        manifest = jobs_manifest(records)
        assert [entry["key"] for entry in manifest["jobs"]] == [key]
