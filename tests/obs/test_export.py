"""Tests for the export adapters: Prometheus text and Chrome traces.

Both adapters are pure functions of recorded data, so the committed
golden world log (``tests/worldlog/golden/run.worldlog``) doubles as
their round-trip fixture: refolding its ledger events must yield a
registry whose exposition parses line-by-line as Prometheus text, and
a span tree whose Chrome trace balances every ``B`` with an ``E`` on
the same track.
"""

import json
import os
import re

from repro.obs.export import (
    chrome_trace,
    metric_name,
    prometheus_lines,
    registry_from_events,
    render_prometheus,
)
from repro.obs.ledger import LedgerEvent
from repro.obs.metrics import MetricsRegistry
from repro.worldlog.store import read_worldlog
from repro.worldlog.views import ledger_events

GOLDEN = os.path.join(
    os.path.dirname(os.path.abspath(__file__)),
    os.pardir,
    "worldlog",
    "golden",
    "run.worldlog",
)

# One exposition line: "<name>{...} <value>" — we emit no labels, so
# "<name> <value>" with a float-or-int-or-NaN value.
_SAMPLE = re.compile(
    r"^[a-zA-Z_][a-zA-Z0-9_]* (NaN|-?\d+(\.\d+)?([eE]-?\d+)?)$"
)


def _event(kind, name, ts=0.0, value=None, worker=1, cell=None):
    return LedgerEvent(
        kind=kind,
        name=name,
        ts=ts,
        value=value,
        run_id="test",
        cell_id=cell,
        worker_id=worker,
    )


def _golden_events():
    return ledger_events(read_worldlog(GOLDEN))


class TestRegistryFromEvents:
    def test_counters_sum_and_gauges_last_write(self):
        registry = registry_from_events(
            [
                _event("counter", "engine.round", value=2),
                _event("counter", "engine.round"),  # None => +1
                _event("gauge", "bound.vs_floor", value=1.0),
                _event("gauge", "bound.vs_floor", value=2.5),
            ]
        )
        assert registry.counter("engine.round").total == 3
        assert registry.gauge("bound.vs_floor").value == 2.5

    def test_span_pairs_become_duration_histograms(self):
        registry = registry_from_events(
            [
                _event("span-start", "attack", ts=1.0),
                _event("span-start", "fault-free", ts=2.0),
                _event("span-end", "fault-free", ts=5.0),
                _event("span-end", "attack", ts=10.0),
            ]
        )
        attack = registry.histogram("span.attack_seconds")
        assert attack.count == 1 and attack.total == 9.0
        inner = registry.histogram("span.fault-free_seconds")
        assert inner.total == 3.0

    def test_streams_do_not_cross_workers(self):
        # A span closed by a different worker pairs with nothing.
        registry = registry_from_events(
            [
                _event("span-start", "attack", ts=0.0, worker=1),
                _event("span-end", "attack", ts=9.0, worker=2),
            ]
        )
        assert registry.histogram("span.attack_seconds").count == 0


class TestPrometheus:
    def test_metric_name_sanitizes(self):
        assert metric_name("engine.round_seconds") == (
            "repro_engine_round_seconds"
        )
        assert metric_name("span.fault-free_seconds") == (
            "repro_span_fault_free_seconds"
        )
        assert metric_name("9lives", prefix="") == "_9lives"

    def test_counter_gauge_histogram_line_shapes(self):
        registry = MetricsRegistry()
        registry.counter("cache.hits").add(3)
        registry.gauge("bound.vs_floor").set(1.5)
        registry.histogram("round.seconds").record(0.25)
        registry.histogram("round.seconds").record(0.75)
        lines = prometheus_lines(registry.snapshot())
        assert "repro_cache_hits_total 3" in lines
        assert "# TYPE repro_cache_hits_total counter" in lines
        assert "repro_bound_vs_floor 1.5" in lines
        assert "repro_round_seconds_count 2" in lines
        assert "repro_round_seconds_sum 1" in lines
        assert "repro_round_seconds_min 0.25" in lines
        assert "repro_round_seconds_max 0.75" in lines

    def test_every_line_is_comment_or_valid_sample(self):
        document = render_prometheus(
            registry_from_events(_golden_events()).snapshot()
        )
        assert document.endswith("\n")
        for line in document.rstrip("\n").split("\n"):
            assert line.startswith("#") or _SAMPLE.match(line), line

    def test_unset_gauge_renders_nan(self):
        registry = MetricsRegistry()
        registry.gauge("g")  # registered, never set
        assert "repro_g NaN" in prometheus_lines(registry.snapshot())

    def test_golden_exposition_carries_the_round_counter(self):
        document = render_prometheus(
            registry_from_events(_golden_events()).snapshot()
        )
        assert "repro_engine_round_total" in document
        assert "repro_span_attack_seconds_count 1" in document


class TestChromeTrace:
    def test_golden_trace_shape_and_balance(self):
        trace = chrome_trace(list(_golden_events()))
        assert set(trace) == {"traceEvents", "displayTimeUnit"}
        events = trace["traceEvents"]
        assert events, "golden trace came out empty"
        for entry in events:
            assert entry["ph"] in ("B", "E", "C", "M")
            assert isinstance(entry["pid"], int)
            assert isinstance(entry["tid"], int)
        # B/E balance per (pid, tid) track, LIFO order.
        stacks = {}
        for entry in events:
            track = (entry["pid"], entry["tid"])
            if entry["ph"] == "B":
                stacks.setdefault(track, []).append(entry["name"])
            elif entry["ph"] == "E":
                assert stacks[track].pop() == entry["name"]
        assert all(not stack for stack in stacks.values())

    def test_metadata_names_every_track(self):
        trace = chrome_trace(list(_golden_events()))
        events = trace["traceEvents"]
        named = {
            (entry["pid"], entry["tid"])
            for entry in events
            if entry["ph"] == "M" and entry["name"] == "thread_name"
        }
        used = {
            (entry["pid"], entry["tid"])
            for entry in events
            if entry["ph"] in ("B", "E", "C")
        }
        assert used <= named

    def test_timestamps_scale_to_microseconds(self):
        trace = chrome_trace(
            [
                _event("span-start", "attack", ts=1.5),
                _event("span-end", "attack", ts=2.0),
            ]
        )
        spans = [
            entry
            for entry in trace["traceEvents"]
            if entry["ph"] in ("B", "E")
        ]
        assert [entry["ts"] for entry in spans] == [1.5e6, 2.0e6]

    def test_counter_samples_carry_their_value(self):
        trace = chrome_trace(
            [_event("counter", "engine.round", ts=1.0, value=7)]
        )
        samples = [
            entry
            for entry in trace["traceEvents"]
            if entry["ph"] == "C"
        ]
        assert samples[0]["args"] == {"engine.round": 7}

    def test_document_is_json_serializable(self):
        json.dumps(chrome_trace(list(_golden_events())))
