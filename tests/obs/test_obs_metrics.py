"""Tests for the metrics registry: instruments and associative merge."""

import pickle

from hypothesis import given
from hypothesis import strategies as st

from repro.obs.ledger import RunLedger
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import LedgerTracer
from repro.parallel.jobs import CacheStats


class TestInstruments:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        registry.counter("x").add(3)
        registry.counter("x").add(2)
        assert registry.counter("x").total == 5

    def test_gauge_last_value_wins(self):
        registry = MetricsRegistry()
        registry.gauge("g").set(1.0)
        registry.gauge("g").set(2.5)
        assert registry.gauge("g").value == 2.5
        assert registry.gauge("g").updates == 2

    def test_histogram_summary(self):
        registry = MetricsRegistry()
        for value in (0.5, 1.5, 1.0):
            registry.histogram("h").record(value)
        histogram = registry.histogram("h")
        assert histogram.count == 3
        assert histogram.min == 0.5
        assert histogram.max == 1.5
        assert histogram.mean == 1.0

    def test_absorb_cache(self):
        registry = MetricsRegistry()
        registry.absorb_cache(CacheStats(hits=2, alias_hits=1, misses=5))
        registry.absorb_cache(CacheStats(hits=1, alias_hits=0, misses=1))
        assert registry.counter("cache.hits").total == 3
        assert registry.counter("cache.misses").total == 6
        assert registry.cache_hit_rate() == 4 / 10

    def test_cache_hit_rate_none_without_data(self):
        assert MetricsRegistry().cache_hit_rate() is None

    def test_registry_is_picklable(self):
        registry = MetricsRegistry()
        registry.counter("x").add(1)
        registry.gauge("g").set(2.0)
        registry.histogram("h").record(3.0)
        clone = pickle.loads(pickle.dumps(registry))
        assert clone.snapshot() == registry.snapshot()

    def test_emit_publishes_in_registration_order(self):
        registry = MetricsRegistry()
        registry.counter("b.count").add(2)
        registry.counter("a.count").add(1)
        registry.gauge("g").set(4.0)
        registry.histogram("h").record(1.0)
        ledger = RunLedger(run_id="r", clock=lambda: 0.0)
        registry.emit(LedgerTracer(ledger))
        names = [event.name for event in ledger.events]
        assert names == ["b.count", "a.count", "g", "h"]
        assert ledger.events[-1].attr("count") == 1


def _registries() -> st.SearchStrategy[MetricsRegistry]:
    names = st.sampled_from(["a", "b", "c"])
    values = st.integers(min_value=0, max_value=100)

    def build(
        counters: list[tuple[str, int]],
        gauges: list[tuple[str, int]],
        histograms: list[tuple[str, int]],
    ) -> MetricsRegistry:
        registry = MetricsRegistry()
        for name, value in counters:
            registry.counter(name).add(value)
        for name, value in gauges:
            registry.gauge(name).set(float(value))
        for name, value in histograms:
            registry.histogram(name).record(float(value))
        return registry

    pairs = st.lists(st.tuples(names, values), max_size=4)
    return st.builds(build, pairs, pairs, pairs)


class TestMerge:
    @given(_registries(), _registries(), _registries())
    def test_merge_is_associative(self, a, b, c):
        left = a.merge(b).merge(c)
        right = a.merge(b.merge(c))
        assert left.snapshot() == right.snapshot()

    @given(_registries())
    def test_empty_registry_is_identity(self, registry):
        empty = MetricsRegistry()
        assert empty.merge(registry).snapshot() == registry.snapshot()
        assert registry.merge(empty).snapshot() == registry.snapshot()

    def test_merge_does_not_mutate_operands(self):
        a = MetricsRegistry()
        a.counter("x").add(1)
        b = MetricsRegistry()
        b.counter("x").add(2)
        before_a, before_b = a.snapshot(), b.snapshot()
        a.merge(b)
        assert a.snapshot() == before_a
        assert b.snapshot() == before_b

    def test_gauge_merge_prefers_updated_operand(self):
        a = MetricsRegistry()
        a.gauge("g").set(1.0)
        b = MetricsRegistry()
        assert a.merge(b).gauge("g").value == 1.0
        assert b.merge(a).gauge("g").value == 1.0
