"""Property tests for ``MetricsRegistry.merge`` edge cases.

The sweep scheduler folds per-worker registries in whatever grouping
the backend produces, so the merge must be associative with the empty
registry as identity — the same law ``AttackProfile.merge`` obeys
(``tests/parallel/test_profile_merge.py``), asserted here with
Hypothesis-generated registries.  Gauges additionally carry the
last-write-wins contract under worker splice order: whichever operand
was updated more recently (right wins ties) supplies the value.
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.obs.metrics import Gauge, Histogram, MetricsRegistry

_COUNTERS = ["engine.round", "cache.hits", "cache.misses"]
_GAUGES = ["bound.vs_floor", "sweep.cells"]
_HISTOGRAMS = ["engine.round_seconds", "cell.wall_seconds"]

# Quarter-integer values keep float addition exactly associative, so
# the algebra can be asserted with == (same trick as the profile-merge
# suite).
_values = st.integers(min_value=0, max_value=1000).map(
    lambda value: value / 4.0
)


@st.composite
def _registries(draw) -> MetricsRegistry:
    registry = MetricsRegistry()
    for name in draw(
        st.lists(st.sampled_from(_COUNTERS), max_size=3, unique=True)
    ):
        registry.counter(name).add(draw(_values))
    for name in draw(
        st.lists(st.sampled_from(_GAUGES), max_size=2, unique=True)
    ):
        for _ in range(draw(st.integers(min_value=1, max_value=3))):
            registry.gauge(name).set(draw(_values))
    for name in draw(
        st.lists(st.sampled_from(_HISTOGRAMS), max_size=2, unique=True)
    ):
        for _ in range(draw(st.integers(min_value=1, max_value=4))):
            registry.histogram(name).record(draw(_values))
    return registry


class TestMergeAlgebra:
    @given(_registries(), _registries(), _registries())
    def test_merge_is_associative(self, a, b, c):
        left = a.merge(b).merge(c)
        right = a.merge(b.merge(c))
        assert left.snapshot() == right.snapshot()
        # Gauge update counts (not part of the snapshot) agree too —
        # they drive last-write-wins in any further merge.
        for name in _GAUGES:
            assert (
                left.gauge(name).updates == right.gauge(name).updates
            )

    @given(_registries())
    def test_empty_registry_is_identity(self, registry):
        empty = MetricsRegistry()
        assert empty.merge(registry).snapshot() == registry.snapshot()
        assert registry.merge(empty).snapshot() == registry.snapshot()

    @given(_registries(), _registries())
    def test_merge_never_mutates_its_operands(self, a, b):
        before_a, before_b = a.snapshot(), b.snapshot()
        a.merge(b)
        assert a.snapshot() == before_a
        assert b.snapshot() == before_b


class TestGaugeLastWriteWins:
    def test_updated_right_operand_wins(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.gauge("bound.vs_floor").set(1.0)
        b.gauge("bound.vs_floor").set(2.0)
        assert a.merge(b).gauge("bound.vs_floor").value == 2.0

    def test_never_updated_right_operand_loses(self):
        # A worker that registered the gauge but never set it (updates
        # == 0) must not clobber a real sample during the splice fold.
        a, b = MetricsRegistry(), MetricsRegistry()
        a.gauge("bound.vs_floor").set(1.0)
        b.gauge("bound.vs_floor")  # registered, never set
        merged = a.merge(b)
        assert merged.gauge("bound.vs_floor").value == 1.0
        assert merged.gauge("bound.vs_floor").updates == 1

    @given(
        st.lists(
            st.tuples(st.sampled_from([0, 1]), _values),
            min_size=1,
            max_size=6,
        )
    )
    def test_splice_order_fold_matches_sequential_sets(self, writes):
        # Split one write sequence across two workers; the merged
        # gauge must report the value of the last *update* in splice
        # order (worker 0's registry merged before worker 1's).
        workers = [MetricsRegistry(), MetricsRegistry()]
        last = {0: None, 1: None}
        for worker, value in writes:
            workers[worker].gauge("g").set(value)
            last[worker] = value
        merged = workers[0].merge(workers[1])
        expected = last[1] if last[1] is not None else last[0]
        assert merged.gauge("g").value == expected


class TestHistogramMerge:
    @given(
        st.lists(_values, min_size=0, max_size=8),
        st.lists(_values, min_size=0, max_size=8),
    )
    def test_merged_summary_equals_union_stream(self, xs, ys):
        a, b = Histogram("h"), Histogram("h")
        for value in xs:
            a.record(value)
        for value in ys:
            b.record(value)
        union = Histogram("h")
        for value in xs + ys:
            union.record(value)
        assert a.merged(b) == union

    def test_empty_histogram_keeps_none_bounds(self):
        merged = Histogram("h").merged(Histogram("h"))
        assert merged.count == 0
        assert merged.min is None and merged.max is None
        assert merged.mean == 0.0

    def test_gauge_merge_is_not_commutative_by_design(self):
        # Documented asymmetry: the right operand wins ties, so splice
        # order matters for gauges (and only gauges).
        a, b = Gauge("g"), Gauge("g")
        a.set(1.0)
        b.set(2.0)
        assert a.merged(b).value == 2.0
        assert b.merged(a).value == 1.0
