"""Tests for the benchmark observatory (statistics, runner, trajectory).

Tier-1 discipline: no real timing.  The runner tests inject a scripted
clock, the statistics tests are pure functions of synthetic samples, and
the comparison tests construct point payloads directly — so the suite is
deterministic on any machine, loaded or not.
"""

import json

import pytest

from repro.errors import ArtifactError
from repro.obs.bench import (
    BENCH_SCHEMA,
    BenchError,
    BenchKernel,
    BenchRunner,
    BenchStats,
    append_points,
    compare_points,
    environment_fingerprint,
    kernels,
    read_bench_file,
    register,
    trajectory_file_name,
)


class TestBenchStats:
    def test_upper_outlier_rejected(self):
        stats = BenchStats.of([1.0, 1.1, 1.05, 1.02, 9.0])
        assert stats.outliers_rejected == 1
        assert stats.min == 1.0
        assert 9.0 not in stats.kept
        assert 9.0 in stats.samples  # raw samples stay recorded

    def test_fast_samples_always_kept(self):
        # One-sided rejection: a suspiciously fast sample is evidence
        # about the true cost, never an outlier.
        stats = BenchStats.of([5.0, 5.1, 5.05, 5.02, 0.5])
        assert stats.outliers_rejected == 0
        assert stats.min == 0.5

    def test_noise_is_relative_iqr(self):
        stats = BenchStats.of([1.0, 1.0, 1.0, 1.0, 1.0])
        assert stats.noise == 0.0
        spread = BenchStats.of([1.0, 1.2, 1.4, 1.6, 1.8])
        assert spread.noise == pytest.approx(
            spread.iqr / spread.median
        )
        assert spread.noise > 0.2

    def test_single_sample(self):
        stats = BenchStats.of([2.5])
        assert stats.min == stats.median == 2.5
        assert stats.noise == 0.0
        assert stats.outliers_rejected == 0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            BenchStats.of([])

    def test_payload_round_trips_through_json(self):
        stats = BenchStats.of([1.0, 1.2, 1.1])
        payload = json.loads(json.dumps(stats.to_payload()))
        assert payload["repetitions"] == 3
        assert payload["median"] == stats.median
        assert payload["samples"] == [1.0, 1.2, 1.1]


class TestRegistry:
    def test_register_and_filter(self):
        register("_test_suite", "alpha", lambda: 1, quick=True)
        register("_test_suite", "beta", lambda: 2)
        selected = kernels(suites=["_test_suite"])
        assert [kernel.name for kernel in selected] == ["alpha", "beta"]
        quick = kernels(suites=["_test_suite"], quick=True)
        assert [kernel.name for kernel in quick] == ["alpha"]

    def test_unknown_suite_raises(self):
        with pytest.raises(BenchError, match="unknown bench suite"):
            kernels(suites=["no-such-suite-ever"])

    def test_kernel_label(self):
        kernel = BenchKernel(suite="s", name="k", fn=lambda: None)
        assert kernel.label == "s/k"
        assert kernel.key == ("s", "k")


class FakeClock:
    """A scripted clock: each call returns the next queued instant."""

    def __init__(self, instants):
        self.instants = list(instants)

    def __call__(self):
        return self.instants.pop(0)


class TestBenchRunner:
    def _kernel(self, calls):
        return BenchKernel(
            suite="s", name="k", fn=lambda: calls.append(1)
        )

    def test_fake_clock_samples(self):
        # Three repetitions taking 1.0s, 2.0s and 3.0s on the scripted
        # clock; one warmup call is untimed.
        clock = FakeClock([0.0, 1.0, 10.0, 12.0, 20.0, 23.0])
        calls = []
        runner = BenchRunner(
            repetitions=3,
            warmup=1,
            clock=clock,
            trace_memory=False,
            tier="quick",
        )
        point = runner.measure(self._kernel(calls))
        # warmup + 3 timed + 1 accounting pass
        assert len(calls) == 5
        assert point.stats.samples == (1.0, 2.0, 3.0)
        assert point.tier == "quick"
        assert point.warmup == 1

    def test_accounting_pass_counts_objects(self):
        from repro.sim.message import Message

        def build_messages():
            return [Message(0, 1, 1, i) for i in range(5)]

        clock = FakeClock([0.0, 1.0])
        runner = BenchRunner(
            repetitions=1, warmup=0, clock=clock, trace_memory=False
        )
        point = runner.measure(
            BenchKernel(suite="s", name="m", fn=build_messages)
        )
        # The delta covers exactly the accounting pass's execution.
        assert point.objects["messages_materialized"] == 5
        assert point.tracemalloc_peak_bytes == 0  # tracing disabled

    def test_tracemalloc_peak_positive_when_enabled(self):
        clock = FakeClock([0.0, 1.0])
        runner = BenchRunner(repetitions=1, warmup=0, clock=clock)
        point = runner.measure(
            BenchKernel(
                suite="s", name="alloc", fn=lambda: bytearray(1 << 16)
            )
        )
        assert point.tracemalloc_peak_bytes >= 1 << 16

    def test_validation(self):
        with pytest.raises(ValueError):
            BenchRunner(repetitions=0)
        with pytest.raises(ValueError):
            BenchRunner(warmup=-1)

    def test_point_payload_schema_and_fingerprint(self):
        clock = FakeClock([0.0, 1.0])
        runner = BenchRunner(
            repetitions=1, warmup=0, clock=clock, trace_memory=False
        )
        point = runner.measure(
            BenchKernel(suite="s", name="k", fn=lambda: None)
        )
        payload = point.to_payload()
        assert payload["schema"] == BENCH_SCHEMA
        for key in (
            "git_sha",
            "python",
            "implementation",
            "platform",
            "cpu_count",
        ):
            assert key in payload["fingerprint"]


class TestFingerprint:
    def test_fields_present(self):
        fingerprint = environment_fingerprint()
        assert fingerprint["python"]
        assert fingerprint["cpu_count"] >= 1


def _measured_point(tmp_path_suite="s"):
    clock = FakeClock([0.0, 1.0, 2.0, 3.5])
    runner = BenchRunner(
        repetitions=2, warmup=0, clock=clock, trace_memory=False
    )
    return runner.measure(
        BenchKernel(suite=tmp_path_suite, name="k", fn=lambda: None)
    )


class TestTrajectoryFiles:
    def test_append_creates_and_preserves_history(self, tmp_path):
        directory = str(tmp_path / "nested" / "out")
        written = append_points(directory, [_measured_point()])
        assert written == [
            str(tmp_path / "nested" / "out" / trajectory_file_name("s"))
        ]
        assert len(read_bench_file(written[0])) == 1
        append_points(directory, [_measured_point()])
        points = read_bench_file(written[0])
        assert len(points) == 2  # the trajectory accumulates
        assert all(p["schema"] == BENCH_SCHEMA for p in points)

    def test_corrupt_file_raises_artifact_error(self, tmp_path):
        path = tmp_path / "BENCH_s.json"
        path.write_text("{broken")
        with pytest.raises(ArtifactError, match="not a bench"):
            read_bench_file(str(path))

    def test_wrong_schema_raises_artifact_error(self, tmp_path):
        path = tmp_path / "BENCH_s.json"
        path.write_text(json.dumps({"schema": "other/v9", "points": []}))
        with pytest.raises(ArtifactError, match="expected schema"):
            read_bench_file(str(path))


def _point_payload(suite, kernel, median, noise=0.0):
    """A minimal persisted point for comparison tests."""
    return {
        "schema": BENCH_SCHEMA,
        "suite": suite,
        "kernel": kernel,
        "stats": {"median": median, "noise": noise},
    }


class TestCompare:
    def test_self_comparison_is_clean(self):
        points = [_point_payload("s", "k", 1.0, noise=0.05)]
        report = compare_points(points, points)
        assert report.ok
        assert report.deltas[0].verdict == "ok"

    def test_regression_beyond_default_gate_flagged(self):
        baseline = [_point_payload("s", "k", 1.0, noise=0.0)]
        current = [_point_payload("s", "k", 1.3, noise=0.0)]
        report = compare_points(baseline, current)
        assert not report.ok
        delta = report.regressions[0]
        assert delta.gate == pytest.approx(0.2)
        assert delta.delta == pytest.approx(0.3)

    def test_noise_widens_the_gate(self):
        # Same 30% slowdown, but measured noise of 15% raises the gate
        # to 3 × 0.15 = 45% — not flagged.
        baseline = [_point_payload("s", "k", 1.0, noise=0.15)]
        current = [_point_payload("s", "k", 1.3, noise=0.0)]
        report = compare_points(baseline, current)
        assert report.ok
        assert report.deltas[0].gate == pytest.approx(0.45)

    def test_regression_beyond_noise_gate_flagged(self):
        baseline = [_point_payload("s", "k", 1.0, noise=0.15)]
        current = [_point_payload("s", "k", 1.5, noise=0.0)]
        report = compare_points(baseline, current)
        assert not report.ok  # 50% > max(20%, 45%)

    def test_improvement_beyond_gate_is_not_a_regression(self):
        baseline = [_point_payload("s", "k", 1.0)]
        current = [_point_payload("s", "k", 0.5)]
        report = compare_points(baseline, current)
        assert report.ok
        assert report.deltas[0].verdict == "improved"

    def test_missing_kernel_surfaced(self):
        baseline = [
            _point_payload("s", "k", 1.0),
            _point_payload("s", "gone", 1.0),
        ]
        current = [_point_payload("s", "k", 1.0)]
        report = compare_points(baseline, current)
        assert report.missing == ("s/gone",)

    def test_latest_point_wins(self):
        # Two baseline points for the same kernel: the newer (later in
        # file order) one is the baseline.
        baseline = [
            _point_payload("s", "k", 9.0),
            _point_payload("s", "k", 1.0),
        ]
        current = [_point_payload("s", "k", 1.1)]
        report = compare_points(baseline, current)
        assert report.ok
        assert report.deltas[0].baseline_median == 1.0

    def test_render_names_the_gate(self):
        points = [_point_payload("s", "k", 1.0)]
        rendered = compare_points(points, points).render()
        assert "gate = max(20%, 3x noise)" in rendered
