"""Cross-backend splice tests: serial and pooled ledgers agree on order.

The contract (see DESIGN.md "Observability"): the spliced sweep ledger's
``(kind, name, cell_id)`` sequence is identical whichever backend ran
the cells; timestamps, worker ids and run ids legitimately differ and
are excluded — like every other piece of telemetry — from outcome
equality.
"""

from repro.obs.ledger import RunLedger, order_signature
from repro.parallel.jobs import AttackJob, MeasureJob
from repro.parallel.scheduler import SweepScheduler


def _attack_matrix() -> list[AttackJob]:
    return [
        AttackJob("silent", 8, 4),
        AttackJob("ring-token", 12, 8),
        AttackJob("silent", 12, 8, certify=True),
    ]


class TestSpliceOrder:
    def test_serial_and_pooled_orders_identical(self):
        serial = RunLedger(run_id="serial")
        pooled = RunLedger(run_id="pooled")
        report_serial = SweepScheduler(jobs=1, ledger=serial).run(
            _attack_matrix()
        )
        report_pooled = SweepScheduler(jobs=4, ledger=pooled).run(
            _attack_matrix()
        )
        assert report_serial.ok and report_pooled.ok
        assert order_signature(serial.events) == order_signature(
            pooled.events
        )
        # Outcomes stay equal too — telemetry never leaks into them.
        assert [c.result.value for c in report_serial.cells] == [
            c.result.value for c in report_pooled.cells
        ]

    def test_spliced_events_carry_sweep_run_id(self):
        ledger = RunLedger(run_id="sweep-run")
        SweepScheduler(jobs=2, ledger=ledger).run(_attack_matrix())
        assert ledger.events
        assert all(
            event.run_id == "sweep-run" for event in ledger.events
        )

    def test_cell_segments_arrive_in_submission_order(self):
        ledger = RunLedger(run_id="r")
        SweepScheduler(jobs=4, ledger=ledger).run(_attack_matrix())
        cells_in_order = []
        for event in ledger.events:
            if event.cell_id and event.cell_id not in cells_in_order:
                cells_in_order.append(event.cell_id)
        assert cells_in_order == [
            "attack/silent/n8/t4",
            "attack/ring-token/n12/t8",
            "attack/silent/n12/t8",
        ]

    def test_gather_emits_cell_wall_and_certificate_events(self):
        ledger = RunLedger(run_id="r")
        SweepScheduler(jobs=1, ledger=ledger).run(_attack_matrix())
        walls = [
            e for e in ledger.events if e.name == "cell.wall_seconds"
        ]
        assert len(walls) == 3
        artifacts = [e for e in ledger.events if e.kind == "artifact"]
        assert [
            (a.cell_id, a.attr("verdict")) for a in artifacts
        ] == [("attack/silent/n12/t8", "ok")]

    def test_errored_cell_recorded_without_aborting_splice(self):
        jobs = [
            AttackJob("silent", 8, 4),
            AttackJob("no-such-builder", 8, 4),
        ]
        ledger = RunLedger(run_id="r")
        report = SweepScheduler(jobs=1, ledger=ledger).run(jobs)
        assert not report.ok
        errors = [e for e in ledger.events if e.name == "cell.error"]
        assert len(errors) == 1
        assert errors[0].cell_id == "attack/no-such-builder/n8/t4"
        assert errors[0].attr("error_kind") == "exception"

    def test_measure_jobs_splice_identically(self):
        jobs = [
            MeasureJob("weak-consensus", 4, 1),
            MeasureJob("dolev-strong", 4, 1),
        ]
        serial = RunLedger(run_id="s")
        pooled = RunLedger(run_id="p")
        SweepScheduler(jobs=1, ledger=serial).run(jobs)
        SweepScheduler(jobs=2, ledger=pooled).run(jobs)
        assert order_signature(serial.events) == order_signature(
            pooled.events
        )
        names = {event.name for event in serial.events}
        assert "measure.worst_messages" in names
        assert "measure.vs_floor" in names

    def test_without_ledger_jobs_stay_untraced(self):
        report = SweepScheduler(jobs=1).run([AttackJob("silent", 8, 4)])
        assert report.cells[0].result.events is None


class TestLifecycleEvents:
    """The per-cell start/heartbeat/done triple emitted at gather time."""

    def test_every_cell_bracketed_start_to_done(self):
        ledger = RunLedger(run_id="r")
        SweepScheduler(jobs=1, ledger=ledger).run(_attack_matrix())
        for cell_id in (
            "attack/silent/n8/t4",
            "attack/ring-token/n12/t8",
            "attack/silent/n12/t8",
        ):
            names = [
                e.name for e in ledger.events if e.cell_id == cell_id
            ]
            # start opens the cell's block, done closes it, and the
            # heartbeat count sits between the segment and the wall.
            assert names[0] == "cell.start"
            assert names[-1] == "cell.done"
            assert names.index("cell.heartbeat") < names.index(
                "cell.wall_seconds"
            )

    def test_heartbeat_order_matches_serial_backend(self):
        # The acceptance criterion: a --jobs 2 sweep's spliced event
        # order (start/heartbeat/done included) equals the serial one.
        serial = RunLedger(run_id="s")
        pooled = RunLedger(run_id="p")
        SweepScheduler(jobs=1, ledger=serial).run(_attack_matrix())
        SweepScheduler(jobs=2, ledger=pooled).run(_attack_matrix())
        assert order_signature(serial.events) == order_signature(
            pooled.events
        )
        beats = [
            e for e in pooled.events if e.name == "cell.heartbeat"
        ]
        assert len(beats) == 3
        assert all(isinstance(e.value, int) for e in beats)

    def test_done_records_cell_status(self):
        jobs = [
            AttackJob("silent", 8, 4),
            AttackJob("no-such-builder", 8, 4),
        ]
        ledger = RunLedger(run_id="r")
        SweepScheduler(jobs=1, ledger=ledger).run(jobs)
        statuses = {
            e.cell_id: e.attr("status")
            for e in ledger.events
            if e.name == "cell.done"
        }
        assert statuses == {
            "attack/silent/n8/t4": "ok",
            "attack/no-such-builder/n8/t4": "error",
        }

    def test_progress_line_goes_to_the_injected_stream(self):
        import io

        stream = io.StringIO()
        scheduler = SweepScheduler(
            jobs=1,
            progress=True,
            heartbeat_interval=0.0,  # no monitor thread in tier-1
            progress_stream=stream,
        )
        report = scheduler.run([AttackJob("silent", 8, 4)])
        assert report.ok
        assert "1/1 cells" in stream.getvalue()
