"""Tests for the sampled telemetry bus (fake clock, real world log).

The bus's contract has three legs, each pinned here:

* **sampling discipline** — ``maybe_sample`` appends only once the
  interval elapsed; ``close`` writes the end-of-run picture but an
  idle bus (nothing attached, nothing sampled) leaves no record;
* **payload fold** — metrics snapshot + cache hit rate, progress
  accounting, round-tap totals and extra sources all land in one
  ``telemetry.snapshot`` payload with a stable schema tag;
* **observability-only** — recovery, the jobs manifest and sweep
  resume never see the records (covered in the worldlog/service
  suites; here we pin the record kind itself).
"""

import pytest

from repro.errors import ReproError
from repro.obs.metrics import MetricsRegistry
from repro.obs.progress import SweepProgress
from repro.obs.telemetry import (
    DEFAULT_INTERVAL,
    TELEMETRY_SCHEMA,
    TelemetryBus,
    parse_interval,
)
from repro.worldlog.store import WorldLog, read_worldlog


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def advance(self, seconds):
        self.now += seconds

    def __call__(self):
        return self.now


@pytest.fixture
def worldlog(tmp_path):
    log = WorldLog.create(str(tmp_path / "t.worldlog"))
    yield log
    log.close()


def _bus(worldlog, interval=1.0, **kwargs):
    clock = FakeClock()
    bus = TelemetryBus(
        worldlog, interval=interval, clock=clock, **kwargs
    )
    return bus, clock


class TestParseInterval:
    def test_accepts_positive_numbers(self):
        assert parse_interval("2.5") == 2.5
        assert parse_interval(3) == 3.0
        assert parse_interval("0.001") == 0.001

    @pytest.mark.parametrize(
        "bad", ["0", "-1", "abc", "nan", "", None, float("nan")]
    )
    def test_rejects_nonpositive_and_unparsable(self, bad):
        with pytest.raises(ReproError) as excinfo:
            parse_interval(bad)
        assert "--interval expects a positive number" in str(
            excinfo.value
        )

    def test_flag_name_appears_in_the_diagnostic(self):
        with pytest.raises(ReproError) as excinfo:
            parse_interval("0", "--telemetry-interval")
        assert str(excinfo.value).startswith("--telemetry-interval ")

    def test_default_interval_is_valid(self):
        assert parse_interval(DEFAULT_INTERVAL) == DEFAULT_INTERVAL


class TestSamplingDiscipline:
    def test_maybe_sample_respects_the_interval(self, worldlog):
        bus, clock = _bus(worldlog, interval=1.0)
        assert bus.sample().payload["seq"] == 0
        assert bus.maybe_sample() is None  # same instant
        clock.advance(0.5)
        assert bus.maybe_sample() is None  # inside the interval
        clock.advance(0.5)
        record = bus.maybe_sample()  # exactly the interval: due
        assert record is not None
        assert record.payload["seq"] == 1
        assert bus.samples == 2

    def test_first_maybe_sample_fires_immediately(self, worldlog):
        bus, _ = _bus(worldlog, interval=60.0)
        assert bus.maybe_sample() is not None

    def test_idle_bus_closes_without_a_record(self, worldlog):
        bus, _ = _bus(worldlog)
        assert bus.close() is None
        kinds = [record.kind for record in worldlog.records]
        assert "telemetry.snapshot" not in kinds

    def test_attached_bus_closes_with_a_final_sample(self, worldlog):
        bus, _ = _bus(worldlog)
        bus.attach_metrics(MetricsRegistry())
        record = bus.close()
        assert record is not None
        assert record.kind == "telemetry.snapshot"

    def test_bad_interval_is_rejected_at_construction(self, worldlog):
        with pytest.raises(ReproError):
            TelemetryBus(worldlog, interval=0)


class TestSnapshotFold:
    def test_schema_seq_source_and_uptime(self, worldlog):
        bus, clock = _bus(worldlog, source="attack")
        clock.advance(4.0)
        payload = bus.build_snapshot()
        assert payload["schema"] == TELEMETRY_SCHEMA
        assert payload["seq"] == 0
        assert payload["source"] == "attack"
        assert payload["uptime_seconds"] == 4.0

    def test_metrics_and_cache_hit_rate_fold_in(self, worldlog):
        registry = MetricsRegistry()
        registry.counter("engine.round").add(7)
        registry.counter("cache.hits").add(2)
        registry.counter("cache.alias_hits").add(1)
        registry.counter("cache.misses").add(1)
        bus, _ = _bus(worldlog, metrics=registry)
        payload = bus.build_snapshot()
        assert payload["metrics"]["counters"]["engine.round"] == 7
        assert payload["cache_hit_rate"] == 0.75

    def test_progress_accounting_folds_in(self, worldlog):
        progress = SweepProgress(4, label="sweep")
        progress.start("a")
        progress.note_done("a")
        bus, _ = _bus(worldlog)
        bus.attach_progress(progress)
        section = bus.build_snapshot()["progress"]
        assert section["label"] == "sweep"
        assert section["done"] == 1
        assert section["total"] == 4

    def test_round_tap_counts_and_vs_floor(self, worldlog):
        bus, clock = _bus(worldlog, interval=100.0)
        tap = bus.round_tap(floor=8.0)

        class Event:
            @staticmethod
            def sent_by_correct():
                return 6

        tap.on_run_start(None, None, None)
        clock.advance(2.0)
        tap.on_round(Event())
        tap.on_round(Event())
        rounds = bus.build_snapshot()["rounds"]
        assert rounds["seen"] == 2
        assert rounds["runs"] == 1
        assert rounds["cum_messages"] == 12
        assert rounds["rounds_per_second"] == 1.0
        assert rounds["vs_floor"] == 1.5

    def test_round_tap_pumps_the_bus(self, worldlog):
        bus, clock = _bus(worldlog, interval=1.0)
        tap = bus.round_tap()

        class Event:
            @staticmethod
            def sent_by_correct():
                return 0

        tap.on_round(Event())  # first pump samples immediately
        clock.advance(1.0)
        tap.on_round(Event())
        assert bus.samples == 2

    def test_extra_sources_land_under_their_name(self, worldlog):
        bus, _ = _bus(worldlog)
        bus.add_source("service", lambda: {"queued": 3})
        assert bus.build_snapshot()["service"] == {"queued": 3}

    def test_sampled_records_round_trip_through_the_log(
        self, worldlog, tmp_path
    ):
        bus, _ = _bus(worldlog)
        bus.attach_metrics(MetricsRegistry())
        bus.sample()
        bus.sample()
        worldlog.close()
        records = read_worldlog(str(tmp_path / "t.worldlog"))
        snaps = [
            record
            for record in records
            if record.kind == "telemetry.snapshot"
        ]
        assert [snap.payload["seq"] for snap in snaps] == [0, 1]
        assert all(
            snap.payload["schema"] == TELEMETRY_SCHEMA
            for snap in snaps
        )
