"""Tests for the sweep progress tracker (fake clock, string stream).

No real threads or timers: the tests drive :meth:`SweepProgress.tick`
and the clock by hand, so heartbeat counts, ETA arithmetic and the
stall flag are all deterministic.
"""

import io

from repro.obs.progress import (
    HeartbeatMonitor,
    SweepProgress,
    _format_seconds,
)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def advance(self, seconds):
        self.now += seconds

    def __call__(self):
        return self.now


def _tracker(total, stall_after=30.0, stream=None):
    clock = FakeClock()
    progress = SweepProgress(
        total,
        stream=stream,
        stall_after=stall_after,
        clock=clock,
        label="sweep",
    )
    return progress, clock


class TestHeartbeats:
    def test_only_in_flight_cells_credited(self):
        progress, _ = _tracker(3)
        progress.start("a")
        progress.tick()
        progress.tick()
        progress.start("b")
        progress.tick()
        progress.note_done("a")
        progress.tick()
        assert progress.heartbeats == {"a": 3, "b": 2}

    def test_started_cell_without_ticks_records_zero(self):
        progress, _ = _tracker(1)
        progress.start("a")
        progress.note_done("a")
        assert progress.heartbeats == {"a": 0}

    def test_done_counter(self):
        progress, _ = _tracker(2)
        progress.start("a")
        progress.start("b")
        assert progress.done == 0
        progress.note_done("a")
        assert progress.done == 1
        progress.note_done("b")
        assert progress.done == 2


class TestStatusLine:
    def test_line_shows_done_total_and_elapsed(self):
        stream = io.StringIO()
        progress, clock = _tracker(4, stream=stream)
        progress.start("a")
        clock.advance(5.0)
        progress.note_done("a")
        line = stream.getvalue()
        assert "sweep: 1/4 cells" in line
        assert "elapsed 5s" in line

    def test_eta_extrapolates_from_throughput(self):
        stream = io.StringIO()
        progress, clock = _tracker(4, stream=stream)
        progress.start("a")
        clock.advance(10.0)
        progress.note_done("a")
        # One cell in 10s leaves three cells: ETA 30s.
        assert "eta 30s" in stream.getvalue()
        assert progress.eta_seconds() == 30.0

    def test_no_eta_before_first_completion_or_after_last(self):
        progress, clock = _tracker(2)
        assert progress.eta_seconds() is None
        progress.start("a")
        clock.advance(1.0)
        progress.note_done("a")
        progress.note_done("b")
        assert progress.eta_seconds() is None

    def test_null_stream_keeps_accounting(self):
        progress, _ = _tracker(2, stream=None)
        progress.start("a")
        progress.tick()
        progress.note_done("a")  # must not raise
        assert progress.heartbeats["a"] == 1

    def test_non_tty_stream_gets_full_lines(self):
        stream = io.StringIO()  # isatty() is False
        progress, _ = _tracker(1, stream=stream)
        progress.start("a")
        progress.note_done("a")
        assert stream.getvalue().endswith("\n")
        assert "\r" not in stream.getvalue()


class FakeTty(io.StringIO):
    def isatty(self):
        return True


class TestTtyLineClearing:
    """The narrow-terminal fix: erase the line, never pad over it.

    Padding to a fixed width wraps on terminals narrower than the pad
    and the wrapped fragment is never cleared — a stale heartbeat line
    was left above the final gather summary.  The TTY rewrite must use
    CSI 2K (erase whole line) after the carriage return instead.
    """

    def test_tty_rewrites_erase_the_previous_line(self):
        stream = FakeTty()
        progress, _ = _tracker(2, stream=stream)
        progress.start("a")
        progress.note_done("a")
        progress.note_done("b")
        chunks = stream.getvalue().split("\r")
        # Every rewrite starts with the erase-line control, and no
        # rewrite relies on trailing-space padding.
        assert chunks[0] == ""
        for chunk in chunks[1:]:
            assert chunk.startswith("\x1b[2K")
            assert not chunk.endswith(" ")

    def test_close_releases_the_terminal_with_a_newline(self):
        stream = FakeTty()
        progress, _ = _tracker(1, stream=stream)
        progress.start("a")
        progress.note_done("a")
        progress.close()
        assert stream.getvalue().endswith("\n")
        # Exactly one newline: the final release, nothing mid-stream.
        assert stream.getvalue().count("\n") == 1

    def test_non_tty_output_is_pinned_byte_exactly(self):
        # The non-TTY path (CI logs, piped stderr) is a stable contract:
        # one full plain-text line per event, no control characters.
        stream = io.StringIO()
        progress, clock = _tracker(2, stream=stream)
        progress.start("a")
        clock.advance(5.0)
        progress.note_done("a")
        clock.advance(5.0)
        progress.note_done("b")
        progress.close()
        assert stream.getvalue() == (
            "sweep: 1/2 cells, elapsed 5s, eta 5s\n"
            "sweep: 2/2 cells, elapsed 10s\n"
            "sweep: 2/2 cells, elapsed 10s\n"
        )


class TestAccounting:
    def test_snapshot_shape_and_values(self):
        progress, clock = _tracker(4)
        progress.start("a")
        progress.start("b")
        progress.tick()
        clock.advance(10.0)
        progress.note_done("a")
        snapshot = progress.accounting()
        assert snapshot == {
            "label": "sweep",
            "done": 1,
            "total": 4,
            "in_flight": 1,
            "elapsed_seconds": 10.0,
            "eta_seconds": 30.0,
            "stalled": False,
            "heartbeats": 2,
        }

    def test_stalled_flag_and_missing_eta(self):
        progress, clock = _tracker(2, stall_after=30.0)
        progress.start("a")
        clock.advance(31.0)
        snapshot = progress.accounting()
        assert snapshot["stalled"] is True
        assert snapshot["eta_seconds"] is None

    def test_accounting_is_json_safe(self):
        import json

        progress, _ = _tracker(1)
        progress.start("a")
        json.dumps(progress.accounting())  # must not raise


class TestStall:
    def test_quiet_period_raises_the_flag(self):
        stream = io.StringIO()
        progress, clock = _tracker(2, stall_after=30.0, stream=stream)
        progress.start("slow")
        progress.start("slower")
        assert not progress.stalled
        clock.advance(31.0)
        assert progress.stalled
        progress.tick()
        line = stream.getvalue()
        assert "STALLED 31s" in line
        # The longest-running in-flight cell is named.
        assert "longest in flight: slow" in line

    def test_completion_resets_the_quiet_period(self):
        progress, clock = _tracker(3, stall_after=30.0)
        progress.start("a")
        clock.advance(29.0)
        progress.note_done("a")
        clock.advance(2.0)
        assert progress.stalled_for() == 2.0
        assert not progress.stalled

    def test_finished_sweep_never_stalled(self):
        progress, clock = _tracker(1, stall_after=1.0)
        progress.start("a")
        progress.note_done("a")
        clock.advance(100.0)
        assert progress.stalled_for() == 0.0
        assert not progress.stalled


class TestMonitor:
    def test_nonpositive_interval_disables_the_thread(self):
        progress, _ = _tracker(1)
        with HeartbeatMonitor(progress, interval=0.0) as monitor:
            assert monitor._thread is None

    def test_real_thread_ticks_and_joins(self):
        # The one test with a real (tiny-interval) thread: liveness
        # only — heartbeat counts are not asserted.
        progress = SweepProgress(1, stall_after=60.0)
        progress.start("a")
        with HeartbeatMonitor(progress, interval=0.001):
            deadline = 200
            while not progress.heartbeats.get("a") and deadline:
                import time

                time.sleep(0.001)
                deadline -= 1
        assert progress.heartbeats["a"] >= 1


class TestFormatSeconds:
    def test_ranges(self):
        assert _format_seconds(41.4) == "41s"
        assert _format_seconds(200) == "3m20s"
        assert _format_seconds(3720) == "1h02m"
