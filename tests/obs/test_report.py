"""Tests for trace rendering and the performance trend log."""

from repro.obs.ledger import RunLedger
from repro.obs.report import (
    append_trend,
    build_span_tree,
    read_trend,
    render_trace,
    trend_point,
)


def _sample_ledger() -> RunLedger:
    ticks = iter(float(i) for i in range(100))
    ledger = RunLedger(
        run_id="demo", worker_id=1, clock=lambda: next(ticks)
    )
    ledger.emit("span-start", "attack", n=12, t=8)
    ledger.emit("span-start", "fault-free")
    ledger.emit(
        "counter",
        "engine.round",
        value=6,
        round=1,
        run=0,
        seconds=0.001,
        cum_messages=6,
        vs_floor=3.0,
    )
    ledger.emit(
        "counter",
        "engine.round",
        value=4,
        round=2,
        run=0,
        seconds=0.004,
        cum_messages=10,
        vs_floor=5.0,
    )
    ledger.emit("span-end", "fault-free")
    ledger.emit("counter", "cache.hits", value=3)
    ledger.emit("counter", "cache.alias_hits", value=1)
    ledger.emit("counter", "cache.misses", value=4)
    ledger.emit("gauge", "bound.observed", value=10)
    ledger.emit("gauge", "bound.floor", value=2.0)
    ledger.emit("gauge", "bound.vs_floor", value=5.0)
    ledger.emit("span-end", "attack")
    return ledger


class TestSpanTree:
    def test_nesting_and_durations(self):
        tree = build_span_tree(_sample_ledger().events)
        attack = tree.children["attack"]
        assert attack.count == 1
        assert "fault-free" in attack.children
        # fault-free: started at ts=1, ended at ts=4.
        assert attack.children["fault-free"].seconds == 3.0

    def test_same_name_spans_aggregate(self):
        ticks = iter(float(i) for i in range(10))
        ledger = RunLedger(
            run_id="r", worker_id=1, clock=lambda: next(ticks)
        )
        for _ in range(2):
            ledger.emit("span-start", "scan")
            ledger.emit("span-end", "scan")
        tree = build_span_tree(ledger.events)
        assert tree.children["scan"].count == 2
        assert tree.children["scan"].seconds == 2.0


class TestRenderTrace:
    def test_contains_all_sections(self):
        text = render_trace(_sample_ledger().events)
        assert "phase tree" in text
        assert "attack" in text
        assert "slowest" in text
        assert "cache hit rate: 50.0%" in text
        assert "messages / (t²/32): 5.000" in text

    def test_slowest_rounds_ranked_by_wall_time(self):
        text = render_trace(_sample_ledger().events, slowest=1)
        # Round 2 (4 ms) outranks round 1 (1 ms).
        assert "slowest 1 rounds" in text
        slowest_section = text.split("slowest 1 rounds:")[1]
        assert "4000.0" in slowest_section

    def test_empty_ledger_renders(self):
        assert "0 events" in render_trace([])


class TestTrend:
    def _point(self, wall: float, rounds: int = 76) -> dict:
        return {
            "ts": 0.0,
            "label": "canary",
            "wall_seconds": wall,
            "rounds_simulated": rounds,
            "rounds_baseline": 168,
            "messages_observed": 22,
            "events": 101,
            "cache_hit_rate": 0.5,
            "violation": True,
        }

    def test_first_point_has_no_previous(self, tmp_path):
        path = str(tmp_path / "trend.jsonl")
        delta = append_trend(path, self._point(1.0))
        assert delta.previous is None
        assert delta.ok
        assert read_trend(path) == [self._point(1.0)]

    def test_regression_flagged_beyond_threshold(self, tmp_path):
        path = str(tmp_path / "trend.jsonl")
        append_trend(path, self._point(1.0))
        delta = append_trend(path, self._point(1.5), threshold=0.2)
        assert not delta.ok
        assert "wall_seconds" in delta.regressions[0]
        assert "REGRESSION" in delta.render()

    def test_within_threshold_not_flagged(self, tmp_path):
        path = str(tmp_path / "trend.jsonl")
        append_trend(path, self._point(1.0))
        delta = append_trend(path, self._point(1.1), threshold=0.2)
        assert delta.ok

    def test_deterministic_drift_noted(self, tmp_path):
        path = str(tmp_path / "trend.jsonl")
        append_trend(path, self._point(1.0, rounds=76))
        delta = append_trend(path, self._point(1.0, rounds=80))
        assert delta.ok  # drift is a note, not a regression
        assert any("rounds_simulated" in note for note in delta.notes)

    def test_trend_point_runs_canary(self):
        point = trend_point()
        assert point["violation"] is True
        assert point["rounds_simulated"] > 0
        assert point["events"] > 0
        assert point["wall_seconds"] > 0
