"""Tests for the span tracer: no-op guarantees and live ledger output."""

from repro.lowerbound.driver import attack_weak_consensus
from repro.obs.ledger import RunLedger
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NULL_TRACER, LedgerTracer, Tracer
from repro.protocols.subquadratic import ring_token_spec


class TestNullTracer:
    """The no-op default must be structurally zero-overhead."""

    def test_disabled(self):
        assert NULL_TRACER.enabled is False

    def test_span_returns_one_shared_context(self):
        # One preallocated nullcontext, never a fresh object per span.
        assert NULL_TRACER.span("a") is NULL_TRACER.span("b")

    def test_hooks_are_no_ops(self):
        NULL_TRACER.counter("x", value=3)
        NULL_TRACER.gauge("y", value=1.0)
        NULL_TRACER.artifact("z", ref="path")

    def test_no_round_observers(self):
        assert NULL_TRACER.round_observers(floor=2.0) == ()

    def test_untraced_attack_emits_zero_events(self):
        # The driver built with the default tracer must not create any
        # telemetry machinery: same outcome, no events anywhere.
        outcome = attack_weak_consensus(ring_token_spec(12, 8))
        ledger = RunLedger(run_id="check")
        traced = attack_weak_consensus(
            ring_token_spec(12, 8), tracer=LedgerTracer(ledger)
        )
        assert outcome == traced  # telemetry outside outcome equality
        assert len(ledger.events) > 0

    def test_default_tracer_is_base_instance(self):
        assert type(NULL_TRACER) is Tracer

    def test_untraced_driver_builds_no_telemetry_machinery(self):
        # The ≤1% overhead guarantee is structural: a default-built
        # driver holds no metrics registry and attaches zero trace
        # observers to engine runs, so the per-round cost is exactly
        # the pre-observability cost.
        from repro.lowerbound.driver import LowerBoundDriver

        driver = LowerBoundDriver(spec=ring_token_spec(12, 8))
        assert driver.tracer is NULL_TRACER
        assert driver._metrics is None
        assert driver._trace_observers == ()
        assert driver._engine_observers() == ()


class TestLedgerTracer:
    def test_span_pairs(self):
        ledger = RunLedger(run_id="r", clock=lambda: 0.0)
        tracer = LedgerTracer(ledger)
        with tracer.span("attack", n=8):
            with tracer.span("fault-free"):
                pass
        kinds = [(e.kind, e.name) for e in ledger.events]
        assert kinds == [
            ("span-start", "attack"),
            ("span-start", "fault-free"),
            ("span-end", "fault-free"),
            ("span-end", "attack"),
        ]
        assert ledger.events[0].attr("n") == 8

    def test_span_closes_on_exception(self):
        ledger = RunLedger(run_id="r", clock=lambda: 0.0)
        tracer = LedgerTracer(ledger)
        try:
            with tracer.span("attack"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert ledger.events[-1].kind == "span-end"

    def test_cell_id_stamped_on_every_event(self):
        ledger = RunLedger(run_id="r", clock=lambda: 0.0)
        tracer = LedgerTracer(ledger, cell_id="attack/silent/n8/t4")
        with tracer.span("attack"):
            tracer.counter("x")
            tracer.artifact("cert", ref="cert:1")
        assert all(
            e.cell_id == "attack/silent/n8/t4" for e in ledger.events
        )

    def test_traced_attack_covers_driver_phases(self):
        ledger = RunLedger(run_id="r")
        attack_weak_consensus(
            ring_token_spec(12, 8), tracer=LedgerTracer(ledger)
        )
        spans = {
            e.name for e in ledger.events if e.kind == "span-start"
        }
        assert {"attack", "fault-free", "isolation-scan"} <= spans
        names = {e.name for e in ledger.events}
        # Round telemetry and cache accounting ride along.
        assert "engine.round" in names
        assert "cache.misses" in names
        assert "bound.vs_floor" in names

    def test_round_events_carry_message_attrs(self):
        ledger = RunLedger(run_id="r")
        attack_weak_consensus(
            ring_token_spec(12, 8), tracer=LedgerTracer(ledger)
        )
        rounds = [
            e
            for e in ledger.events
            if e.kind == "counter" and e.name == "engine.round"
        ]
        assert rounds
        for event in rounds:
            assert event.attr("round") is not None
            assert event.attr("run") is not None
            assert event.attr("cum_messages") is not None

    def test_round_observer_streams_into_metrics(self):
        ledger = RunLedger(run_id="r")
        tracer = LedgerTracer(ledger)
        metrics = MetricsRegistry()
        (observer,) = tracer.round_observers(floor=2.0, metrics=metrics)
        from repro.protocols.weak_consensus import (
            broadcast_weak_consensus_spec,
        )
        spec = broadcast_weak_consensus_spec(4, 1)
        spec.run([0] * 4, observers=[observer])
        assert observer.rounds_seen > 0
        assert metrics.counter("engine.round_messages").total > 0
        assert metrics.histogram("engine.round_seconds").count > 0
        assert metrics.gauge("bound.vs_floor").value is not None
