"""Tests for the run ledger: events, persistence, the splice protocol."""

import pickle

import pytest

from repro.obs.ledger import (
    EVENT_KINDS,
    LedgerEvent,
    RunLedger,
    cell_label,
    new_run_id,
    order_signature,
    read_events,
)


class TestLedgerEvent:
    def test_json_round_trip(self):
        event = LedgerEvent(
            kind="counter",
            name="cache.hits",
            ts=1.5,
            value=3,
            run_id="abc",
            cell_id="attack/silent/n12/t8",
            worker_id=41,
            attrs=(("round", 2), ("run", 0)),
        )
        assert LedgerEvent.from_json(event.to_json()) == event

    def test_json_key_order_is_stable(self):
        event = LedgerEvent(kind="gauge", name="x", ts=0.0, value=1)
        keys = list(__import__("json").loads(event.to_json()))
        assert keys == [
            "ts",
            "kind",
            "name",
            "value",
            "run_id",
            "cell_id",
            "worker_id",
            "attrs",
        ]

    def test_attr_lookup(self):
        event = LedgerEvent(
            kind="counter", name="x", ts=0.0, attrs=(("round", 7),)
        )
        assert event.attr("round") == 7
        assert event.attr("absent", "d") == "d"

    def test_events_are_picklable(self):
        event = LedgerEvent(
            kind="span-start", name="attack", ts=0.0, attrs=(("n", 8),)
        )
        assert pickle.loads(pickle.dumps(event)) == event


class TestRunLedger:
    def test_emit_stamps_correlation_triple(self):
        ledger = RunLedger(run_id="r", worker_id=9, clock=lambda: 2.0)
        event = ledger.emit("counter", "x", value=1, cell_id="c")
        assert (event.run_id, event.cell_id, event.worker_id) == (
            "r",
            "c",
            9,
        )
        assert event.ts == 2.0

    def test_emit_rejects_unknown_kind(self):
        ledger = RunLedger(run_id="r")
        with pytest.raises(ValueError, match="unknown event kind"):
            ledger.emit("bogus", "x")

    def test_all_kinds_accepted(self):
        ledger = RunLedger(run_id="r")
        for kind in EVENT_KINDS:
            ledger.emit(kind, "x")
        assert len(ledger) == len(EVENT_KINDS)

    def test_splice_rewrites_run_id_keeps_worker_id(self):
        parent = RunLedger(run_id="parent", worker_id=1)
        worker = RunLedger(run_id="scratch", worker_id=77)
        worker.emit("counter", "x", value=1)
        worker.emit("gauge", "y", value=2.0)
        assert parent.splice(worker.segment()) == 2
        assert [e.run_id for e in parent.events] == ["parent"] * 2
        assert [e.worker_id for e in parent.events] == [77, 77]

    def test_write_and_read_round_trip(self, tmp_path):
        ledger = RunLedger(run_id="r", worker_id=3, clock=lambda: 0.0)
        ledger.emit("span-start", "attack", n=12)
        ledger.emit("span-end", "attack")
        path = str(tmp_path / "run.jsonl")
        ledger.write(path)
        assert read_events(path) == ledger.events

    def test_random_run_ids_are_distinct(self):
        assert new_run_id() != new_run_id()


class TestHelpers:
    def test_cell_label(self):
        assert (
            cell_label(("attack", "silent", 12, 8))
            == "attack/silent/n12/t8"
        )

    def test_order_signature_ignores_timing_and_worker(self):
        a = RunLedger(run_id="a", worker_id=1, clock=lambda: 1.0)
        b = RunLedger(run_id="b", worker_id=2, clock=lambda: 9.0)
        for ledger in (a, b):
            ledger.emit("counter", "x", value=5, cell_id="c")
            ledger.emit("gauge", "y", value=1.0)
        assert order_signature(a.events) == order_signature(b.events)
