"""Tests for adaptive adversaries (footnote 1 of the paper)."""

import pytest

from repro.errors import AdversaryError
from repro.protocols.dolev_strong import dolev_strong_spec
from repro.protocols.weak_consensus import broadcast_weak_consensus_spec
from repro.sim.adversary import (
    AdaptiveOmissionAdversary,
    ChattiestTargetAdversary,
)
from repro.sim.execution import check_execution, check_transitions


class TestAdaptiveBase:
    def test_starts_uncorrupted(self):
        assert AdaptiveOmissionAdversary(2).corrupted == frozenset()

    def test_corrupt_is_monotone_and_bounded(self):
        adversary = AdaptiveOmissionAdversary(2)
        adversary.corrupt(1)
        adversary.corrupt(1)  # idempotent
        adversary.corrupt(4)
        assert adversary.corrupted == {1, 4}
        with pytest.raises(AdversaryError, match="exhausted"):
            adversary.corrupt(2)

    def test_budget_validated_against_t(self):
        adversary = AdaptiveOmissionAdversary(5)
        with pytest.raises(AdversaryError, match="exceeds t"):
            adversary.validate_budget(8, 3)

    def test_negative_budget_rejected(self):
        with pytest.raises(AdversaryError, match="negative"):
            AdaptiveOmissionAdversary(-1)


class TestChattiestTarget:
    def test_targets_the_broadcaster(self):
        """In Dolev–Strong the designated sender talks first; the
        adaptive adversary silences it from round 2."""
        spec = dolev_strong_spec(5, 2)
        adversary = ChattiestTargetAdversary(budget=1)
        execution = spec.run(["v", 0, 0, 0, 0], adversary)
        assert 0 in execution.faulty
        # The trace is still a valid omission execution of the protocol.
        check_execution(execution)
        check_transitions(execution, spec.factory)

    def test_agreement_survives_adaptive_attack(self):
        """Byzantine-resilient protocols shrug off adaptive omissions
        within budget — the lower bound is about cost, not possibility."""
        spec = broadcast_weak_consensus_spec(6, 2)
        adversary = ChattiestTargetAdversary(budget=2)
        execution = spec.run_uniform(0, adversary)
        correct = {
            execution.decision(pid) for pid in execution.correct
        }
        assert len(correct) == 1
        assert None not in correct

    def test_corruption_set_is_recorded_in_the_trace(self):
        spec = broadcast_weak_consensus_spec(6, 2)
        adversary = ChattiestTargetAdversary(budget=2)
        execution = spec.run_uniform(0, adversary)
        assert execution.faulty == adversary.corrupted
        assert len(execution.faulty) <= 2

    def test_deterministic_across_runs(self):
        spec = broadcast_weak_consensus_spec(6, 2)
        first = spec.run_uniform(0, ChattiestTargetAdversary(2))
        second = spec.run_uniform(0, ChattiestTargetAdversary(2))
        assert first.faulty == second.faulty
        assert first.decisions() == second.decisions()
