"""Tests for the §6 signature-complexity metric (Ω(nt) signatures)."""

from repro.crypto.chains import start_chain
from repro.crypto.keys import KeyRegistry
from repro.crypto.signatures import SignatureScheme
from repro.protocols.dolev_strong import dolev_strong_spec
from repro.protocols.phase_king import phase_king_spec
from repro.sim.metrics import (
    count_signatures,
    dolev_reischuk_signature_floor,
    signature_complexity,
)


class TestCountSignatures:
    def test_plain_payloads_have_none(self):
        assert count_signatures(("value", 1)) == 0
        assert count_signatures(None) == 0
        assert count_signatures(42) == 0

    def test_bare_signature(self):
        scheme = SignatureScheme(KeyRegistry(3))
        signature = scheme.signer_for(0).sign("m")
        assert count_signatures(signature) == 1
        assert count_signatures((signature, signature)) == 2

    def test_chain_counts_with_multiplicity(self):
        scheme = SignatureScheme(KeyRegistry(4))
        chain = start_chain(scheme.signer_for(0), "i", "v")
        chain = chain.extend(scheme.signer_for(1))
        chain = chain.extend(scheme.signer_for(2))
        assert count_signatures(chain) == 3
        assert count_signatures((chain,)) == 3

    def test_transaction_signature_counted(self):
        from repro.protocols.external_validity import ClientPool

        pool = ClientPool(clients=2)
        transaction = pool.issue(0, "body")
        assert count_signatures(transaction) == 1


class TestProtocolSignatureComplexity:
    def test_unauthenticated_protocol_carries_none(self):
        spec = phase_king_spec(4, 1)
        execution = spec.run_uniform(0)
        assert signature_complexity(execution) == 0

    def test_dolev_strong_meets_nt_floor(self):
        """The [51] signature bound: authenticated broadcast moves
        Ω(nt) signatures; Dolev–Strong does (round-2 relays alone carry
        2 signatures to each of n-1 receivers from n-1 relays)."""
        for n, t in [(6, 2), (8, 4), (12, 6)]:
            spec = dolev_strong_spec(n, t)
            execution = spec.run_uniform("v")
            signatures = signature_complexity(execution)
            assert signatures >= dolev_reischuk_signature_floor(n, t) / 4

    def test_signature_count_grows_with_n(self):
        small = dolev_strong_spec(6, 2).run_uniform("v")
        large = dolev_strong_spec(12, 2).run_uniform("v")
        assert signature_complexity(large) > signature_complexity(
            small
        )
