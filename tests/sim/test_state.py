"""Tests for repro.sim.state: the A.1 fragment/behavior formalism."""

import pytest

from repro.errors import ModelViolation
from repro.sim.message import Message
from repro.sim.state import (
    Behavior,
    Fragment,
    StateSnapshot,
    behavior_from_fragments,
    behaviors_indistinguishable,
    check_behavior,
    check_fragment,
    initial_state,
)


def state(pid=0, round_=1, proposal=0, decision=None):
    return StateSnapshot(
        process=pid, round=round_, proposal=proposal, decision=decision
    )


def fragment(pid=0, round_=1, **kwargs):
    return Fragment(state=state(pid, round_), **kwargs)


class TestStateSnapshot:
    def test_initial_state_has_round_one(self):
        s = initial_state(3, "v")
        assert (s.process, s.round, s.proposal, s.decision) == (
            3,
            1,
            "v",
            None,
        )

    def test_advanced_increments_round(self):
        s = state().advanced(None)
        assert s.round == 2

    def test_advanced_records_decision(self):
        s = state().advanced(1)
        assert s.decision == 1
        assert s.decided

    def test_decision_is_write_once(self):
        s = state(decision=0)
        with pytest.raises(ModelViolation, match="changed decision"):
            s.advanced(1)

    def test_redeciding_same_value_is_fine(self):
        assert state(decision=0).advanced(0).decision == 0

    def test_decision_survives_none(self):
        assert state(decision=1).advanced(None).decision == 1


class TestFragmentConditions:
    """One test per A.1.4 condition the checker enforces."""

    def test_valid_fragment_passes(self):
        check_fragment(
            fragment(
                sent=frozenset({Message(0, 1, 1, "x")}),
                received=frozenset({Message(2, 0, 1, "y")}),
            )
        )

    def test_condition3_wrong_round(self):
        bad = fragment(sent=frozenset({Message(0, 1, 2)}))
        with pytest.raises(ModelViolation, match="round"):
            check_fragment(bad)

    def test_condition4_sent_and_send_omitted_overlap(self):
        message = Message(0, 1, 1)
        bad = fragment(
            sent=frozenset({message}), send_omitted=frozenset({message})
        )
        with pytest.raises(ModelViolation, match="overlap"):
            check_fragment(bad)

    def test_condition5_received_and_receive_omitted_overlap(self):
        message = Message(1, 0, 1)
        bad = fragment(
            received=frozenset({message}),
            receive_omitted=frozenset({message}),
        )
        with pytest.raises(ModelViolation, match="overlap"):
            check_fragment(bad)

    def test_condition6_outgoing_sender_mismatch(self):
        bad = fragment(sent=frozenset({Message(1, 2, 1)}))
        with pytest.raises(ModelViolation, match="sender"):
            check_fragment(bad)

    def test_condition7_incoming_receiver_mismatch(self):
        bad = fragment(received=frozenset({Message(1, 2, 1)}))
        with pytest.raises(ModelViolation, match="receiver"):
            check_fragment(bad)

    def test_condition9_two_outgoing_to_one_receiver(self):
        bad = fragment(
            sent=frozenset({Message(0, 1, 1, "a")}),
            send_omitted=frozenset({Message(0, 1, 1, "b")}),
        )
        with pytest.raises(ModelViolation, match="one receiver"):
            check_fragment(bad)

    def test_condition10_two_incoming_from_one_sender(self):
        bad = fragment(
            received=frozenset({Message(1, 0, 1, "a")}),
            receive_omitted=frozenset({Message(1, 0, 1, "b")}),
        )
        with pytest.raises(ModelViolation, match="one sender"):
            check_fragment(bad)

    def test_all_outgoing_and_incoming(self):
        sent = Message(0, 1, 1, "s")
        omitted = Message(0, 2, 1, "o")
        received = Message(3, 0, 1, "r")
        frag = fragment(
            sent=frozenset({sent}),
            send_omitted=frozenset({omitted}),
            received=frozenset({received}),
        )
        assert frag.all_outgoing == {sent, omitted}
        assert frag.all_incoming == {received}
        assert frag.commits_fault


def simple_behavior(pid=0, rounds=3, proposal=0, decision_round=None):
    """A no-message behavior, optionally deciding `proposal` at a round."""
    fragments = []
    decision = None
    for round_ in range(1, rounds + 1):
        fragments.append(
            Fragment(state=state(pid, round_, proposal, decision))
        )
        if decision_round is not None and round_ == decision_round:
            decision = proposal
    final = state(pid, rounds + 1, proposal, decision)
    return Behavior(tuple(fragments), final_state=final)


class TestBehavior:
    def test_accessors(self):
        behavior = simple_behavior(pid=2, rounds=4, proposal=1)
        assert behavior.process == 2
        assert behavior.rounds == 4
        assert behavior.proposal == 1
        assert behavior.decision is None

    def test_decision_read_from_final_state(self):
        behavior = simple_behavior(rounds=3, decision_round=3)
        assert behavior.decision == 0
        assert behavior.decision_round == 3

    def test_decision_round_mid_behavior(self):
        behavior = simple_behavior(rounds=5, decision_round=2)
        assert behavior.decision_round == 2

    def test_prefix_shortens(self):
        behavior = simple_behavior(rounds=5, decision_round=2)
        prefix = behavior.prefix(3)
        assert prefix.rounds == 3
        assert prefix.decision == 0  # decided during round 2

    def test_prefix_full_length_is_identity(self):
        behavior = simple_behavior(rounds=3)
        assert behavior.prefix(3) is behavior

    def test_prefix_out_of_range(self):
        with pytest.raises(IndexError):
            simple_behavior(rounds=3).prefix(4)

    def test_check_behavior_accepts_valid(self):
        check_behavior(simple_behavior())

    def test_check_behavior_rejects_decided_start(self):
        bad = Behavior(
            (Fragment(state=state(decision=1)),),
            final_state=state(round_=2, decision=1),
        )
        with pytest.raises(ModelViolation, match="already decided"):
            check_behavior(bad)

    def test_check_behavior_rejects_proposal_change(self):
        fragments = (
            Fragment(state=state(proposal=0)),
            Fragment(state=state(round_=2, proposal=1)),
        )
        bad = Behavior(
            fragments, final_state=state(round_=3, proposal=1)
        )
        with pytest.raises(ModelViolation, match="proposal changed"):
            check_behavior(bad)

    def test_check_behavior_rejects_decision_change(self):
        fragments = (
            Fragment(state=state()),
            Fragment(state=state(round_=2, decision=0)),
            Fragment(state=state(round_=3, decision=1)),
        )
        bad = Behavior(
            fragments, final_state=state(round_=4, decision=1)
        )
        with pytest.raises(ModelViolation, match="decision changed"):
            check_behavior(bad)

    def test_check_behavior_rejects_bad_final_round(self):
        bad = Behavior(
            (Fragment(state=state()),),
            final_state=state(round_=5),
        )
        with pytest.raises(ModelViolation, match="final state"):
            check_behavior(bad)

    def test_behavior_from_fragments_checks(self):
        behavior = behavior_from_fragments(
            [Fragment(state=state())], final_state=state(round_=2)
        )
        assert behavior.rounds == 1


class TestIndistinguishability:
    def test_same_receipts_same_proposal(self):
        left = simple_behavior()
        right = simple_behavior()
        assert behaviors_indistinguishable(left, right)

    def test_different_proposal_distinguishes(self):
        assert not behaviors_indistinguishable(
            simple_behavior(proposal=0), simple_behavior(proposal=1)
        )

    def test_omissions_do_not_distinguish(self):
        """A process is unaware of its own receive-omissions (§3)."""
        message = Message(1, 0, 1)
        with_omission = Behavior(
            (
                Fragment(
                    state=state(),
                    receive_omitted=frozenset({message}),
                ),
            ),
            final_state=state(round_=2),
        )
        without = Behavior(
            (Fragment(state=state()),), final_state=state(round_=2)
        )
        assert behaviors_indistinguishable(with_omission, without)

    def test_different_receipt_distinguishes(self):
        message = Message(1, 0, 1)
        received = Behavior(
            (Fragment(state=state(), received=frozenset({message})),),
            final_state=state(round_=2),
        )
        silent = Behavior(
            (Fragment(state=state()),), final_state=state(round_=2)
        )
        assert not behaviors_indistinguishable(received, silent)

    def test_different_process_distinguishes(self):
        assert not behaviors_indistinguishable(
            simple_behavior(pid=0), simple_behavior(pid=1)
        )
