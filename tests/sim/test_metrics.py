"""Tests for repro.sim.metrics."""

import pytest

from repro.omission.isolation import isolate_group
from repro.protocols.byzantine_strategies import garbage, mute
from repro.protocols.phase_king import phase_king_spec
from repro.protocols.subquadratic import leader_echo_spec
from repro.protocols.weak_consensus import broadcast_weak_consensus_spec
from repro.sim.adversary import (
    ByzantineAdversary,
    ChattiestTargetAdversary,
    CrashAdversary,
    OmissionSchedule,
    ScheduledOmissionAdversary,
    SilenceAdversary,
)
from repro.sim.metrics import (
    ComplexityReport,
    StreamingComplexity,
    dolev_reischuk_floor,
    meets_lower_bound,
    quadratic_ratio,
)


class TestComplexityReport:
    def test_leader_echo_counts(self):
        spec = leader_echo_spec(5, 2)
        execution = spec.run_uniform(0)
        report = ComplexityReport.of(execution)
        # Round 1: 4 reports to the leader; round 2: 4 verdicts out.
        assert report.correct_messages == 8
        assert report.total_messages == 8
        assert report.per_round == {1: 4, 2: 4}
        assert report.per_sender[0] == 4  # the leader's broadcast

    def test_faulty_senders_excluded(self):
        spec = leader_echo_spec(5, 2)
        execution = spec.run_uniform(0, SilenceAdversary({1, 2}))
        report = ComplexityReport.of(execution)
        # p1 and p2's reports are send-omitted, so not even "sent".
        assert report.correct_messages == 2 + 4
        assert 1 not in report.per_sender
        assert 2 not in report.per_sender

    def test_matches_execution_method(self):
        spec = broadcast_weak_consensus_spec(5, 2)
        execution = spec.run_uniform(1)
        assert (
            ComplexityReport.of(execution).correct_messages
            == execution.message_complexity()
        )

    def test_payload_units_positive(self):
        spec = broadcast_weak_consensus_spec(4, 1)
        execution = spec.run_uniform(0)
        assert ComplexityReport.of(execution).payload_units > 0


class TestOmissionBreakdowns:
    """per_round / per_sender in the presence of omission faults."""

    def test_send_omissions_uncount_the_dropped_message(self):
        spec = leader_echo_spec(5, 2)
        adversary = ScheduledOmissionAdversary(
            {1, 2},
            OmissionSchedule(
                send_drops=lambda m: (m.sender, m.receiver, m.round)
                == (1, 0, 1),
                receive_drops=lambda m: False,
            ),
        )
        execution = spec.run_uniform(0, adversary)
        report = ComplexityReport.of(execution)
        # p1's round-1 report was send-omitted: gone from the totals.
        assert report.total_messages == 7
        # Correct senders: p3, p4 report in round 1; leader p0 sends 4
        # verdicts in round 2 (p1, p2 are faulty and never counted).
        assert report.correct_messages == 6
        assert report.per_round == {1: 2, 2: 4}
        assert report.per_sender == {0: 4, 3: 1, 4: 1}

    def test_receive_omissions_leave_sender_counts_intact(self):
        """A correct sender's message charged even when the (faulty)
        receiver omits it — §2 counts *sent* messages."""
        spec = broadcast_weak_consensus_spec(5, 2)
        fault_free = ComplexityReport.of(spec.run_uniform(1))
        execution = spec.run_uniform(1, isolate_group({3, 4}, 1))
        report = ComplexityReport.of(execution)
        omitted = [
            message
            for pid in (3, 4)
            for message in execution.behavior(pid).all_receive_omitted()
        ]
        assert omitted, "isolation must actually drop messages"
        for pid in (0, 1, 2):
            assert report.per_sender[pid] == fault_free.per_sender[pid]

    def test_mixed_omissions_breakdowns_are_consistent(self):
        spec = phase_king_spec(5, 1)
        adversary = ScheduledOmissionAdversary(
            {2},
            OmissionSchedule(
                send_drops=lambda m: m.round == 2,
                receive_drops=lambda m: m.round >= 4,
            ),
        )
        execution = spec.run_uniform(0, adversary)
        report = ComplexityReport.of(execution)
        assert report.correct_messages == sum(
            report.per_sender.values()
        )
        assert report.correct_messages == sum(
            report.per_round.values()
        )
        assert report.total_messages >= report.correct_messages
        assert 2 not in report.per_sender


class TestStreamingComplexity:
    SCENARIOS = {
        "no-fault": lambda spec: None,
        "silence": lambda spec: SilenceAdversary({1}),
        "scheduled": lambda spec: ScheduledOmissionAdversary(
            {1, 2},
            OmissionSchedule(
                send_drops=lambda m: m.round == 1 and m.sender == 1,
                receive_drops=lambda m: m.round == 2,
            ),
        ),
        "crash": lambda spec: CrashAdversary({2: 2}),
        "isolation": lambda spec: isolate_group({3, 4}, 2),
        "byzantine": lambda spec: ByzantineAdversary(
            {1, 4}, {1: mute(), 4: garbage()}
        ),
        "adaptive": lambda spec: ChattiestTargetAdversary(2),
    }

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_streaming_equals_post_hoc_walk(self, name):
        spec = broadcast_weak_consensus_spec(5, 2)
        streaming = StreamingComplexity()
        execution = spec.run_uniform(
            1, self.SCENARIOS[name](spec), observers=[streaming]
        )
        assert streaming.report() == ComplexityReport.of(execution)
        assert (
            streaming.correct_messages
            == execution.message_complexity()
        )

    def test_streaming_on_phase_king(self):
        spec = phase_king_spec(7, 2)
        streaming = StreamingComplexity()
        execution = spec.run_uniform(0, observers=[streaming])
        assert streaming.report() == ComplexityReport.of(execution)

    def test_adaptive_corruption_discounts_retroactively(self):
        """A process corrupted mid-run must not be charged at all —
        the §2 metric filters by the *final* faulty set."""
        spec = broadcast_weak_consensus_spec(5, 2)
        adversary = ChattiestTargetAdversary(2)
        streaming = StreamingComplexity()
        execution = spec.run_uniform(1, adversary, observers=[streaming])
        assert adversary.corrupted, "adaptive adversary must corrupt"
        report = streaming.report()
        for pid in adversary.corrupted:
            assert pid not in report.per_sender


class TestFloors:
    def test_dolev_reischuk_floor(self):
        assert dolev_reischuk_floor(8) == 2.0
        assert dolev_reischuk_floor(16) == 8.0

    def test_meets_lower_bound(self):
        spec = broadcast_weak_consensus_spec(10, 8)
        execution = spec.run_uniform(0)
        assert meets_lower_bound(execution)

    def test_quadratic_ratio(self):
        assert quadratic_ratio(64, 8) == 1.0
        assert quadratic_ratio(0, 8) == 0.0
        assert quadratic_ratio(5, 0) == float("inf")
        assert quadratic_ratio(0, 0) == 0.0
