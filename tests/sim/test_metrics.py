"""Tests for repro.sim.metrics."""

from repro.protocols.subquadratic import leader_echo_spec
from repro.protocols.weak_consensus import broadcast_weak_consensus_spec
from repro.sim.adversary import SilenceAdversary
from repro.sim.metrics import (
    ComplexityReport,
    dolev_reischuk_floor,
    meets_lower_bound,
    quadratic_ratio,
)


class TestComplexityReport:
    def test_leader_echo_counts(self):
        spec = leader_echo_spec(5, 2)
        execution = spec.run_uniform(0)
        report = ComplexityReport.of(execution)
        # Round 1: 4 reports to the leader; round 2: 4 verdicts out.
        assert report.correct_messages == 8
        assert report.total_messages == 8
        assert report.per_round == {1: 4, 2: 4}
        assert report.per_sender[0] == 4  # the leader's broadcast

    def test_faulty_senders_excluded(self):
        spec = leader_echo_spec(5, 2)
        execution = spec.run_uniform(0, SilenceAdversary({1, 2}))
        report = ComplexityReport.of(execution)
        # p1 and p2's reports are send-omitted, so not even "sent".
        assert report.correct_messages == 2 + 4
        assert 1 not in report.per_sender
        assert 2 not in report.per_sender

    def test_matches_execution_method(self):
        spec = broadcast_weak_consensus_spec(5, 2)
        execution = spec.run_uniform(1)
        assert (
            ComplexityReport.of(execution).correct_messages
            == execution.message_complexity()
        )

    def test_payload_units_positive(self):
        spec = broadcast_weak_consensus_spec(4, 1)
        execution = spec.run_uniform(0)
        assert ComplexityReport.of(execution).payload_units > 0


class TestFloors:
    def test_dolev_reischuk_floor(self):
        assert dolev_reischuk_floor(8) == 2.0
        assert dolev_reischuk_floor(16) == 8.0

    def test_meets_lower_bound(self):
        spec = broadcast_weak_consensus_spec(10, 8)
        execution = spec.run_uniform(0)
        assert meets_lower_bound(execution)

    def test_quadratic_ratio(self):
        assert quadratic_ratio(64, 8) == 1.0
        assert quadratic_ratio(0, 8) == 0.0
        assert quadratic_ratio(5, 0) == float("inf")
        assert quadratic_ratio(0, 0) == 0.0
