"""Tests for repro.sim.message."""

import pytest

from repro.sim.message import (
    Message,
    Outbox,
    broadcast_payload,
    check_one_per_receiver,
    check_one_per_sender,
    freeze,
    messages_by_slot,
    payload_size,
)


class TestMessage:
    def test_slot_identifies_message(self):
        message = Message(0, 1, 3, "hello")
        assert message.slot == (0, 1, 3)

    def test_rejects_self_message(self):
        with pytest.raises(ValueError, match="no process sends"):
            Message(2, 2, 1)

    def test_rejects_round_zero(self):
        with pytest.raises(ValueError, match="rounds start at 1"):
            Message(0, 1, 0)

    def test_equality_is_by_value(self):
        assert Message(0, 1, 1, "x") == Message(0, 1, 1, "x")
        assert Message(0, 1, 1, "x") != Message(0, 1, 1, "y")

    def test_hashable(self):
        assert len({Message(0, 1, 1), Message(0, 1, 1)}) == 1

    def test_with_payload_preserves_slot(self):
        message = Message(0, 1, 2, "a").with_payload("b")
        assert message.slot == (0, 1, 2)
        assert message.payload == "b"


class TestUniquenessChecks:
    def test_one_per_receiver_accepts_distinct(self):
        check_one_per_receiver(
            {Message(0, 1, 1), Message(0, 2, 1)}
        )

    def test_one_per_receiver_rejects_duplicates(self):
        with pytest.raises(ValueError, match="two messages to receiver"):
            check_one_per_receiver(
                {Message(0, 1, 1, "a"), Message(0, 1, 1, "b")}
            )

    def test_one_per_sender_accepts_distinct(self):
        check_one_per_sender(
            {Message(0, 2, 1), Message(1, 2, 1)}
        )

    def test_one_per_sender_rejects_duplicates(self):
        with pytest.raises(ValueError, match="two messages from sender"):
            check_one_per_sender(
                {Message(0, 2, 1, "a"), Message(0, 2, 1, "b")}
            )


class TestOutbox:
    def test_from_mapping_sorts_and_materializes(self):
        outbox = Outbox.from_mapping(1, 2, {3: "c", 0: "a"})
        messages = outbox.to_messages()
        assert messages == {
            Message(1, 0, 2, "a"),
            Message(1, 3, 2, "c"),
        }

    def test_rejects_self_target(self):
        with pytest.raises(ValueError, match="no process sends"):
            Outbox.from_mapping(1, 2, {1: "oops"})


class TestHelpers:
    def test_broadcast_payload_excludes_sender(self):
        mapping = broadcast_payload(1, 4, "v")
        assert mapping == {0: "v", 2: "v", 3: "v"}

    def test_messages_by_slot_rejects_duplicates(self):
        with pytest.raises(ValueError, match="duplicate slot"):
            messages_by_slot(
                [Message(0, 1, 1, "a"), Message(0, 1, 1, "b")]
            )

    def test_freeze_none_is_empty(self):
        assert freeze(None) == frozenset()

    def test_freeze_set(self):
        assert freeze({Message(0, 1, 1)}) == frozenset(
            {Message(0, 1, 1)}
        )

    def test_payload_size_scalars(self):
        assert payload_size(None) == 1
        assert payload_size(7) == 1
        assert payload_size(True) == 1

    def test_payload_size_strings_scale(self):
        assert payload_size("abcd") == 4
        assert payload_size(b"abc") == 3

    def test_payload_size_tuple_recurses(self):
        assert payload_size(("ab", 1)) == 1 + 2 + 1
