"""Tests for repro.sim.execution: the A.1.6 execution guarantees."""

import pytest

from repro.errors import ModelViolation
from repro.protocols.subquadratic import leader_echo_spec
from repro.protocols.weak_consensus import broadcast_weak_consensus_spec
from repro.sim.adversary import CrashAdversary
from repro.sim.execution import (
    Execution,
    ExecutionSummary,
    check_execution,
    check_transitions,
    group_decisions,
    majority_decision,
    unanimous_decision,
)
from repro.sim.state import Behavior


def run_small(adversary=None):
    spec = broadcast_weak_consensus_spec(4, 2)
    return spec, spec.run_uniform(0, adversary)


class TestExecutionAccessors:
    def test_correct_is_complement_of_faulty(self):
        _, execution = run_small(CrashAdversary({3: 1}))
        assert execution.faulty == {3}
        assert execution.correct == {0, 1, 2}

    def test_decisions_and_proposals(self):
        _, execution = run_small()
        assert execution.proposals() == {pid: 0 for pid in range(4)}
        assert execution.correct_decisions() == {
            pid: 0 for pid in range(4)
        }

    def test_message_complexity_counts_correct_only(self):
        _, fault_free = run_small()
        _, crashed = run_small(CrashAdversary({1: 1}))
        # p1's sends are omitted from round 1; correct-only counting must
        # not exceed the fault-free total.
        assert (
            crashed.message_complexity()
            <= fault_free.message_complexity()
        )
        assert crashed.message_complexity() < crashed.n * (
            crashed.n - 1
        ) * (crashed.rounds + 1)

    def test_messages_in_round(self):
        _, execution = run_small()
        # Round 1: the designated sender broadcasts to n-1 processes.
        assert len(execution.messages_in_round(1)) == 3

    def test_prefix(self):
        _, execution = run_small()
        prefix = execution.prefix(1)
        assert prefix.rounds == 1
        check_execution(prefix)


class TestValidityChecker:
    def test_simulated_executions_pass(self):
        _, execution = run_small(CrashAdversary({2: 2}))
        check_execution(execution)

    def _tamper(self, execution, pid, mutate):
        """Replace p's behavior via `mutate(fragments) -> fragments`."""
        behavior = execution.behavior(pid)
        new_behavior = Behavior(
            tuple(mutate(list(behavior.fragments))),
            final_state=behavior.final_state,
        )
        behaviors = list(execution.behaviors)
        behaviors[pid] = new_behavior
        return Execution(
            n=execution.n,
            t=execution.t,
            faulty=execution.faulty,
            behaviors=tuple(behaviors),
        )

    def test_detects_budget_overflow(self):
        _, execution = run_small()
        bloated = Execution(
            n=4,
            t=2,
            faulty=frozenset({0, 1, 2}),
            behaviors=execution.behaviors,
        )
        with pytest.raises(ModelViolation, match="exceeds t"):
            check_execution(bloated)

    def test_detects_send_validity_breach(self):
        _, execution = run_small()

        def drop_received(fragments):
            first = fragments[0]
            fragments[0] = first.replacing(received=frozenset())
            return fragments

        # p1 received the sender's round-1 message; erasing the receipt
        # (without a matching omission) breaks send-validity.
        tampered = self._tamper(execution, 1, drop_received)
        with pytest.raises(ModelViolation, match="send-validity"):
            check_execution(tampered)

    def test_detects_receive_validity_breach(self):
        from repro.sim.message import Message

        _, execution = run_small()

        def inject_ghost(fragments):
            first = fragments[0]
            ghost = Message(2, 1, 1, ("ghost",))
            fragments[0] = first.replacing(
                received=first.received | {ghost}
            )
            return fragments

        tampered = self._tamper(execution, 1, inject_ghost)
        with pytest.raises(ModelViolation, match="receive-validity"):
            check_execution(tampered)

    def test_detects_omission_validity_breach(self):
        spec = broadcast_weak_consensus_spec(4, 2)
        execution = spec.run_uniform(0, CrashAdversary({2: 1}))
        # Relabel the omitting process as correct.
        relabeled = Execution(
            n=4,
            t=2,
            faulty=frozenset(),
            behaviors=execution.behaviors,
        )
        with pytest.raises(ModelViolation, match="omission-validity"):
            check_execution(relabeled)


class TestTransitions:
    def test_replay_matches_recording(self):
        spec, execution = run_small(CrashAdversary({3: 2}))
        check_transitions(execution, spec.factory)

    def test_replay_detects_foreign_algorithm(self):
        _, execution = run_small()
        other = leader_echo_spec(4, 2)
        with pytest.raises(ModelViolation):
            check_transitions(execution, other.factory)


class TestGroupHelpers:
    def test_group_decisions(self):
        _, execution = run_small()
        assert group_decisions(execution, [1, 3]) == {1: 0, 3: 0}

    def test_unanimous_decision(self):
        _, execution = run_small()
        assert unanimous_decision(execution, [0, 1, 2, 3]) == 0

    def test_unanimous_rejects_undecided(self):
        spec = leader_echo_spec(4, 2)
        # Horizon 1: nobody decided yet.
        execution = spec.run_uniform(0, rounds=1)
        with pytest.raises(ModelViolation, match="undecided"):
            unanimous_decision(execution, [0])

    def test_majority_decision(self):
        _, execution = run_small()
        assert majority_decision(execution, [0, 1, 2]) == 0

    def test_majority_decision_none_without_majority(self):
        spec = leader_echo_spec(4, 2)
        execution = spec.run_uniform(0, rounds=1)
        assert majority_decision(execution, [0, 1]) is None


class TestSummary:
    def test_render_mentions_parameters(self):
        _, execution = run_small()
        text = ExecutionSummary.of(execution).render()
        assert "n=4" in text
        assert "t=2" in text
        assert "msgs(correct)=" in text
