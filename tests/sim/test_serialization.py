"""Tests for execution/witness JSON serialization."""

import pytest

from repro.errors import ReproError
from repro.lowerbound.driver import attack_weak_consensus
from repro.lowerbound.witnesses import verify_witness
from repro.protocols.dolev_strong import dolev_strong_spec
from repro.protocols.external_validity import ClientPool
from repro.protocols.phase_king import phase_king_spec
from repro.protocols.subquadratic import leader_echo_spec
from repro.sim.adversary import CrashAdversary
from repro.sim.execution import check_execution, check_transitions
from repro.sim.serialization import (
    decode_payload,
    dump_execution,
    dump_witness,
    encode_payload,
    load_execution,
    load_witness,
)


class TestPayloadCodec:
    @pytest.mark.parametrize(
        "value",
        [
            None,
            True,
            False,
            0,
            -42,
            "text",
            b"\x00\xff",
            ("nested", (1, 2), None),
            frozenset({1, 2, 3}),
            frozenset({("a", 1), ("b", 2)}),
        ],
    )
    def test_roundtrip(self, value):
        assert decode_payload(encode_payload(value)) == value

    def test_bool_int_preserved(self):
        assert decode_payload(encode_payload(True)) is True
        assert decode_payload(encode_payload(1)) == 1

    def test_signature_roundtrip(self):
        from repro.crypto.keys import KeyRegistry
        from repro.crypto.signatures import SignatureScheme

        scheme = SignatureScheme(KeyRegistry(3))
        signature = scheme.signer_for(1).sign("m")
        restored = decode_payload(encode_payload(signature))
        assert restored == signature
        assert scheme.verify(restored, "m")

    def test_chain_roundtrip(self):
        from repro.crypto.chains import start_chain, verify_chain
        from repro.crypto.keys import KeyRegistry
        from repro.crypto.signatures import SignatureScheme

        scheme = SignatureScheme(KeyRegistry(3))
        chain = start_chain(scheme.signer_for(0), "i", "v").extend(
            scheme.signer_for(1)
        )
        restored = decode_payload(encode_payload(chain))
        assert restored == chain
        assert verify_chain(scheme, restored, 0)

    def test_transaction_roundtrip(self):
        pool = ClientPool(clients=2)
        transaction = pool.issue(1, "body")
        restored = decode_payload(encode_payload(transaction))
        assert restored == transaction
        assert pool.validator()(restored)

    def test_unknown_type_rejected(self):
        with pytest.raises(ReproError, match="cannot serialize"):
            encode_payload(object())

    def test_malformed_record_rejected(self):
        with pytest.raises(ReproError, match="malformed"):
            decode_payload({"no": "kind"})
        with pytest.raises(ReproError, match="unknown payload kind"):
            decode_payload({"k": "mystery"})


class TestCanonicalEncoding:
    """Regression: artifacts must be byte-identical across interpreters.

    Set iteration order varies with hash randomization; the codec sorts
    unordered collections by :func:`canonical_json` of their encoded
    elements, so the rendering depends only on values.  Before that fix,
    a tuple nested inside a frozenset could legally encode in different
    element orders on different interpreters.
    """

    NESTED = "frozenset({('a', 1), ('b', 2), ('c', 3), (0, 9)})"

    def test_construction_order_irrelevant(self):
        forward = frozenset({("a", 1), ("b", 2), ("c", 3)})
        backward = frozenset({("c", 3), ("b", 2), ("a", 1)})
        assert encode_payload(forward) == encode_payload(backward)

    def test_canonical_json_ignores_key_insertion_order(self):
        from repro.sim.serialization import canonical_json

        assert canonical_json({"k": "lit", "v": 1}) == canonical_json(
            {"v": 1, "k": "lit"}
        )

    def test_nested_sets_sorted_by_value(self):
        record = encode_payload(
            frozenset({(2, frozenset({5, 6})), (1, frozenset({7}))})
        )
        # Sorted by canonical JSON of the encoded elements, so the
        # (1, ...) tuple always precedes the (2, ...) tuple.
        assert [entry["v"][0]["v"] for entry in record["v"]] == [1, 2]

    @pytest.mark.parametrize("seed", ["0", "1", "2"])
    def test_byte_identical_across_hash_seeds(self, seed, request):
        """The same payload renders identically under every hash seed —
        the property the old insertion-order sort key broke."""
        import json as json_module
        import pathlib
        import subprocess
        import sys

        import repro

        src = str(pathlib.Path(repro.__file__).resolve().parents[1])
        script = (
            "import json\n"
            "from repro.sim.serialization import ("
            "canonical_json, encode_payload)\n"
            f"value = (1, {self.NESTED}, b'\\x00')\n"
            "print(canonical_json(encode_payload(value)))\n"
        )
        completed = subprocess.run(
            [sys.executable, "-c", script],
            env={
                "PYTHONPATH": src,
                "PYTHONHASHSEED": seed,
                "PATH": "/usr/bin:/bin",
            },
            capture_output=True,
            text=True,
            check=True,
        )
        rendering = completed.stdout.strip()
        # In-process reference: same value, this interpreter's seed.
        from repro.sim.serialization import canonical_json

        expected = canonical_json(
            encode_payload((1, eval(self.NESTED), b"\x00"))
        )
        assert rendering == expected
        assert json_module.loads(rendering)  # stays valid JSON


class TestExecutionRoundtrip:
    def test_phase_king_execution(self):
        spec = phase_king_spec(4, 1)
        original = spec.run([0, 1, 1, 0], CrashAdversary({2: 3}))
        restored = load_execution(dump_execution(original))
        assert restored == original
        check_execution(restored)
        check_transitions(restored, spec.factory)

    def test_dolev_strong_with_signatures(self):
        """Chains in payloads survive the trip and still verify."""
        spec = dolev_strong_spec(4, 1)
        original = spec.run(["v", 0, 0, 0])
        restored = load_execution(dump_execution(original))
        assert restored == original
        check_transitions(restored, spec.factory)

    def test_deterministic_output(self):
        spec = phase_king_spec(4, 1)
        execution = spec.run([0, 1, 1, 0])
        assert dump_execution(execution) == dump_execution(execution)

    def test_bad_format_rejected(self):
        with pytest.raises(ReproError, match="unsupported"):
            load_execution('{"format": 99}')


class TestRoundtripProperty:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    @settings(max_examples=20, deadline=None)
    @given(
        corrupted=st.sets(st.integers(0, 6), min_size=1, max_size=2),
        drop_slots=st.sets(
            st.tuples(
                st.integers(0, 6),
                st.integers(0, 6),
                st.integers(1, 4),
            ),
            max_size=8,
        ),
    )
    def test_roundtrip_under_random_omissions(
        self, corrupted, drop_slots
    ):
        """Property: arbitrary omission-scarred traces survive the JSON
        trip exactly."""
        from repro.sim.adversary import (
            OmissionSchedule,
            ScheduledOmissionAdversary,
        )

        spec = phase_king_spec(7, 2)
        adversary = ScheduledOmissionAdversary(
            corrupted,
            OmissionSchedule(
                send_drops=lambda m: (
                    (m.sender, m.receiver, m.round) in drop_slots
                ),
                receive_drops=lambda m: (
                    (m.receiver, m.sender, m.round) in drop_slots
                ),
            ),
        )
        original = spec.run_uniform(1, adversary)
        restored = load_execution(dump_execution(original))
        assert restored == original


class TestWitnessRoundtrip:
    def test_witness_survives_and_reverifies(self):
        """The whole point: a shipped counterexample re-verifies on the
        other side against the protocol's code."""
        spec = leader_echo_spec(12, 8)
        outcome = attack_weak_consensus(spec)
        text = dump_witness(outcome.witness)
        restored = load_witness(text)
        assert restored.kind == outcome.witness.kind
        assert restored.culprit == outcome.witness.culprit
        verify_witness(restored, spec.factory)

    def test_tampered_witness_rejected_by_verifier(self):
        """Flipping the culprit's recorded decision in the artifact must
        be caught — either by the model checker (the receipt no longer
        matches a send) or by the replay checker."""
        import json

        from repro.errors import ModelViolation

        spec = leader_echo_spec(12, 8)
        outcome = attack_weak_consensus(spec)
        data = json.loads(dump_witness(outcome.witness))
        culprit = data["culprit"]
        final = data["execution"]["behaviors"][culprit]["final_state"]
        final["decision"] = {"k": "lit", "v": 0}  # forge agreement... 0==0
        forged = load_witness(json.dumps(data))
        with pytest.raises(ModelViolation):
            verify_witness(forged, spec.factory)
