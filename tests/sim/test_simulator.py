"""Tests for repro.sim.simulator: the round loop and trace recording."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ProtocolViolation
from repro.protocols.phase_king import phase_king_spec
from repro.protocols.weak_consensus import broadcast_weak_consensus_spec
from repro.sim.adversary import OmissionSchedule, ScheduledOmissionAdversary
from repro.sim.execution import check_execution, check_transitions
from repro.sim.process import Process
from repro.sim.simulator import (
    SimulationConfig,
    all_correct_decided,
    build_machines,
    decisions_by_value,
    run_execution,
    run_with_uniform_proposal,
)


class TestConfig:
    def test_rejects_zero_rounds(self):
        with pytest.raises(ValueError, match="at least one round"):
            SimulationConfig(n=3, t=1, rounds=0)

    def test_rejects_bad_system(self):
        with pytest.raises(ValueError):
            SimulationConfig(n=3, t=3, rounds=1)


class TestBuildMachines:
    def test_proposal_count_must_match(self):
        spec = phase_king_spec(4, 1)
        config = SimulationConfig(n=4, t=1, rounds=6)
        from repro.sim.adversary import NoFaults

        with pytest.raises(ValueError, match="expected 4 proposals"):
            build_machines(config, [0, 1], spec.factory, NoFaults())

    def test_misbehaving_factory_detected(self):
        config = SimulationConfig(n=3, t=1, rounds=1)
        spec = phase_king_spec(4, 1)

        def bad_factory(pid, proposal):
            return spec.factory((pid + 1) % 3, proposal)

        from repro.sim.adversary import NoFaults

        with pytest.raises(ProtocolViolation, match="wanted p0"):
            build_machines(config, [0, 0, 0], bad_factory, NoFaults())


class TestRoundLoop:
    def test_fault_free_run_decides(self):
        spec = phase_king_spec(4, 1)
        execution = spec.run([1, 0, 1, 1])
        assert all_correct_decided(execution)
        assert set(execution.correct_decisions().values()) == {1}

    def test_traces_are_model_valid(self):
        spec = phase_king_spec(4, 1)
        execution = spec.run([1, 0, 1, 1])
        check_execution(execution)
        check_transitions(execution, spec.factory)

    def test_uniform_helper(self):
        spec = phase_king_spec(4, 1)
        config = SimulationConfig(n=4, t=1, rounds=spec.rounds)
        execution = run_with_uniform_proposal(
            config, 1, spec.factory
        )
        assert execution.proposals() == {pid: 1 for pid in range(4)}

    def test_decisions_by_value(self):
        spec = phase_king_spec(4, 1)
        execution = spec.run_uniform(0)
        assert decisions_by_value(execution) == {0: [0, 1, 2, 3]}

    def test_horizon_is_respected(self):
        spec = phase_king_spec(4, 1)
        execution = spec.run_uniform(0, rounds=2)
        assert execution.rounds == 2


class _DoubleSender(Process):
    """Pathological machine: targets itself (illegal)."""

    def outgoing(self, round_):
        return {self.pid: "self"}

    def deliver(self, round_, received):
        return None


class TestProtocolPolicing:
    def test_self_message_raises(self):
        config = SimulationConfig(n=3, t=0, rounds=1)
        with pytest.raises(ProtocolViolation, match="self-message"):
            run_execution(
                config,
                [0, 0, 0],
                lambda pid, proposal: _DoubleSender(
                    pid, 3, 0, proposal
                ),
            )


@st.composite
def omission_schedules(draw):
    """Random per-slot omission patterns for a (5, 2) system, 4 rounds."""
    corrupted = draw(
        st.sets(st.integers(0, 4), min_size=1, max_size=2)
    )
    send_slots = draw(
        st.sets(
            st.tuples(
                st.sampled_from(sorted(corrupted)),
                st.integers(0, 4),
                st.integers(1, 4),
            ),
            max_size=10,
        )
    )
    receive_slots = draw(
        st.sets(
            st.tuples(
                st.integers(0, 4),
                st.sampled_from(sorted(corrupted)),
                st.integers(1, 4),
            ),
            max_size=10,
        )
    )
    return corrupted, send_slots, receive_slots


class TestRandomOmissions:
    @settings(max_examples=40, deadline=None)
    @given(omission_schedules())
    def test_any_omission_schedule_yields_valid_traces(self, data):
        """Property: arbitrary omission patterns still produce executions
        satisfying every A.1.6 condition, and replays match (A.1.5 #7)."""
        corrupted, send_slots, receive_slots = data
        spec = broadcast_weak_consensus_spec(5, 2)
        adversary = ScheduledOmissionAdversary(
            corrupted,
            OmissionSchedule(
                send_drops=lambda m: (
                    (m.sender, m.receiver, m.round) in send_slots
                ),
                receive_drops=lambda m: (
                    (m.sender, m.receiver, m.round) in receive_slots
                ),
            ),
        )
        execution = spec.run_uniform(0, adversary)
        check_execution(execution)
        check_transitions(execution, spec.factory)
        # Weak consensus under omissions: correct processes always agree.
        decisions = {
            execution.decision(pid) for pid in execution.correct
        }
        assert len(decisions) == 1
        assert None not in decisions
