"""Tests for repro.sim.process: determinism, replay, write-once decisions."""

import pytest

from repro.errors import ModelViolation, ProtocolViolation
from repro.protocols.phase_king import phase_king_spec
from repro.protocols.weak_consensus import broadcast_weak_consensus_spec
from repro.sim.adversary import CrashAdversary
from repro.sim.process import Process, ReplayProcess, drive_replay


class Echo(Process):
    """Minimal machine: broadcast the proposal once, decide it."""

    def outgoing(self, round_):
        if round_ == 1:
            return {
                pid: self.proposal
                for pid in range(self.n)
                if pid != self.pid
            }
        return {}

    def deliver(self, round_, received):
        if round_ == 1:
            self.decide(self.proposal)


class TestProcessBasics:
    def test_decide_is_write_once(self):
        machine = Echo(0, 3, 1, proposal=7)
        machine.decide(7)
        machine.decide(7)  # same value: no-op
        with pytest.raises(ProtocolViolation, match="changed decision"):
            machine.decide(8)

    def test_decide_none_rejected(self):
        machine = Echo(0, 3, 1, proposal=7)
        with pytest.raises(ProtocolViolation, match="None"):
            machine.decide(None)

    def test_snapshot_reflects_state(self):
        machine = Echo(2, 3, 1, proposal="v")
        snap = machine.snapshot(4)
        assert (snap.process, snap.round, snap.proposal) == (2, 4, "v")

    def test_validate_outgoing_rejects_self_message(self):
        machine = Echo(0, 3, 1, proposal=7)
        with pytest.raises(ProtocolViolation, match="self-message"):
            machine.validate_outgoing(1, {0: "x"})

    def test_validate_outgoing_rejects_unknown_receiver(self):
        machine = Echo(0, 3, 1, proposal=7)
        with pytest.raises(ValueError):
            machine.validate_outgoing(1, {9: "x"})


class TestDriveReplay:
    def test_replay_accepts_genuine_behavior(self):
        spec = phase_king_spec(4, 1)
        execution = spec.run([0, 1, 0, 1])
        for pid in range(4):
            machine = spec.factory(pid, execution.behavior(pid).proposal)
            drive_replay(machine, execution.behavior(pid))

    def test_replay_accepts_faulty_omission_behavior(self):
        """Omission-faulty processes still follow the state machine (§3)."""
        spec = broadcast_weak_consensus_spec(4, 2)
        execution = spec.run_uniform(0, CrashAdversary({1: 2}))
        machine = spec.factory(1, 0)
        drive_replay(machine, execution.behavior(1))

    def test_replay_rejects_wrong_proposal(self):
        spec = phase_king_spec(4, 1)
        execution = spec.run([0, 1, 0, 1])
        machine = spec.factory(0, 1)  # recorded proposal was 0
        with pytest.raises(ModelViolation, match="proposal"):
            drive_replay(machine, execution.behavior(0))

    def test_replay_rejects_wrong_machine(self):
        spec = phase_king_spec(4, 1)
        other = broadcast_weak_consensus_spec(4, 1)
        execution = spec.run([0, 1, 0, 1])
        machine = other.factory(0, 0)
        with pytest.raises(ModelViolation):
            drive_replay(machine, execution.behavior(0))

    def test_replay_rejects_pid_mismatch(self):
        spec = phase_king_spec(4, 1)
        execution = spec.run([0, 1, 0, 1])
        machine = spec.factory(1, 1)
        with pytest.raises(ModelViolation, match="machine p1"):
            drive_replay(machine, execution.behavior(0))


class TestReplayProcess:
    def test_reemits_recorded_sends(self):
        spec = phase_king_spec(4, 1)
        execution = spec.run([0, 1, 0, 1])
        behavior = execution.behavior(2)
        replay = ReplayProcess(2, 4, 1, behavior)
        for round_ in range(1, behavior.rounds + 1):
            expected = {
                message.receiver: message.payload
                for message in behavior.fragment(round_).all_outgoing
            }
            assert replay.outgoing(round_) == expected
            replay.deliver(round_, {})
        assert replay.decision == behavior.decision

    def test_silent_beyond_horizon(self):
        spec = phase_king_spec(4, 1)
        execution = spec.run([0, 1, 0, 1])
        replay = ReplayProcess(0, 4, 1, execution.behavior(0))
        assert replay.outgoing(execution.rounds + 5) == {}

    def test_rejects_foreign_behavior(self):
        spec = phase_king_spec(4, 1)
        execution = spec.run([0, 1, 0, 1])
        with pytest.raises(ValueError, match="behavior of p0"):
            ReplayProcess(1, 4, 1, execution.behavior(0))
