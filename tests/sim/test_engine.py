"""The event-driven round engine and its observers.

The heart of the suite is the golden-equivalence matrix: six executions
recorded by the pre-engine monolithic recorder (no-fault, scheduled
omission, isolation, crash, Byzantine substitution, garbage payloads)
are stored as JSON fixtures in ``tests/sim/golden/`` and must reproduce
``==``-equal through the engine's :class:`TraceRecorder` path.
"""

import json
import pathlib

import pytest

from repro.errors import ModelViolation
from repro.omission.isolation import isolate_group
from repro.protocols.byzantine_strategies import crash_at, garbage, mute
from repro.protocols.phase_king import phase_king_spec
from repro.protocols.weak_consensus import broadcast_weak_consensus_spec
from repro.sim.adversary import (
    ByzantineAdversary,
    CrashAdversary,
    NoFaults,
    OmissionSchedule,
    ScheduledOmissionAdversary,
)
from repro.sim.engine import (
    EarlyStopPolicy,
    IncrementalChecker,
    MachineCheckpointer,
    RoundEngine,
    RoundObserver,
    TraceRecorder,
    object_counts,
    object_counts_delta,
)
from repro.sim.process import Process
from repro.sim.serialization import load_execution
from repro.sim.simulator import (
    SimulationConfig,
    build_machines,
    resume_execution,
    run_execution,
)
from repro.sim.state import Fragment

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"

SEND_SLOTS = {(1, 0, 1), (1, 3, 2), (2, 4, 3)}
RECEIVE_SLOTS = {(0, 1, 2), (3, 2, 1), (4, 2, 4)}


def _omission_adversary():
    return ScheduledOmissionAdversary(
        {1, 2},
        OmissionSchedule(
            send_drops=lambda m: (m.sender, m.receiver, m.round)
            in SEND_SLOTS,
            receive_drops=lambda m: (m.sender, m.receiver, m.round)
            in RECEIVE_SLOTS,
        ),
    )


# Exactly the recipes that generated the fixtures with the pre-engine
# recorder; the engine must reproduce every trace bit for bit.
GOLDEN_SCENARIOS = {
    "phase_king_no_fault": lambda: phase_king_spec(4, 1).run(
        [1, 0, 1, 1]
    ),
    "weak_consensus_omission": lambda: broadcast_weak_consensus_spec(
        5, 2
    ).run_uniform(0, _omission_adversary()),
    "weak_consensus_isolation": lambda: broadcast_weak_consensus_spec(
        8, 4
    ).run_uniform(1, isolate_group({1, 2}, 2)),
    "phase_king_crash": lambda: phase_king_spec(5, 1).run_uniform(
        1, CrashAdversary({2: 2})
    ),
    "phase_king_byzantine": lambda: phase_king_spec(7, 2).run(
        [1, 0, 1, 1, 0, 1, 1],
        ByzantineAdversary({1, 3}, {1: mute(), 3: crash_at(2)}),
    ),
    "weak_consensus_garbage_byz": lambda: broadcast_weak_consensus_spec(
        5, 1
    ).run_uniform(0, ByzantineAdversary({2}, {2: garbage()})),
}


class TestGoldenEquivalence:
    @pytest.mark.parametrize("name", sorted(GOLDEN_SCENARIOS))
    def test_trace_recorder_matches_pre_engine_trace(self, name):
        golden = load_execution(
            (GOLDEN_DIR / f"{name}.json").read_text()
        )
        assert GOLDEN_SCENARIOS[name]() == golden

    @pytest.mark.parametrize("name", sorted(GOLDEN_SCENARIOS))
    def test_fixture_is_valid_json(self, name):
        json.loads((GOLDEN_DIR / f"{name}.json").read_text())


class _RoundProbe(RoundObserver):
    """Records the lifecycle calls an observer receives."""

    def __init__(self):
        self.started = False
        self.rounds = []
        self.ended = False
        self.final_corrupted = None

    def on_run_start(self, config, machines, adversary):
        self.started = True

    def on_round(self, event):
        self.rounds.append(event.round)

    def on_run_end(self, final_states, corrupted):
        self.ended = True
        self.final_corrupted = corrupted


def _engine(spec, proposal, adversary, observers, rounds=None):
    config = SimulationConfig(
        n=spec.n, t=spec.t, rounds=rounds or spec.rounds
    )
    machines = build_machines(
        config, [proposal] * spec.n, spec.factory, adversary
    )
    return RoundEngine(config, machines, adversary, observers)


class TestEngineEvents:
    def test_observers_see_every_round_in_order(self):
        spec = phase_king_spec(4, 1)
        probe = _RoundProbe()
        engine = _engine(spec, 1, NoFaults(), [probe])
        engine.run()
        assert probe.started and probe.ended
        assert probe.rounds == list(range(1, spec.rounds + 1))
        assert engine.rounds_run == spec.rounds
        assert not engine.stopped_early

    def test_event_carries_flat_sent_set_and_decisions(self):
        spec = broadcast_weak_consensus_spec(5, 1)

        class _Collector(RoundObserver):
            events = []

            def on_round(self, event):
                self.events.append(event)

        collector = _Collector()
        collector.events = []
        engine = _engine(spec, 1, NoFaults(), [collector])
        engine.run()
        first = collector.events[0]
        # Round 1 of the broadcast protocol: p0 broadcasts its proposal.
        assert len(first.all_sent) == spec.n - 1
        assert {message.sender for message in first.all_sent} == {0}
        assert first.all_sent == frozenset().union(
            *(fragment.sent for fragment in first.fragments)
        )
        last = collector.events[-1]
        assert all(
            decision is not None for decision in last.decisions
        )

    def test_first_round_bounds_validated(self):
        spec = phase_king_spec(4, 1)
        config = SimulationConfig(n=4, t=1, rounds=spec.rounds)
        machines = build_machines(
            config, [1] * 4, spec.factory, NoFaults()
        )
        with pytest.raises(ValueError, match="first_round"):
            RoundEngine(
                config,
                machines,
                NoFaults(),
                [],
                first_round=spec.rounds + 1,
            )


class _ProposalMutator(Process):
    """An invalid machine that silently rewrites its proposal mid-run."""

    def __init__(self, inner):
        super().__init__(inner.pid, inner.n, inner.t, inner.proposal)
        self._inner = inner

    def outgoing(self, round_):
        return self._inner.outgoing(round_)

    def deliver(self, round_, received):
        self._inner.deliver(round_, received)
        if round_ == 2:
            self.proposal = 1 - self.proposal


class TestIncrementalChecker:
    def test_clean_runs_pass(self):
        spec = phase_king_spec(4, 1)
        probe = _RoundProbe()
        engine = _engine(
            spec, 0, NoFaults(), [IncrementalChecker(), probe]
        )
        engine.run()
        assert probe.rounds == list(range(1, spec.rounds + 1))

    def test_fails_fast_at_the_offending_round(self):
        """A proposal mutation at round 2 must abort at round 2, not
        after the horizon — the whole point of incremental checking."""
        spec = broadcast_weak_consensus_spec(4, 1)
        config = SimulationConfig(n=4, t=1, rounds=spec.rounds + 4)
        machines = [
            _ProposalMutator(spec.factory(pid, 0)) if pid == 2
            else spec.factory(pid, 0)
            for pid in range(4)
        ]
        probe = _RoundProbe()
        engine = RoundEngine(
            config,
            machines,
            NoFaults(),
            [probe, IncrementalChecker()],
        )
        with pytest.raises(ModelViolation, match="proposal changed"):
            engine.run()
        assert max(probe.rounds) == 3  # first snapshot showing round-2 edit

    def test_flags_uncorrupted_omissions(self):
        """Omissions by a process outside the corruption set violate
        omission-validity; the checker sees them via the event sets."""
        spec = broadcast_weak_consensus_spec(4, 1)
        # The engine itself never produces omissions for uncorrupted
        # processes, so feed the checker a hand-built event directly.
        checker = IncrementalChecker()
        execution = spec.run_uniform(1)
        checker._t = spec.t
        checker._proposals = [1] * 4
        checker._decisions = [None] * 4
        # In round 2 every process hears the round-1 broadcast; recast
        # p1's received messages as receive-omissions while the event
        # claims nobody is corrupted.
        fragment = execution.behavior(1).fragment(2)
        assert fragment.received, "round 2 must carry inbound messages"
        bad = Fragment(
            state=fragment.state,
            sent=fragment.sent,
            send_omitted=frozenset(),
            received=frozenset(),
            receive_omitted=fragment.received,
        )
        from repro.sim.engine import RoundEvent

        fragments = [
            execution.behavior(pid).fragment(2) for pid in range(4)
        ]
        fragments[1] = bad
        event = RoundEvent(
            round=2,
            corrupted=frozenset(),
            fragments=tuple(fragments),
            all_sent=frozenset().union(*(f.sent for f in fragments)),
            decisions=(None,) * 4,
        )
        with pytest.raises(ModelViolation, match="omission-validity"):
            checker.on_round(event)


class TestEarlyStopPolicy:
    def test_stops_at_decision_round_under_padded_horizon(self):
        spec = phase_king_spec(4, 1)
        stopper = EarlyStopPolicy()
        probe = _RoundProbe()
        engine = _engine(
            spec, 1, NoFaults(), [stopper, probe],
            rounds=spec.rounds + 5,
        )
        engine.run()
        assert stopper.stopped_at == spec.rounds
        assert engine.stopped_early
        assert probe.rounds[-1] == spec.rounds

    def test_scope_all_waits_for_faulty_processes(self):
        """Isolated group members may decide later than the correct
        majority; scope='all' must keep running until they do."""
        spec = broadcast_weak_consensus_spec(6, 2)
        adversary = isolate_group({4, 5}, 1)
        correct_only = spec.run_uniform(
            1, isolate_group({4, 5}, 1),
            rounds=spec.rounds + 3, early_stop=True,
        )
        config = SimulationConfig(n=6, t=2, rounds=spec.rounds + 3)
        machines = build_machines(
            config, [1] * 6, spec.factory, adversary
        )
        recorder = TraceRecorder()
        stopper = EarlyStopPolicy(scope="all")
        RoundEngine(
            config, machines, adversary, [recorder, stopper]
        ).run()
        everyone = recorder.execution()
        assert everyone.rounds >= correct_only.rounds
        for pid in range(6):
            assert everyone.decision(pid) is not None

    def test_rejects_unknown_scope(self):
        with pytest.raises(ValueError, match="scope"):
            EarlyStopPolicy(scope="most")

    def test_truncated_execution_is_a_prefix_with_same_decisions(self):
        spec = phase_king_spec(5, 1)
        pad = spec.rounds + 4
        full = spec.run_uniform(0, rounds=pad)
        stopped = spec.run_uniform(0, rounds=pad, early_stop=True)
        assert stopped.rounds < pad
        assert stopped == full.prefix(stopped.rounds)
        for pid in range(spec.n):
            assert stopped.decision(pid) == full.decision(pid)


class TestCheckpointResume:
    @pytest.mark.parametrize("resume_at", [2, 3, 5])
    def test_resumed_isolation_equals_fresh_simulation(self, resume_at):
        """The driver's execution-reuse backbone: checkpoint the
        fault-free run, resume under isolation, and the stitched trace
        must equal the from-scratch isolated simulation exactly."""
        spec = phase_king_spec(6, 1)
        group = frozenset({5})
        config = SimulationConfig(n=6, t=1, rounds=spec.rounds)
        adversary = NoFaults()
        machines = build_machines(
            config, [1] * 6, spec.factory, adversary
        )
        recorder = TraceRecorder()
        checkpointer = MachineCheckpointer(rounds=[resume_at])
        RoundEngine(
            config, machines, adversary, [recorder, checkpointer]
        ).run()
        fault_free = recorder.execution()
        assert checkpointer.enabled
        assert checkpointer.has_checkpoint(resume_at)

        prefix = [
            [
                fault_free.behavior(pid).fragment(round_)
                for round_ in range(1, resume_at)
            ]
            for pid in range(6)
        ]
        resumed = resume_execution(
            config,
            checkpointer.checkpoint(resume_at),
            isolate_group(group, resume_at),
            prefix,
            resume_at,
        )
        fresh = spec.run_uniform(1, isolate_group(group, resume_at))
        assert resumed == fresh

    def test_checkpoints_are_independent_copies(self):
        spec = phase_king_spec(4, 1)
        config = SimulationConfig(n=4, t=1, rounds=spec.rounds)
        machines = build_machines(
            config, [0] * 4, spec.factory, NoFaults()
        )
        checkpointer = MachineCheckpointer(rounds=[2])
        RoundEngine(
            config, machines, NoFaults(), [checkpointer]
        ).run()
        first = checkpointer.checkpoint(2)
        second = checkpointer.checkpoint(2)
        assert first is not second
        assert first[0] is not second[0]
        # The live machines ran to the horizon; the snapshots did not.
        assert machines[0].decision is not None
        assert first[0].decision is None

    def test_unregistered_checkpointer_copies_nothing(self):
        """Lazy checkpointing: no registered rounds, no deep-copies."""
        spec = phase_king_spec(6, 1)
        config = SimulationConfig(n=6, t=1, rounds=spec.rounds)
        machines = build_machines(
            config, [1] * 6, spec.factory, NoFaults()
        )
        checkpointer = MachineCheckpointer()
        before = object_counts()
        RoundEngine(config, machines, NoFaults(), [checkpointer]).run()
        assert object_counts_delta(before)["machine_snapshots"] == 0
        for round_ in range(1, spec.rounds + 2):
            assert not checkpointer.has_checkpoint(round_)

    def test_only_registered_rounds_are_snapshotted(self):
        spec = phase_king_spec(6, 1)
        config = SimulationConfig(n=6, t=1, rounds=spec.rounds)
        machines = build_machines(
            config, [1] * 6, spec.factory, NoFaults()
        )
        checkpointer = MachineCheckpointer(rounds=[2])
        checkpointer.register([4])
        before = object_counts()
        RoundEngine(config, machines, NoFaults(), [checkpointer]).run()
        # Two snapshots of six machines each, and nothing else.
        assert object_counts_delta(before)["machine_snapshots"] == 12
        assert checkpointer.has_checkpoint(2)
        assert checkpointer.has_checkpoint(4)
        assert not checkpointer.has_checkpoint(3)


class TestSimulatorEntryPoints:
    def test_run_execution_unchanged_for_legacy_callers(self):
        spec = phase_king_spec(4, 1)
        config = SimulationConfig(n=4, t=1, rounds=spec.rounds)
        execution = run_execution(
            config, [1, 0, 1, 1], spec.factory
        )
        assert execution == spec.run([1, 0, 1, 1])

    def test_observers_kwarg_reaches_the_engine(self):
        spec = phase_king_spec(4, 1)
        probe = _RoundProbe()
        spec.run_uniform(1, observers=[probe])
        assert probe.rounds == list(range(1, spec.rounds + 1))
        assert probe.final_corrupted == frozenset()
