"""Tests for repro.sim.adversary."""

import pytest

from repro.errors import AdversaryError
from repro.protocols.byzantine_strategies import mute
from repro.protocols.weak_consensus import broadcast_weak_consensus_spec
from repro.sim.adversary import (
    Adversary,
    ByzantineAdversary,
    CrashAdversary,
    NoFaults,
    OmissionSchedule,
    ScheduledOmissionAdversary,
    SilenceAdversary,
    compose_omissions,
)
from repro.sim.message import Message


class TestBaseAdversary:
    def test_no_faults_is_empty(self):
        assert NoFaults().corrupted == frozenset()

    def test_budget_validation(self):
        adversary = Adversary({0, 1, 2})
        with pytest.raises(AdversaryError, match="corrupts 3"):
            adversary.validate_budget(5, 2)
        adversary.validate_budget(5, 3)

    def test_budget_validation_range(self):
        with pytest.raises(AdversaryError, match="outside range"):
            Adversary({7}).validate_budget(5, 3)

    def test_default_never_interferes(self):
        adversary = Adversary({0})
        message = Message(0, 1, 1)
        assert not adversary.send_omits(message)
        assert not adversary.receive_omits(message)
        assert (
            adversary.corrupt_machine(0, lambda p, v: None, 0) is None
        )


class TestCrashAdversary:
    def test_drops_everything_from_crash_round(self):
        adversary = CrashAdversary({1: 3})
        assert not adversary.send_omits(Message(1, 0, 2))
        assert adversary.send_omits(Message(1, 0, 3))
        assert adversary.receive_omits(Message(0, 1, 5))
        assert not adversary.receive_omits(Message(0, 1, 1))

    def test_other_processes_unaffected(self):
        adversary = CrashAdversary({1: 1})
        assert not adversary.send_omits(Message(2, 0, 5))

    def test_crashed_process_stops_participating(self):
        spec = broadcast_weak_consensus_spec(5, 2)
        execution = spec.run_uniform(0, CrashAdversary({2: 1}))
        assert execution.behavior(2).all_sent() == frozenset()
        # The protocol survives: all correct decide 0.
        assert set(execution.correct_decisions().values()) == {0}


class TestSilenceAdversary:
    def test_mutes_corrupted_sends_only(self):
        adversary = SilenceAdversary({3})
        assert adversary.send_omits(Message(3, 0, 1))
        assert not adversary.send_omits(Message(0, 3, 1))
        assert not adversary.receive_omits(Message(0, 3, 1))


class TestScheduledOmission:
    def test_schedule_is_honored(self):
        schedule = OmissionSchedule(
            send_drops=lambda m: m.receiver == 0,
            receive_drops=lambda m: m.round >= 2,
        )
        adversary = ScheduledOmissionAdversary({1}, schedule)
        assert adversary.send_omits(Message(1, 0, 1))
        assert not adversary.send_omits(Message(1, 2, 1))
        assert adversary.receive_omits(Message(0, 1, 2))


class TestByzantineAdversary:
    def test_strategy_substitutes_machine(self):
        adversary = ByzantineAdversary({1}, {1: mute()})
        spec = broadcast_weak_consensus_spec(4, 1)
        machine = adversary.corrupt_machine(1, spec.factory, 0)
        assert machine is not None
        assert machine.outgoing(1) == {}

    def test_corrupted_without_strategy_stays_honest(self):
        adversary = ByzantineAdversary({1})
        spec = broadcast_weak_consensus_spec(4, 1)
        assert adversary.corrupt_machine(1, spec.factory, 0) is None

    def test_rejects_strategy_for_uncorrupted(self):
        with pytest.raises(AdversaryError, match="non-corrupted"):
            ByzantineAdversary({1}, {2: mute()})


class TestComposition:
    def test_composed_drops_if_any_component_drops(self):
        early = CrashAdversary({0: 1})
        late = CrashAdversary({1: 3})
        combined = compose_omissions({0, 1}, early, late)
        assert combined.send_omits(Message(0, 2, 1))
        assert combined.send_omits(Message(1, 2, 4))
        assert not combined.send_omits(Message(1, 2, 1))
