"""Adversarial tests of the execution checker: random trace mutations.

The Appendix-A validity checker is itself load-bearing (it certifies the
violation witnesses), so it gets fuzzed: take a genuine execution, apply
a random semantics-breaking mutation, and assert the checker rejects it.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ModelViolation
from repro.protocols.phase_king import phase_king_spec
from repro.sim.execution import Execution, check_execution
from repro.sim.message import Message
from repro.sim.state import Behavior


def base_execution():
    spec = phase_king_spec(4, 1)
    return spec.run([0, 1, 0, 1])


def replace_behavior(execution, pid, behavior):
    behaviors = list(execution.behaviors)
    behaviors[pid] = behavior
    return Execution(
        n=execution.n,
        t=execution.t,
        faulty=execution.faulty,
        behaviors=tuple(behaviors),
    )


def mutate_fragment(execution, pid, round_, mutate):
    behavior = execution.behavior(pid)
    fragments = list(behavior.fragments)
    fragments[round_ - 1] = mutate(fragments[round_ - 1])
    return replace_behavior(
        execution,
        pid,
        Behavior(tuple(fragments), final_state=behavior.final_state),
    )


class TestMutationRejection:
    @settings(max_examples=30, deadline=None)
    @given(
        pid=st.integers(0, 3),
        round_=st.integers(1, 6),
        victim=st.integers(0, 3),
    )
    def test_erasing_a_receipt_is_detected(self, pid, round_, victim):
        """Dropping a received message without a matching omission
        breaks send-validity (or, if nothing was received, is a no-op)."""
        if pid == victim:
            victim = (victim + 1) % 4
        execution = base_execution()
        fragment = execution.behavior(pid).fragment(round_)
        target = next(
            (
                message
                for message in fragment.received
                if message.sender == victim
            ),
            None,
        )
        if target is None:
            return  # nothing to erase this round
        mutated = mutate_fragment(
            execution,
            pid,
            round_,
            lambda f: f.replacing(received=f.received - {target}),
        )
        with pytest.raises(ModelViolation):
            check_execution(mutated)

    @settings(max_examples=30, deadline=None)
    @given(
        pid=st.integers(0, 3),
        round_=st.integers(1, 6),
        sender=st.integers(0, 3),
        marker=st.integers(),
    )
    def test_injecting_a_ghost_message_is_detected(
        self, pid, round_, sender, marker
    ):
        """A received message nobody sent breaks receive-validity."""
        if pid == sender:
            sender = (sender + 1) % 4
        execution = base_execution()
        fragment = execution.behavior(pid).fragment(round_)
        if any(
            message.sender == sender
            for message in fragment.all_incoming
        ):
            return  # slot occupied; injection would break condition 10
        ghost = Message(sender, pid, round_, ("ghost", marker))
        mutated = mutate_fragment(
            execution,
            pid,
            round_,
            lambda f: f.replacing(received=f.received | {ghost}),
        )
        with pytest.raises(ModelViolation):
            check_execution(mutated)

    @settings(max_examples=20, deadline=None)
    @given(pid=st.integers(0, 3), round_=st.integers(1, 6))
    def test_omitting_without_corruption_is_detected(self, pid, round_):
        """Moving a sent message to send-omitted without marking the
        process faulty breaks omission-validity (and send-validity for
        the receiver's record)."""
        execution = base_execution()
        fragment = execution.behavior(pid).fragment(round_)
        if not fragment.sent:
            return
        target = sorted(fragment.sent, key=lambda m: m.receiver)[0]
        mutated = mutate_fragment(
            execution,
            pid,
            round_,
            lambda f: f.replacing(
                sent=f.sent - {target},
                send_omitted=f.send_omitted | {target},
            ),
        )
        with pytest.raises(ModelViolation):
            check_execution(mutated)

    def test_unmutated_execution_passes(self):
        check_execution(base_execution())
