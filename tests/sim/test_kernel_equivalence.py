"""Differential tests: the bitmask kernel vs the object engine.

The kernel's correctness claim is *representational*: for every
kernel-compilable adversary the mask run must materialize an
:class:`Execution` record equal — fragment for fragment, message for
message — to what the object engine records, with matching §2 message
complexity.  Three enforcement arms:

* golden bit-identity — kernel traces equal the committed fixtures in
  ``tests/sim/golden/`` (the same fixtures the object engine is held
  to);
* the :class:`KernelOracle` observer — a shadow kernel stepping in
  lock-step with live engine rounds;
* Hypothesis differential runs — randomized thinned protocols under
  randomized isolation adversaries, executed in both engines.
"""

import pathlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ModelViolation
from repro.omission.isolation import IsolationAdversary, isolate_group
from repro.omission.masks import compile_omissions
from repro.protocols.phase_king import phase_king_spec
from repro.protocols.subquadratic import ring_token_spec
from repro.protocols.weak_consensus import broadcast_weak_consensus_spec
from repro.sim.adversary import (
    Adversary,
    ByzantineAdversary,
    NoFaults,
    OmissionSchedule,
    ScheduledOmissionAdversary,
)
from repro.sim.engine import EarlyStopPolicy, object_counts, object_counts_delta
from repro.sim.execution import check_execution
from repro.sim.kernel import (
    KernelOracle,
    PrefixForker,
    fork_kernel,
    no_faults_compiled,
    run_kernel,
)
from repro.sim.metrics import ComplexityReport
from repro.sim.process import Process
from repro.sim.serialization import load_execution
from repro.sim.simulator import SimulationConfig, run_execution

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"


def _kernel_uniform(spec, bit, adversary=None, *, early_stop=None):
    compiled = compile_omissions(adversary, spec.n)
    assert compiled is not None
    config = SimulationConfig(
        n=spec.n, t=spec.t, rounds=spec.rounds, check=True
    )
    return run_kernel(
        config,
        [bit] * spec.n,
        spec.factory,
        compiled,
        early_stop=early_stop,
    )


class TestGoldenBitIdentity:
    """Kernel traces must equal the committed golden fixtures."""

    def test_phase_king_no_fault(self):
        spec = phase_king_spec(4, 1)
        config = SimulationConfig(
            n=4, t=1, rounds=spec.rounds, check=True
        )
        trace = run_kernel(
            config, [1, 0, 1, 1], spec.factory, no_faults_compiled(4)
        )
        golden = load_execution(
            (GOLDEN_DIR / "phase_king_no_fault.json").read_text()
        )
        assert trace.to_execution() == golden

    def test_weak_consensus_isolation(self):
        spec = broadcast_weak_consensus_spec(8, 4)
        trace = _kernel_uniform(spec, 1, isolate_group({1, 2}, 2))
        golden = load_execution(
            (GOLDEN_DIR / "weak_consensus_isolation.json").read_text()
        )
        assert trace.to_execution() == golden


class TestCompilation:
    def test_no_faults_compiles(self):
        compiled = compile_omissions(NoFaults(), 6)
        assert compiled is not None
        assert compiled.corrupted == frozenset()
        assert compiled.thresholds == (None,) * 6
        assert compiled.restricted == ((1 << 6) - 1,) * 6

    def test_none_means_no_faults(self):
        assert compile_omissions(None, 4) == compile_omissions(
            NoFaults(), 4
        )

    def test_isolation_compiles_per_group(self):
        adversary = IsolationAdversary({(1, 2): 3, (4,): 2})
        compiled = compile_omissions(adversary, 6)
        assert compiled is not None
        assert compiled.corrupted == frozenset({1, 2, 4})
        assert compiled.thresholds == (None, 3, 3, None, 2, None)
        assert compiled.restricted[1] == compiled.restricted[2] == 0b110
        assert compiled.restricted[4] == 0b10000
        assert compiled.restricted[0] == (1 << 6) - 1

    @pytest.mark.parametrize(
        "adversary",
        [
            ByzantineAdversary({1}, {}),
            ScheduledOmissionAdversary(
                {1}, OmissionSchedule(
                    send_drops=lambda m: True,
                    receive_drops=lambda m: False,
                )
            ),
        ],
        ids=["byzantine", "scheduled"],
    )
    def test_richer_adversaries_do_not_compile(self, adversary):
        assert compile_omissions(adversary, 4) is None

    def test_adversary_subclass_does_not_compile(self):
        # Nominal compilation: a subclass may override any hook.
        class Custom(Adversary):
            pass

        assert compile_omissions(Custom(), 4) is None


class TestEngineEquivalence:
    """Full executions equal in both engines, complexity included."""

    CASES = [
        ("phase_king_nofault", lambda: phase_king_spec(7, 2), 1, None),
        (
            "phase_king_isolated",
            lambda: phase_king_spec(7, 2),
            0,
            isolate_group({2, 3}, 2),
        ),
        (
            "ring_token_isolated",
            lambda: ring_token_spec(12, 8),
            1,
            isolate_group({8, 9}, 3),
        ),
        (
            "weak_consensus_round1",
            lambda: broadcast_weak_consensus_spec(8, 4),
            0,
            isolate_group({5, 6, 7}, 1),
        ),
    ]

    @pytest.mark.parametrize(
        "spec_fn,bit,adversary",
        [case[1:] for case in CASES],
        ids=[case[0] for case in CASES],
    )
    def test_execution_and_complexity_equal(self, spec_fn, bit, adversary):
        spec = spec_fn()
        reference = spec.run_uniform(bit, adversary)
        trace = _kernel_uniform(spec, bit, adversary)
        execution = trace.to_execution()
        assert execution == reference
        check_execution(execution)
        assert (
            trace.message_complexity()
            == ComplexityReport.of(reference).correct_messages
        )

    def test_early_stop_equivalence(self):
        spec = phase_king_spec(7, 2)
        adversary = isolate_group({2, 3}, 2)
        reference = spec.run_uniform(
            1, adversary, observers=[EarlyStopPolicy(scope="all")]
        )
        trace = _kernel_uniform(spec, 1, adversary, early_stop="all")
        assert trace.rounds_run == reference.rounds
        assert trace.to_execution() == reference

    def test_limb_boundary_n65(self):
        # n=65 needs a second limb; nothing in the kernel may assume a
        # single machine word.
        spec = broadcast_weak_consensus_spec(65, 4)
        adversary = isolate_group({63, 64}, 1)
        reference = spec.run_uniform(1, adversary)
        trace = _kernel_uniform(spec, 1, adversary)
        assert trace.to_execution() == reference

    def test_fork_equals_fresh(self):
        spec = ring_token_spec(12, 8)
        config = SimulationConfig(
            n=12, t=8, rounds=spec.rounds, check=True
        )
        base = run_kernel(
            config, [0] * 12, spec.factory, no_faults_compiled(12)
        )
        forker = PrefixForker(config, [0] * 12, spec.factory, base)
        for from_round in (2, 4, 2):
            adversary = isolate_group({8, 9}, from_round)
            machines, _ = forker.machines_at(from_round)
            assert machines is not None
            forked = fork_kernel(
                config,
                machines,
                compile_omissions(adversary, 12),
                base,
                from_round,
            )
            assert forked.to_execution() == spec.run_uniform(0, adversary)

    def test_kernel_counters_accumulate(self):
        spec = phase_king_spec(7, 2)
        before = object_counts()
        trace = _kernel_uniform(spec, 1, None)
        trace.message_complexity()
        delta = object_counts_delta(before)
        # 4 masks per process per round, one popcount per correct
        # sender per round.
        assert delta["masks_built"] == 4 * 7 * trace.rounds_run
        assert delta["popcounts"] == 7 * trace.rounds_run


class TestKernelOracle:
    def test_oracle_accepts_isolated_run(self):
        spec = phase_king_spec(7, 2)
        oracle = KernelOracle()
        execution = spec.run_uniform(
            1, isolate_group({2, 3}, 2), observers=[oracle]
        )
        assert oracle.rounds_checked == execution.rounds

    def test_oracle_accepts_fault_free_run(self):
        spec = ring_token_spec(12, 8)
        oracle = KernelOracle()
        execution = spec.run_uniform(0, observers=[oracle])
        assert oracle.rounds_checked == execution.rounds

    def test_oracle_rejects_uncompilable_adversary(self):
        spec = phase_king_spec(5, 1)
        adversary = ScheduledOmissionAdversary(
            {1}, OmissionSchedule(
                send_drops=lambda m: False,
                receive_drops=lambda m: False,
            )
        )
        with pytest.raises(ValueError, match="does not compile"):
            spec.run_uniform(1, adversary, observers=[KernelOracle()])

    def test_oracle_catches_divergence(self):
        # Prove the check has teeth: make the shadow kernel compile a
        # *different* adversary than the engine actually runs — the
        # first round where the isolation bites must blow up.
        class Swapped(KernelOracle):
            def on_run_start(self, config, machines, adversary):
                super().on_run_start(
                    config, machines, isolate_group({1, 2}, 1)
                )

        spec = broadcast_weak_consensus_spec(6, 2)
        with pytest.raises(ModelViolation, match="kernel oracle"):
            spec.run_uniform(1, observers=[Swapped()])


class ThinnedFlood(Process):
    """A deterministic protocol with a pseudo-random message pattern.

    Round ``j``'s send set is a pure hash of ``(pid, receiver, j,
    seed)``; payloads fold in the delivery history so any divergence in
    delivered messages cascades into later rounds (making the
    differential test sensitive to ordering and omission mistakes, not
    just message counts).  Decides its running digest at the horizon.
    """

    def __init__(self, pid, n, t, proposal, seed, rounds):
        super().__init__(pid, n, t, proposal)
        self._seed = seed
        self._rounds = rounds
        self._digest = hash((pid, proposal)) & 0xFFFF

    def outgoing(self, round_):
        out = {}
        for receiver in range(self.n):
            if receiver == self.pid:
                continue
            h = (
                self.pid * 1103515245
                + receiver * 12345
                + round_ * 2654435761
                + self._seed
            ) & 0xFFFFFFFF
            if h % 3:
                out[receiver] = (self.proposal, self._digest)
        return out

    def deliver(self, round_, received):
        for sender in sorted(received):
            _, digest = received[sender]
            self._digest = (
                self._digest * 31 + digest + sender
            ) & 0xFFFF
        if round_ >= self._rounds and self.decision is None:
            self.decide(self._digest & 1)


@st.composite
def _thinned_case(draw):
    n = draw(st.integers(min_value=3, max_value=12))
    rounds = draw(st.integers(min_value=1, max_value=5))
    seed = draw(st.integers(min_value=0, max_value=2**20))
    group_size = draw(st.integers(min_value=1, max_value=max(1, n // 2)))
    members = frozenset(
        draw(
            st.lists(
                st.integers(min_value=0, max_value=n - 1),
                min_size=group_size,
                max_size=group_size,
                unique=True,
            )
        )
    )
    from_round = draw(st.integers(min_value=1, max_value=rounds + 2))
    bit = draw(st.integers(min_value=0, max_value=1))
    return n, rounds, seed, members, from_round, bit


@given(_thinned_case())
@settings(max_examples=60, deadline=None)
def test_differential_thinned_protocols(case):
    n, rounds, seed, members, from_round, bit = case
    t = max(len(members), 1)
    config = SimulationConfig(n=n, t=t, rounds=rounds, check=True)

    def factory(pid, proposal):
        return ThinnedFlood(pid, n, t, proposal, seed, rounds)

    proposals = [bit] * n
    adversary = isolate_group(members, from_round)
    reference = run_execution(config, proposals, factory, adversary)
    compiled = compile_omissions(adversary, n)
    assert compiled is not None
    trace = run_kernel(config, proposals, factory, compiled)
    assert trace.to_execution() == reference
    assert (
        trace.message_complexity()
        == ComplexityReport.of(reference).correct_messages
    )
    assert trace.decisions() == tuple(
        reference.decision(pid) for pid in range(n)
    )
