"""Early stopping is observationally sound (satellite of the engine PR).

``EarlyStopPolicy`` halts a run once every correct process has decided.
Soundness claim: against the *same* adversary, the truncated run and the
full-horizon run agree on every decision and on the §2 message metric,
because a deterministic machine that has decided in a quiet protocol
sends nothing new afterwards.  Exercised here over a small ``(n, t)``
grid for both seed protocols, with the horizon padded past the
protocol's own ``rounds`` so the stop is actually early.
"""

import pytest

from repro.protocols.phase_king import phase_king_spec
from repro.protocols.weak_consensus import broadcast_weak_consensus_spec
from repro.sim.adversary import NoFaults, SilenceAdversary
from repro.sim.metrics import ComplexityReport
from repro.sim.simulator import SimulationConfig, run_execution

PADDING = 3

GRID = [
    ("weak-consensus", broadcast_weak_consensus_spec, 4, 1),
    ("weak-consensus", broadcast_weak_consensus_spec, 5, 2),
    ("weak-consensus", broadcast_weak_consensus_spec, 6, 2),
    ("phase-king", phase_king_spec, 4, 1),
    ("phase-king", phase_king_spec, 5, 1),
    ("phase-king", phase_king_spec, 7, 2),
]


def _run_padded(spec, bit, adversary, *, early_stop):
    config = SimulationConfig(
        n=spec.n, t=spec.t, rounds=spec.rounds + PADDING
    )
    return run_execution(
        config,
        [bit] * spec.n,
        spec.factory,
        adversary,
        early_stop=early_stop,
    )


@pytest.mark.parametrize(
    "family, build, n, t",
    GRID,
    ids=[f"{name}-{n}-{t}" for name, _, n, t in GRID],
)
@pytest.mark.parametrize("bit", [0, 1])
def test_early_stop_matches_full_horizon(family, build, n, t, bit):
    spec = build(n, t)
    full = _run_padded(spec, bit, NoFaults(), early_stop=False)
    stopped = _run_padded(spec, bit, NoFaults(), early_stop=True)

    # The stop was genuinely early: the padded tail never ran.
    assert stopped.rounds < spec.rounds + PADDING
    assert full.rounds == spec.rounds + PADDING

    # Identical decisions for every process.
    for pid in range(n):
        assert stopped.decision(pid) == full.decision(pid)

    # Identical §2 message accounting, not just the totals.
    short = ComplexityReport.of(stopped)
    long = ComplexityReport.of(full)
    assert short.per_sender == long.per_sender
    assert short.per_round == long.per_round
    assert short.correct_messages == long.correct_messages


@pytest.mark.parametrize(
    "family, build, n, t",
    GRID,
    ids=[f"{name}-{n}-{t}" for name, _, n, t in GRID],
)
def test_early_stop_matches_under_faults(family, build, n, t):
    spec = build(n, t)
    full = _run_padded(
        spec, 1, SilenceAdversary({n - 1}), early_stop=False
    )
    stopped = _run_padded(
        spec, 1, SilenceAdversary({n - 1}), early_stop=True
    )
    assert stopped.rounds < full.rounds
    for pid in range(n):
        assert stopped.decision(pid) == full.decision(pid)
    assert (
        ComplexityReport.of(stopped) == ComplexityReport.of(full)
    )
