"""Direct tests of the fragment/behavior surgery lemmas (A.2, Lemmas 11-14).

Lemma 11: replacing a fragment's receive-omitted set with any set
satisfying the five local side-conditions yields a fragment.
Lemma 12: re-splitting the outgoing messages between sent and
send-omitted yields a fragment.
Lemmas 13/14 lift both to whole behaviors.  These are exactly the moves
``swap_omission`` makes; here they are property-tested in isolation.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.protocols.phase_king import phase_king_spec
from repro.sim.adversary import CrashAdversary
from repro.sim.state import Behavior, check_behavior, check_fragment


def recorded_behavior(pid=1):
    spec = phase_king_spec(4, 1)
    execution = spec.run([0, 1, 1, 0], CrashAdversary({1: 3}))
    return execution.behavior(pid)


class TestLemma11ReceiveOmittedSurgery:
    @settings(max_examples=30, deadline=None)
    @given(data=st.data())
    def test_any_incoming_resplit_is_a_fragment(self, data):
        """Moving messages between received and receive-omitted (keeping
        their union) always satisfies the ten fragment conditions."""
        behavior = recorded_behavior()
        round_ = data.draw(
            st.integers(1, behavior.rounds), label="round"
        )
        fragment = behavior.fragment(round_)
        incoming = sorted(
            fragment.all_incoming, key=lambda m: m.sender
        )
        keep = data.draw(
            st.sets(st.sampled_from(incoming), max_size=len(incoming))
            if incoming
            else st.just(set()),
            label="received-subset",
        )
        surgered = fragment.replacing(
            received=frozenset(keep),
            receive_omitted=frozenset(incoming) - frozenset(keep),
        )
        check_fragment(surgered)

    @settings(max_examples=30, deadline=None)
    @given(data=st.data())
    def test_dropping_omissions_entirely_is_a_fragment(self, data):
        behavior = recorded_behavior()
        round_ = data.draw(st.integers(1, behavior.rounds))
        fragment = behavior.fragment(round_)
        surgered = fragment.replacing(
            receive_omitted=frozenset()
        )
        check_fragment(surgered)


class TestLemma12OutgoingSurgery:
    @settings(max_examples=30, deadline=None)
    @given(data=st.data())
    def test_any_outgoing_resplit_is_a_fragment(self, data):
        behavior = recorded_behavior()
        round_ = data.draw(st.integers(1, behavior.rounds))
        fragment = behavior.fragment(round_)
        outgoing = sorted(
            fragment.all_outgoing, key=lambda m: m.receiver
        )
        actually_sent = data.draw(
            st.sets(st.sampled_from(outgoing), max_size=len(outgoing))
            if outgoing
            else st.just(set()),
        )
        surgered = fragment.replacing(
            sent=frozenset(actually_sent),
            send_omitted=frozenset(outgoing)
            - frozenset(actually_sent),
        )
        check_fragment(surgered)


class TestLemmas13And14BehaviorLift:
    @settings(max_examples=20, deadline=None)
    @given(data=st.data())
    def test_per_round_surgery_lifts_to_behaviors(self, data):
        """Applying per-round incoming/outgoing re-splits to every
        fragment still yields a structurally valid behavior (states and
        transitions untouched — that is what lemmas 13/14 assert)."""
        behavior = recorded_behavior()
        fragments = []
        for fragment in behavior.fragments:
            incoming = sorted(
                fragment.all_incoming, key=lambda m: m.sender
            )
            keep = data.draw(
                st.sets(
                    st.sampled_from(incoming), max_size=len(incoming)
                )
                if incoming
                else st.just(set()),
            )
            fragments.append(
                fragment.replacing(
                    received=frozenset(keep),
                    receive_omitted=frozenset(incoming)
                    - frozenset(keep),
                )
            )
        surgered = Behavior(
            tuple(fragments), final_state=behavior.final_state
        )
        check_behavior(surgered)
