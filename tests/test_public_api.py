"""Sanity checks on the public API surface.

Every name exported through a package ``__all__`` must resolve; the
top-level package must expose version and error types.  Catches stale
exports before users do.
"""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.sim",
    "repro.crypto",
    "repro.omission",
    "repro.lowerbound",
    "repro.validity",
    "repro.solvability",
    "repro.reductions",
    "repro.protocols",
    "repro.analysis",
    "repro.certify",
]


class TestExports:
    @pytest.mark.parametrize("package_name", PACKAGES)
    def test_all_names_resolve(self, package_name):
        package = importlib.import_module(package_name)
        assert hasattr(package, "__all__")
        for name in package.__all__:
            assert hasattr(package, name), (
                f"{package_name}.__all__ exports unresolvable {name!r}"
            )

    @pytest.mark.parametrize("package_name", PACKAGES)
    def test_all_is_sorted_unique(self, package_name):
        package = importlib.import_module(package_name)
        names = list(package.__all__)
        assert len(names) == len(set(names)), (
            f"{package_name}.__all__ has duplicates"
        )

    def test_version_exposed(self):
        import repro

        assert repro.__version__


class TestDocstrings:
    @pytest.mark.parametrize("package_name", PACKAGES)
    def test_packages_documented(self, package_name):
        package = importlib.import_module(package_name)
        assert package.__doc__ and package.__doc__.strip()

    def test_every_public_symbol_documented(self):
        """Spot-check: exported classes/functions carry docstrings."""
        import repro.sim as sim

        import typing

        undocumented = [
            name
            for name in sim.__all__
            if callable(getattr(sim, name))
            and not getattr(sim, name).__doc__
            # typing aliases cannot carry runtime docstrings
            and not isinstance(
                getattr(sim, name), type(typing.Callable[[int], int])
            )
        ]
        assert undocumented == []
