"""Tests for the containment-set machinery and the Lemma-7 intersection."""

from repro.validity.containment import (
    admissible_under_containment,
    containment_set,
    contains,
)
from repro.validity.input_config import InputConfig
from repro.validity.standard import (
    strong_consensus_problem,
    weak_consensus_problem,
)


class TestContainmentHelpers:
    def test_contains_function_mirrors_method(self):
        a = InputConfig.full(3, 1, [0, 1, 1])
        b = a.restricted_to([0, 2])
        assert contains(a, b)
        assert not contains(b, a)

    def test_containment_set_is_list_with_self(self):
        config = InputConfig.full(3, 1, [0, 1, 1])
        assert config in containment_set(config)


class TestLemma7Intersection:
    def test_weak_consensus_full_unanimous(self):
        """For the all-zero full configuration, the intersection is {0}
        — deciding 1 would violate validity in the configuration itself."""
        problem = weak_consensus_problem(3, 1)
        config = InputConfig.full(3, 1, [0, 0, 0])
        assert admissible_under_containment(problem, config) == {0}

    def test_weak_consensus_mixed_full(self):
        """A mixed full configuration contains only non-binding
        sub-configurations, so everything is admissible."""
        problem = weak_consensus_problem(3, 1)
        config = InputConfig.full(3, 1, [0, 0, 1])
        assert admissible_under_containment(problem, config) == {0, 1}

    def test_strong_consensus_intersection_narrows(self):
        """A full configuration with a near-unanimous value contains the
        unanimous sub-configuration, which pins the decision."""
        problem = strong_consensus_problem(3, 1)
        config = InputConfig.full(3, 1, [1, 1, 0])
        # Contains {p0:1, p1:1} (unanimous 1) and {p0:1, p2:0} etc.
        # The intersection keeps only 1: the {1,1} sub-config forces it,
        # and no contained config forces 0 alone... unless one does:
        # {p1:1, p2:0} admits {0,1}; {p0:1,p2:0} admits {0,1}.
        assert admissible_under_containment(problem, config) == {1}

    def test_strong_consensus_empty_intersection_at_n_2t(self):
        """The Theorem-5 counterexample: the half-zeros/half-ones full
        configuration has an empty intersection at n = 2t."""
        problem = strong_consensus_problem(4, 2)
        config = InputConfig.full(4, 2, [0, 0, 1, 1])
        assert (
            admissible_under_containment(problem, config)
            == frozenset()
        )
