"""Tests for the triviality analysis (§4.1)."""

from repro.validity.standard import (
    constant_problem,
    external_validity_problem,
    strong_consensus_problem,
    weak_consensus_problem,
)
from repro.validity.triviality import is_trivial, triviality_report


class TestTrivialityReport:
    def test_trivial_problem_has_witness(self):
        report = triviality_report(constant_problem(3, 1, value=0))
        assert report.trivial
        assert report.witness == 0
        assert report.always_admissible == {0}

    def test_non_trivial_problem_has_no_witness(self):
        report = triviality_report(weak_consensus_problem(3, 1))
        assert not report.trivial
        assert report.witness is None
        assert report.always_admissible == frozenset()

    def test_external_validity_is_trivial_in_the_formalism(self):
        problem = external_validity_problem(
            3, 1, values=(0, 1, 2), predicate=lambda v: v != 0
        )
        report = triviality_report(problem)
        assert report.trivial
        assert report.always_admissible == {1, 2}
        assert report.witness == 1  # deterministic representative

    def test_predicate_form(self):
        assert is_trivial(constant_problem(3, 1, value=1))
        assert not is_trivial(strong_consensus_problem(3, 1))
