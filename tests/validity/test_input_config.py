"""Tests for input configurations and the containment relation (§4.1/4.2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.validity.containment import check_partial_order_axioms
from repro.validity.input_config import (
    InputConfig,
    count_input_configs,
    enumerate_full_configs,
    enumerate_input_configs,
)


class TestConstruction:
    def test_from_mapping(self):
        config = InputConfig.from_mapping(4, 1, {0: "a", 2: "b", 3: "c"})
        assert config.correct == {0, 2, 3}
        assert config.proposal(2) == "b"
        assert config.proposal(1) is None

    def test_full(self):
        config = InputConfig.full(3, 1, ["x", "y", "z"])
        assert config.is_full
        assert config.proposals_multiset() == ["x", "y", "z"]

    def test_full_requires_n_proposals(self):
        with pytest.raises(ValueError, match="full configuration"):
            InputConfig.full(3, 1, ["x"])

    def test_size_bounds_enforced(self):
        # Fewer than n - t pairs is not an input configuration.
        with pytest.raises(ValueError, match="between"):
            InputConfig.from_mapping(4, 1, {0: "a"})

    def test_sorted_unique_pairs_enforced(self):
        with pytest.raises(ValueError, match="sorted"):
            InputConfig(n=3, t=1, pairs=((1, "a"), (0, "b"), (2, "c")))
        with pytest.raises(ValueError, match="sorted"):
            InputConfig(n=3, t=1, pairs=((0, "a"), (0, "b"), (1, "c")))

    def test_out_of_range_pid(self):
        with pytest.raises(ValueError):
            InputConfig(n=3, t=1, pairs=((0, "a"), (1, "b"), (5, "c")))

    def test_hashable(self):
        a = InputConfig.full(3, 1, [0, 1, 0])
        b = InputConfig.full(3, 1, [0, 1, 0])
        assert len({a, b}) == 1


class TestContainment:
    def test_paper_example(self):
        """The §4.2 example with n = 3, t = 1."""
        full = InputConfig.full(3, 1, ["v1", "v2", "v3"])
        sub = InputConfig.from_mapping(3, 1, {0: "v1", 2: "v3"})
        changed = InputConfig.from_mapping(3, 1, {0: "v1", 2: "other"})
        assert full.contains(sub)
        assert not full.contains(changed)

    def test_reflexive(self):
        config = InputConfig.full(3, 1, [0, 0, 1])
        assert config.contains(config)

    def test_different_system_never_contains(self):
        a = InputConfig.full(3, 1, [0, 0, 0])
        b = InputConfig.full(4, 1, [0, 0, 0, 0])
        assert not a.contains(b)

    def test_containment_set_includes_self(self):
        config = InputConfig.full(3, 1, [0, 1, 1])
        contained = list(config.containment_set())
        assert config in contained

    def test_containment_set_size(self):
        # n=3, t=1: Cnt of a full config = itself + 3 two-element subsets.
        config = InputConfig.full(3, 1, [0, 1, 1])
        assert len(list(config.containment_set())) == 4

    def test_restricted_to(self):
        config = InputConfig.full(4, 2, ["a", "b", "c", "d"])
        sub = config.restricted_to([1, 3])
        assert sub.correct == {1, 3}
        assert config.contains(sub)


class TestEnumeration:
    def test_count_matches_formula(self):
        configs = list(enumerate_input_configs(4, 1, (0, 1)))
        assert len(configs) == count_input_configs(4, 1, 2)
        assert len(configs) == 4 * 8 + 16  # C(4,3)·2³ + 2⁴

    def test_all_unique(self):
        configs = list(enumerate_input_configs(4, 1, (0, 1)))
        assert len(set(configs)) == len(configs)

    def test_full_configs(self):
        fulls = list(enumerate_full_configs(3, 1, (0, 1)))
        assert len(fulls) == 8
        assert all(config.is_full for config in fulls)

    def test_empty_domain_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            list(enumerate_input_configs(3, 1, ()))


@st.composite
def configs(draw):
    n, t = 4, 2
    size = draw(st.integers(n - t, n))
    pids = draw(
        st.permutations(range(n)).map(lambda p: sorted(p[:size]))
    )
    values = draw(
        st.lists(
            st.integers(0, 1), min_size=size, max_size=size
        )
    )
    return InputConfig.from_mapping(n, t, dict(zip(pids, values)))


class TestPartialOrderProperty:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(configs(), min_size=1, max_size=6))
    def test_axioms_hold_on_random_samples(self, sample):
        assert check_partial_order_axioms(sample) == []

    @settings(max_examples=50, deadline=None)
    @given(configs(), configs())
    def test_containment_matches_subset_semantics(self, a, b):
        expected = set(b.pairs) <= set(a.pairs)
        assert a.contains(b) == expected
