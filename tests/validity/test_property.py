"""Tests for AgreementProblem and the val-function plumbing."""

import pytest

from repro.validity.input_config import InputConfig
from repro.validity.property import (
    AgreementProblem,
    cached,
    problem_from_table,
    tabulate,
)
from repro.validity.standard import weak_consensus_problem


class TestAgreementProblem:
    def test_rejects_empty_domains(self):
        with pytest.raises(ValueError, match="V_I"):
            AgreementProblem(
                name="x",
                n=3,
                t=1,
                input_values=(),
                output_values=(0,),
                validity=lambda c: frozenset([0]),
            )
        with pytest.raises(ValueError, match="V_O"):
            AgreementProblem(
                name="x",
                n=3,
                t=1,
                input_values=(0,),
                output_values=(),
                validity=lambda c: frozenset([0]),
            )

    def test_rejects_duplicate_domains(self):
        with pytest.raises(ValueError, match="duplicates"):
            AgreementProblem(
                name="x",
                n=3,
                t=1,
                input_values=(0, 0),
                output_values=(0,),
                validity=lambda c: frozenset([0]),
            )

    def test_admissible_checks_nonempty(self):
        problem = AgreementProblem(
            name="empty-val",
            n=3,
            t=1,
            input_values=(0, 1),
            output_values=(0, 1),
            validity=lambda c: frozenset(),
        )
        with pytest.raises(ValueError, match="empty"):
            problem.admissible(InputConfig.full(3, 1, [0, 0, 0]))

    def test_admissible_checks_domain(self):
        problem = AgreementProblem(
            name="stray-val",
            n=3,
            t=1,
            input_values=(0, 1),
            output_values=(0, 1),
            validity=lambda c: frozenset([7]),
        )
        with pytest.raises(ValueError, match="leaves V_O"):
            problem.admissible(InputConfig.full(3, 1, [0, 0, 0]))

    def test_check_decision(self):
        problem = weak_consensus_problem(3, 1)
        unanimous = InputConfig.full(3, 1, [0, 0, 0])
        assert problem.check_decision(unanimous, 0)
        assert not problem.check_decision(unanimous, 1)

    def test_always_admissible_for_weak_consensus_is_empty(self):
        assert weak_consensus_problem(3, 1).always_admissible() == (
            frozenset()
        )


class TestTableBackedProblems:
    def test_tabulate_roundtrip(self):
        problem = weak_consensus_problem(3, 1)
        table = tabulate(problem)
        rebuilt = problem_from_table(
            "rebuilt",
            3,
            1,
            problem.input_values,
            problem.output_values,
            table,
        )
        for config in problem.input_configs():
            assert rebuilt.admissible(config) == problem.admissible(
                config
            )

    def test_missing_entry_raises(self):
        problem = problem_from_table(
            "partial", 3, 1, (0, 1), (0, 1), {}
        )
        with pytest.raises(KeyError, match="no table entry"):
            problem.admissible(InputConfig.full(3, 1, [0, 0, 0]))


class TestCaching:
    def test_cached_preserves_semantics(self):
        calls = []

        def validity(config):
            calls.append(config)
            return frozenset([0, 1])

        problem = AgreementProblem(
            name="counting",
            n=3,
            t=1,
            input_values=(0, 1),
            output_values=(0, 1),
            validity=validity,
        )
        memoized = cached(problem)
        config = InputConfig.full(3, 1, [0, 1, 0])
        first = memoized.admissible(config)
        second = memoized.admissible(config)
        assert first == second
        assert len(calls) == 1
