"""Tests for the standard validity properties (§1, §4, §5)."""

import pytest

from repro.validity.input_config import InputConfig
from repro.validity.standard import (
    byzantine_broadcast_problem,
    constant_problem,
    correct_proposal_problem,
    external_validity_problem,
    interactive_consistency_problem,
    strong_consensus_problem,
    weak_consensus_problem,
)

N, T = 4, 1


def full(*values):
    return InputConfig.full(N, T, list(values))


def partial(mapping):
    return InputConfig.from_mapping(N, T, mapping)


class TestWeakValidity:
    def test_binds_only_on_full_unanimity(self):
        problem = weak_consensus_problem(N, T)
        assert problem.admissible(full(0, 0, 0, 0)) == {0}
        assert problem.admissible(full(1, 1, 1, 1)) == {1}
        assert problem.admissible(full(0, 1, 0, 0)) == {0, 1}

    def test_unconstrained_with_any_fault(self):
        problem = weak_consensus_problem(N, T)
        assert problem.admissible(
            partial({0: 0, 1: 0, 2: 0})
        ) == {0, 1}

    def test_non_trivial(self):
        assert not weak_consensus_problem(N, T).is_trivial()


class TestStrongValidity:
    def test_binds_on_correct_unanimity(self):
        problem = strong_consensus_problem(N, T)
        assert problem.admissible(partial({0: 1, 1: 1, 3: 1})) == {1}

    def test_unconstrained_on_split(self):
        problem = strong_consensus_problem(N, T)
        assert problem.admissible(full(0, 1, 1, 1)) == {0, 1}

    def test_stronger_than_weak(self):
        """Strong admissible sets are always ⊆ weak ones."""
        weak = weak_consensus_problem(N, T)
        strong = strong_consensus_problem(N, T)
        for config in strong.input_configs():
            assert strong.admissible(config) <= weak.admissible(
                config
            )


class TestSenderValidity:
    def test_correct_sender_forces_its_value(self):
        problem = byzantine_broadcast_problem(N, T, sender=0)
        assert problem.admissible(full(1, 0, 0, 0)) == {1}

    def test_faulty_sender_unconstrained(self):
        problem = byzantine_broadcast_problem(N, T, sender=0)
        admissible = problem.admissible(partial({1: 0, 2: 0, 3: 0}))
        assert admissible == {0, 1, "SENDER-FAULTY"}

    def test_non_trivial(self):
        assert not byzantine_broadcast_problem(N, T).is_trivial()


class TestICValidity:
    def test_decided_vector_contains_configuration(self):
        problem = interactive_consistency_problem(3, 1)
        config = partial_3 = InputConfig.from_mapping(
            3, 1, {0: 0, 2: 1}
        )
        for vector in problem.admissible(partial_3):
            assert vector[0] == 0
            assert vector[2] == 1

    def test_full_config_pins_the_vector(self):
        problem = interactive_consistency_problem(3, 1)
        assert problem.admissible(
            InputConfig.full(3, 1, [1, 0, 1])
        ) == {(1, 0, 1)}

    def test_non_trivial(self):
        assert not interactive_consistency_problem(3, 1).is_trivial()


class TestCorrectProposal:
    def test_admissible_equals_proposed(self):
        problem = correct_proposal_problem(N, T)
        assert problem.admissible(full(0, 0, 1, 0)) == {0, 1}
        assert problem.admissible(full(0, 0, 0, 0)) == {0}


class TestExternalValidity:
    def test_formalism_classifies_it_trivial(self):
        """§4.3's observation, mechanized."""
        problem = external_validity_problem(
            N, T, values=("good", "bad"), predicate=lambda v: v == "good"
        )
        assert problem.is_trivial()
        assert problem.always_admissible() == {"good"}

    def test_empty_predicate_rejected(self):
        with pytest.raises(ValueError, match="no value"):
            external_validity_problem(
                N, T, values=("a",), predicate=lambda v: False
            )


class TestConstant:
    def test_trivial_by_construction(self):
        problem = constant_problem(N, T, value=1)
        assert problem.is_trivial()
        assert problem.always_admissible() == {1}

    def test_value_must_be_in_domain(self):
        with pytest.raises(ValueError, match="not in"):
            constant_problem(N, T, value=9)
