"""Tests for repro.crypto.keys."""

import pytest

from repro.crypto.keys import KeyRegistry
from repro.errors import SignatureError


class TestKeyRegistry:
    def test_keys_are_deterministic(self):
        a = KeyRegistry(4, seed=b"s")
        b = KeyRegistry(4, seed=b"s")
        assert a.secret_key(2).material == b.secret_key(2).material

    def test_keys_differ_per_process(self):
        registry = KeyRegistry(4)
        assert (
            registry.secret_key(0).material
            != registry.secret_key(1).material
        )

    def test_keys_differ_per_seed(self):
        assert (
            KeyRegistry(4, seed=b"a").secret_key(0).material
            != KeyRegistry(4, seed=b"b").secret_key(0).material
        )

    def test_string_seed_accepted(self):
        assert (
            KeyRegistry(2, seed="x").secret_key(0).material
            == KeyRegistry(2, seed=b"x").secret_key(0).material
        )

    def test_unknown_process_rejected(self):
        with pytest.raises(SignatureError, match="no key"):
            KeyRegistry(3).secret_key(3)

    def test_corrupted_keys_subset(self):
        registry = KeyRegistry(5)
        keys = registry.corrupted_keys({1, 3})
        assert set(keys) == {1, 3}
        assert keys[1].owner == 1

    def test_repr_hides_material(self):
        key = KeyRegistry(2).secret_key(0)
        assert key.material.hex() not in repr(key)

    def test_rejects_empty_system(self):
        with pytest.raises(ValueError):
            KeyRegistry(0)
