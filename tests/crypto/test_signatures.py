"""Tests for repro.crypto.signatures (the idealized-signature boundary)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.keys import KeyRegistry
from repro.crypto.signatures import (
    Signature,
    SignatureScheme,
    canonical_bytes,
)
from repro.errors import SignatureError


@pytest.fixture
def scheme():
    return SignatureScheme(KeyRegistry(4, seed=b"test"))


class TestSignVerify:
    def test_roundtrip(self, scheme):
        signer = scheme.signer_for(1)
        signature = signer.sign(("hello", 42))
        assert scheme.verify(signature, ("hello", 42))

    def test_wrong_content_fails(self, scheme):
        signer = scheme.signer_for(1)
        signature = signer.sign(("hello", 42))
        assert not scheme.verify(signature, ("hello", 43))

    def test_claimed_signer_is_bound(self, scheme):
        """A tag made by p1 does not verify as p2 — no identity theft."""
        signature = scheme.signer_for(1).sign("m")
        forged = Signature(signer=2, tag=signature.tag)
        assert not scheme.verify(forged, "m")

    def test_unknown_signer_fails_closed(self, scheme):
        signature = Signature(signer=9, tag=b"\x00" * 32)
        assert not scheme.verify(signature, "m")

    def test_unencodable_content_fails_closed(self, scheme):
        signature = scheme.signer_for(0).sign("m")
        assert not scheme.verify(signature, object())

    def test_signer_pid(self, scheme):
        assert scheme.signer_for(3).pid == 3

    def test_signer_can_verify_others(self, scheme):
        signature = scheme.signer_for(0).sign("m")
        assert scheme.signer_for(1).verify(signature, "m")

    def test_signing_unencodable_raises(self, scheme):
        with pytest.raises(SignatureError, match="canonically encode"):
            scheme.signer_for(0).sign([1, 2, 3])


class TestCanonicalBytes:
    def test_supported_types(self):
        for value in (
            None,
            True,
            False,
            0,
            -17,
            "text",
            b"bytes",
            ("a", 1, None),
            frozenset({1, 2, 3}),
        ):
            assert isinstance(canonical_bytes(value), bytes)

    def test_bool_is_not_int(self):
        assert canonical_bytes(True) != canonical_bytes(1)

    def test_frozenset_order_independent(self):
        assert canonical_bytes(frozenset({1, 2})) == canonical_bytes(
            frozenset({2, 1})
        )

    def test_nested_tuples_distinguished(self):
        assert canonical_bytes((("a",), "b")) != canonical_bytes(
            ("a", ("b",))
        )

    def test_signature_encodable(self):
        scheme = SignatureScheme(KeyRegistry(2))
        signature = scheme.signer_for(0).sign("m")
        assert isinstance(canonical_bytes(signature), bytes)

    def test_canonical_content_hook(self):
        class Custom:
            def canonical_content(self):
                return ("custom", 1)

        assert canonical_bytes(Custom()) == b"O" + canonical_bytes(
            ("custom", 1)
        )

    def test_rejects_lists(self):
        with pytest.raises(SignatureError):
            canonical_bytes([1])

    _signable = st.recursive(
        # Bools are excluded from the generic domain: Python collapses
        # False/0 and True/1 inside sets, while the encoding (rightly)
        # distinguishes them — tested separately below.
        st.none()
        | st.integers()
        | st.text(max_size=20)
        | st.binary(max_size=20),
        lambda inner: st.tuples(inner, inner)
        | st.frozensets(inner, max_size=3),
        max_leaves=8,
    )

    @settings(max_examples=150, deadline=None)
    @given(_signable, _signable)
    def test_injective_on_samples(self, left, right):
        """Property: distinct values encode distinctly (no collisions that
        would let one signed statement verify as another)."""
        if left == right:
            assert canonical_bytes(left) == canonical_bytes(right)
        else:
            assert canonical_bytes(left) != canonical_bytes(right)

    def test_bool_int_set_collapse_is_distinguished(self):
        """The documented type-strictness quirk: Python deems these sets
        equal, the encoding does not — a deliberate safety choice."""
        collapsed_a = frozenset({False})
        collapsed_b = frozenset({0})
        assert collapsed_a == collapsed_b  # Python's view
        assert canonical_bytes(collapsed_a) != canonical_bytes(
            collapsed_b
        )


class TestForgeryResistance:
    @settings(max_examples=30, deadline=None)
    @given(st.binary(min_size=32, max_size=32))
    def test_random_tags_do_not_verify(self, tag):
        scheme = SignatureScheme(KeyRegistry(3, seed=b"forge"))
        genuine = scheme.signer_for(0).sign(("target", 1)).tag
        assert (
            not scheme.verify(Signature(signer=0, tag=tag), ("target", 1))
            or tag == genuine
        )


class TestCanonicalSetPolicy:
    """One frozenset canonicalization, shared with the artifact codec.

    ``canonical_bytes`` orders frozenset elements by the
    :mod:`repro.sim.serialization` sort-key policy; the encoding must be
    identical across interpreter hash seeds (frozenset iteration order
    is seed-dependent) and must agree element-for-element with the
    codec's ``fset`` ordering.
    """

    NESTED = (
        "frozenset({frozenset({1, 'a', (2, b'x')}), "
        "frozenset({None, True, 0}), 'z', (frozenset({3, 4}),)})"
    )

    def _hex_under_seed(self, seed: str) -> str:
        import os
        import subprocess
        import sys

        script = (
            "from repro.crypto.signatures import canonical_bytes\n"
            f"value = {self.NESTED}\n"
            "print(canonical_bytes(value).hex())\n"
        )
        env = dict(os.environ, PYTHONHASHSEED=seed)
        env["PYTHONPATH"] = os.pathsep.join(
            filter(None, [os.path.join("src"), env.get("PYTHONPATH")])
        )
        result = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        return result.stdout.strip()

    def test_nested_frozensets_stable_across_hash_seeds(self):
        digests = {self._hex_under_seed(seed) for seed in ("0", "1", "42")}
        assert len(digests) == 1

    def test_element_order_matches_serialization_codec(self):
        from repro.crypto.signatures import _set_element_order
        from repro.sim.serialization import canonical_json, encode_payload

        value = frozenset({(1, "b"), (1, "a"), (0, "z")})
        ordered = _set_element_order(value)
        expected = sorted(
            value,
            key=lambda element: canonical_json(encode_payload(element)),
        )
        assert ordered == expected

    def test_opaque_content_objects_still_sort(self):
        """canonical_content objects fall back to their byte encoding."""

        class Custom:
            def __init__(self, payload):
                self.payload = payload

            def canonical_content(self):
                return self.payload

            def __hash__(self):
                return hash(self.payload)

            def __eq__(self, other):
                return self.payload == other.payload

        value = frozenset({Custom("b"), Custom("a")})
        encoded = canonical_bytes(value)
        assert canonical_bytes(Custom("a")) in encoded
        # Deterministic regardless of construction order.
        assert encoded == canonical_bytes(
            frozenset({Custom("a"), Custom("b")})
        )
