"""Tests for repro.crypto.chains (Dolev–Strong signature chains)."""

import pytest

from repro.crypto.chains import SignedChain, start_chain, verify_chain
from repro.crypto.keys import KeyRegistry
from repro.crypto.signatures import Signature, SignatureScheme


@pytest.fixture
def scheme():
    return SignatureScheme(KeyRegistry(5, seed=b"chains"))


def build_chain(scheme, signers, value="v", instance="i"):
    chain = start_chain(scheme.signer_for(signers[0]), instance, value)
    for pid in signers[1:]:
        chain = chain.extend(scheme.signer_for(pid))
    return chain


class TestChainConstruction:
    def test_start_chain_length_one(self, scheme):
        chain = start_chain(scheme.signer_for(0), "i", "v")
        assert len(chain) == 1
        assert chain.signers == (0,)

    def test_extension_appends(self, scheme):
        chain = build_chain(scheme, [0, 1, 2])
        assert chain.signers == (0, 1, 2)
        assert len(chain) == 3

    def test_double_signing_rejected(self, scheme):
        chain = build_chain(scheme, [0, 1])
        with pytest.raises(ValueError, match="already signed"):
            chain.extend(scheme.signer_for(1))

    def test_has_signer(self, scheme):
        chain = build_chain(scheme, [0, 3])
        assert chain.has_signer(3)
        assert not chain.has_signer(2)


class TestVerification:
    def test_valid_chain_verifies(self, scheme):
        chain = build_chain(scheme, [0, 1, 2])
        assert verify_chain(scheme, chain, designated_sender=0)

    def test_minimum_length_enforced(self, scheme):
        chain = build_chain(scheme, [0, 1])
        assert verify_chain(scheme, chain, 0, minimum_length=2)
        assert not verify_chain(scheme, chain, 0, minimum_length=3)

    def test_wrong_sender_rejected(self, scheme):
        chain = build_chain(scheme, [1, 2])
        assert not verify_chain(scheme, chain, designated_sender=0)

    def test_value_tamper_rejected(self, scheme):
        chain = build_chain(scheme, [0, 1])
        tampered = SignedChain(
            instance=chain.instance,
            value="other",
            signatures=chain.signatures,
        )
        assert not verify_chain(scheme, tampered, 0)

    def test_instance_tamper_rejected(self, scheme):
        """Chains cannot be replayed across broadcast instances."""
        chain = build_chain(scheme, [0, 1], instance="alpha")
        replayed = SignedChain(
            instance="beta",
            value=chain.value,
            signatures=chain.signatures,
        )
        assert not verify_chain(scheme, replayed, 0)

    def test_reordered_signatures_rejected(self, scheme):
        chain = build_chain(scheme, [0, 1, 2])
        shuffled = SignedChain(
            instance=chain.instance,
            value=chain.value,
            signatures=(
                chain.signatures[0],
                chain.signatures[2],
                chain.signatures[1],
            ),
        )
        assert not verify_chain(scheme, shuffled, 0)

    def test_duplicate_signers_rejected(self, scheme):
        chain = build_chain(scheme, [0, 1])
        duplicated = SignedChain(
            instance=chain.instance,
            value=chain.value,
            signatures=chain.signatures + (chain.signatures[1],),
        )
        assert not verify_chain(scheme, duplicated, 0)

    def test_garbage_signature_rejected(self, scheme):
        chain = build_chain(scheme, [0])
        junk = SignedChain(
            instance=chain.instance,
            value=chain.value,
            signatures=chain.signatures
            + (Signature(signer=1, tag=b"\x01" * 32),),
        )
        assert not verify_chain(scheme, junk, 0)

    def test_empty_chain_rejected(self, scheme):
        empty = SignedChain(instance="i", value="v", signatures=())
        assert not verify_chain(scheme, empty, 0)

    def test_truncated_prefix_still_verifies(self, scheme):
        """Dropping suffix signatures leaves a valid (shorter) chain —
        that is fine: shorter chains carry weaker round guarantees."""
        chain = build_chain(scheme, [0, 1, 2])
        prefix = SignedChain(
            instance=chain.instance,
            value=chain.value,
            signatures=chain.signatures[:2],
        )
        assert verify_chain(scheme, prefix, 0)
