"""Portable attack certificates (format v1) and their independent verifier.

Two halves, deliberately decoupled:

* :mod:`repro.certify.format` — the producer side: the versioned
  :class:`Certificate` artifact and :func:`build_certificate`, used by
  the attack driver to package its claim.
* :mod:`repro.certify.verifier` — the consumer side:
  :func:`verify_certificate` re-derives every claim from the raw JSON
  artifact, sharing no code path with the driver's live checks.

Re-exports are lazy (PEP 562) so that ``import repro.certify.verifier``
does not drag the producer side — and with it the simulator and the
attack driver — into the process.  A third party auditing an artifact
loads stdlib-only code.

See ``docs/CERTIFICATES.md`` for the schema and the refutation workflow.
"""

from typing import Any

_EXPORTS = {
    "CERTIFICATE_FORMAT": "repro.certify.format",
    "CERTIFICATE_SCHEMA": "repro.certify.format",
    "VERDICT_BOUND": "repro.certify.format",
    "VERDICT_VIOLATION": "repro.certify.format",
    "Certificate": "repro.certify.format",
    "build_certificate": "repro.certify.format",
    "dump_certificate": "repro.certify.format",
    "load_certificate": "repro.certify.format",
    "VerificationFailure": "repro.certify.verifier",
    "VerificationReport": "repro.certify.verifier",
    "is_valid_certificate": "repro.certify.verifier",
    "verify_certificate": "repro.certify.verifier",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str) -> Any:
    try:
        module_name = _EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__() -> list[str]:
    return __all__
