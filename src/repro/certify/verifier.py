"""The independent certificate verifier.

This module re-derives every claim a v1 attack certificate makes *from
the artifact alone*, so that a bug in the attack driver cannot
self-certify.  The trust argument rests on strict code separation:

* the verifier operates directly on the **raw JSON payload** — it never
  constructs :class:`~repro.sim.execution.Execution`,
  :class:`~repro.sim.state.Fragment` or
  :class:`~repro.sim.message.Message` objects, whose constructors run
  the library's own eager checks;
* at module level it imports **only the standard library** — in
  particular nothing from :mod:`repro.lowerbound.driver` or from
  :mod:`repro.sim.engine` (the ``IncrementalChecker`` path the driver
  validates its live simulations with) ever loads during a structural
  verification;
* every condition of the formal model is **re-implemented here** from
  the paper's Appendix A statements: the ten fragment conditions
  (A.1.4), the behavior conditions (A.1.5), the five execution
  guarantees (A.1.6), Definition 1 (isolation), the §3
  indistinguishability relation, and the ``t²/32`` arithmetic of
  Lemma 1.

Verification is *structural* by default — it needs no protocol code.
Passing a process ``factory`` additionally replays behavior condition 7
(every recorded behavior is an honest run of the algorithm's state
machine), which is the one claim that cannot be checked from the
artifact alone.

Failures are reported as named conditions, first-violated first:

>>> report = verify_certificate({"format": "bogus"})
>>> report.ok
False
>>> report.first.condition
'schema.version'
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Callable

# Restated rather than imported from .format: the verifier deliberately
# shares no module with the producer side, so a compromised producer
# cannot redefine what "schema 1" means out from under the checks.
CERTIFICATE_FORMAT = "repro-attack-certificate"
CERTIFICATE_SCHEMA = 1
VERDICT_VIOLATION = "violation"
VERDICT_BOUND = "bound-respected"

# ---------------------------------------------------------------------------
# condition names (the vocabulary of failure reports)
# ---------------------------------------------------------------------------

SCHEMA_VERSION = "schema.version"
SCHEMA_STRUCTURE = "schema.structure"
A14_STATE = "A.1.4.state"  # conditions 1-2: state carries pid and round
A14_ROUND = "A.1.4.round"  # condition 3
A14_SEND_DISJOINT = "A.1.4.send-disjoint"  # condition 4
A14_RECEIVE_DISJOINT = "A.1.4.receive-disjoint"  # condition 5
A14_SENDER = "A.1.4.sender"  # condition 6
A14_RECEIVER = "A.1.4.receiver"  # condition 7
A14_NO_SELF = "A.1.4.no-self"  # condition 8
A14_UNIQUE_RECEIVER = "A.1.4.unique-receiver"  # condition 9
A14_UNIQUE_SENDER = "A.1.4.unique-sender"  # condition 10
A15_SEQUENCE = "A.1.5.round-sequence"
A15_PROPOSAL = "A.1.5.stable-proposal"
A15_DECISION = "A.1.5.write-once-decision"
A15_FINAL = "A.1.5.final-state"
A15_TRANSITIONS = "A.1.5.transition-replay"  # condition 7, factory-gated
A16_BUDGET = "A.1.6.fault-budget"
A16_COMPOSITION = "A.1.6.composition"
A16_SEND_VALIDITY = "A.1.6.send-validity"
A16_RECEIVE_VALIDITY = "A.1.6.receive-validity"
A16_OMISSION_VALIDITY = "A.1.6.omission-validity"
DEF1_ISOLATION = "definition-1.isolation"
S3_INDISTINGUISHABILITY = "s3.indistinguishability"
WITNESS_REFERENCE = "witness.reference"
WITNESS_CULPRIT = "witness.culprit-correct"
WITNESS_AGREEMENT = "witness.agreement"
WITNESS_TERMINATION = "witness.termination"
WITNESS_VALIDITY = "witness.weak-validity"
ACCOUNTING_COUNT = "accounting.message-count"
ACCOUNTING_FLOOR = "accounting.floor"
ACCOUNTING_OBSERVED = "accounting.observed"
ACCOUNTING_VERDICT = "accounting.verdict"
PROVENANCE_REFERENCE = "provenance.reference"


@dataclass(frozen=True)
class VerificationFailure:
    """One violated condition, named and located."""

    condition: str
    detail: str

    def render(self) -> str:
        """One line for reports."""
        return f"[{self.condition}] {self.detail}"


@dataclass(frozen=True)
class VerificationReport:
    """The verifier's structured outcome.

    Attributes:
        failures: every violated condition, in check order (the first
            entry is *the* first violated condition).
        conditions_checked: how many individual condition evaluations
            ran — a coarse completeness indicator for reports.
        replayed: whether behavior condition 7 was replayed against a
            live process factory.
    """

    failures: tuple[VerificationFailure, ...]
    conditions_checked: int = 0
    replayed: bool = False

    @property
    def ok(self) -> bool:
        """Whether every checked condition held."""
        return not self.failures

    @property
    def first(self) -> VerificationFailure | None:
        """The first violated condition, or ``None``."""
        return self.failures[0] if self.failures else None

    def render(self) -> str:
        """A short human-readable report block."""
        scope = "structural+replay" if self.replayed else "structural"
        if self.ok:
            return (
                f"VERIFIED ({scope}; {self.conditions_checked} "
                "conditions checked)"
            )
        lines = [
            f"REJECTED ({scope}; first violated condition: "
            f"{self.failures[0].condition})"
        ]
        lines.extend("  " + failure.render() for failure in self.failures)
        return "\n".join(lines)


def _canon(record: Any) -> str:
    """Canonical JSON of an encoded payload record (value identity)."""
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def _message_key(record: dict) -> tuple:
    """The value identity of an encoded message record."""
    return (
        record["sender"],
        record["receiver"],
        record["round"],
        _canon(record["payload"]),
    )


class _Verifier:
    """One verification pass over a raw certificate payload."""

    def __init__(self, payload: Any) -> None:
        self.payload = payload
        self.failures: list[VerificationFailure] = []
        self.checked = 0

    def fail(self, condition: str, detail: str) -> None:
        self.failures.append(VerificationFailure(condition, detail))

    def check(self, condition: str, holds: bool, detail: str) -> bool:
        self.checked += 1
        if not holds:
            self.fail(condition, detail)
        return holds

    # -- schema -----------------------------------------------------------

    def verify_schema(self) -> bool:
        """Format tag, schema version, and top-level structure."""
        payload = self.payload
        if not self.check(
            SCHEMA_VERSION,
            isinstance(payload, dict)
            and payload.get("format") == CERTIFICATE_FORMAT
            and payload.get("schema") == CERTIFICATE_SCHEMA,
            "not a v1 repro attack certificate",
        ):
            return False
        required = (
            "claim",
            "partition",
            "executions",
            "witness",
            "provenance",
            "indistinguishability",
            "isolation",
            "accounting",
        )
        missing = [key for key in required if key not in payload]
        if not self.check(
            SCHEMA_STRUCTURE,
            not missing,
            f"missing sections: {missing}",
        ):
            return False
        claim = payload["claim"]
        return self.check(
            SCHEMA_STRUCTURE,
            isinstance(claim, dict)
            and isinstance(payload["executions"], dict)
            and claim.get("verdict") in (VERDICT_VIOLATION, VERDICT_BOUND)
            and isinstance(claim.get("n"), int)
            and isinstance(claim.get("t"), int),
            "malformed claim or executions section",
        )

    # -- executions (A.1.4 / A.1.5 / A.1.6) -------------------------------

    def verify_execution(self, label: str, record: Any) -> None:
        """All structural model conditions for one embedded execution."""
        where = f"execution {label!r}"
        try:
            self._verify_execution_inner(where, record)
        except (KeyError, TypeError, IndexError, AttributeError) as error:
            self.fail(
                SCHEMA_STRUCTURE,
                f"{where} is malformed: {type(error).__name__}: {error}",
            )

    def _verify_execution_inner(self, where: str, record: dict) -> None:
        n = record["n"]
        t = record["t"]
        faulty = set(record["faulty"])
        behaviors = record["behaviors"]
        self.check(
            A16_BUDGET,
            len(faulty) <= t
            and all(0 <= pid < n for pid in faulty),
            f"{where}: faulty set {sorted(faulty)} violates |F| <= t={t} "
            f"over {n} processes",
        )
        if not self.check(
            A16_COMPOSITION,
            len(behaviors) == n and n >= 1,
            f"{where}: expected {n} behaviors, got {len(behaviors)}",
        ):
            return
        rounds = len(behaviors[0]["fragments"])
        incoming_index: list[list[set[tuple]]] = [
            [set() for _ in range(rounds + 1)] for _ in range(n)
        ]
        sent_index: list[list[set[tuple]]] = [
            [set() for _ in range(rounds + 1)] for _ in range(n)
        ]
        commits_fault = [False] * n
        for pid, behavior in enumerate(behaviors):
            fragments = behavior["fragments"]
            self.check(
                A16_COMPOSITION,
                len(fragments) == rounds and rounds >= 1,
                f"{where}: p{pid} spans {len(fragments)} rounds, "
                f"execution spans {rounds}",
            )
            self._verify_behavior(where, pid, behavior, rounds)
            for index, fragment in enumerate(fragments):
                round_ = index + 1
                self._verify_fragment(where, pid, round_, fragment)
                for message in fragment["sent"]:
                    sent_index[pid][min(round_, rounds)].add(
                        _message_key(message)
                    )
                for message in (
                    fragment["received"] + fragment["receive_omitted"]
                ):
                    incoming_index[pid][min(round_, rounds)].add(
                        _message_key(message)
                    )
                if fragment["send_omitted"] or fragment["receive_omitted"]:
                    commits_fault[pid] = True
        # A.1.6 send-validity: every sent message is received or
        # receive-omitted by its receiver in the same round.
        for pid, behavior in enumerate(behaviors):
            for index, fragment in enumerate(behavior["fragments"]):
                round_ = index + 1
                for message in fragment["sent"]:
                    receiver = message["receiver"]
                    self.check(
                        A16_SEND_VALIDITY,
                        0 <= receiver < n
                        and _message_key(message)
                        in incoming_index[receiver][min(round_, rounds)],
                        f"{where}: p{pid} r{round_} sent a message "
                        f"neither received nor receive-omitted by "
                        f"p{receiver}",
                    )
                for message in (
                    fragment["received"] + fragment["receive_omitted"]
                ):
                    sender = message["sender"]
                    self.check(
                        A16_RECEIVE_VALIDITY,
                        0 <= sender < n
                        and _message_key(message)
                        in sent_index[sender][min(round_, rounds)],
                        f"{where}: p{pid} r{round_} records an incoming "
                        f"message p{sender} never successfully sent",
                    )
        for pid in range(n):
            self.check(
                A16_OMISSION_VALIDITY,
                not commits_fault[pid] or pid in faulty,
                f"{where}: p{pid} commits omission faults but is not in "
                "the faulty set",
            )

    def _verify_fragment(
        self, where: str, pid: int, round_: int, fragment: dict
    ) -> None:
        """The ten A.1.4 conditions on one raw fragment record."""
        state = fragment["state"]
        self.check(
            A14_STATE,
            state["process"] == pid and state["round"] == round_,
            f"{where}: p{pid} r{round_} fragment carries state of "
            f"p{state['process']} r{state['round']}",
        )
        sent = fragment["sent"]
        send_omitted = fragment["send_omitted"]
        received = fragment["received"]
        receive_omitted = fragment["receive_omitted"]
        outgoing = sent + send_omitted
        incoming = received + receive_omitted
        self.check(
            A14_ROUND,
            all(m["round"] == round_ for m in outgoing + incoming),
            f"{where}: p{pid} r{round_} fragment contains a message of "
            "another round",
        )
        sent_keys = {_message_key(m) for m in sent}
        omitted_keys = {_message_key(m) for m in send_omitted}
        self.check(
            A14_SEND_DISJOINT,
            not (sent_keys & omitted_keys),
            f"{where}: p{pid} r{round_} sent and send-omitted overlap",
        )
        received_keys = {_message_key(m) for m in received}
        rec_omitted_keys = {_message_key(m) for m in receive_omitted}
        self.check(
            A14_RECEIVE_DISJOINT,
            not (received_keys & rec_omitted_keys),
            f"{where}: p{pid} r{round_} received and receive-omitted "
            "overlap",
        )
        self.check(
            A14_SENDER,
            all(m["sender"] == pid for m in outgoing),
            f"{where}: p{pid} r{round_} outgoing message with a foreign "
            "sender",
        )
        self.check(
            A14_RECEIVER,
            all(m["receiver"] == pid for m in incoming),
            f"{where}: p{pid} r{round_} incoming message with a foreign "
            "receiver",
        )
        self.check(
            A14_NO_SELF,
            all(m["sender"] != m["receiver"] for m in outgoing + incoming),
            f"{where}: p{pid} r{round_} contains a self-message",
        )
        receivers = [m["receiver"] for m in outgoing]
        self.check(
            A14_UNIQUE_RECEIVER,
            len(receivers) == len(set(receivers)),
            f"{where}: p{pid} r{round_} sends two messages to one "
            "receiver",
        )
        senders = [m["sender"] for m in incoming]
        self.check(
            A14_UNIQUE_SENDER,
            len(senders) == len(set(senders)),
            f"{where}: p{pid} r{round_} records two incoming messages "
            "from one sender",
        )

    def _verify_behavior(
        self, where: str, pid: int, behavior: dict, rounds: int
    ) -> None:
        """The structural A.1.5 conditions on one raw behavior record."""
        fragments = behavior["fragments"]
        final_state = behavior["final_state"]
        self.check(
            A15_SEQUENCE,
            all(
                fragment["state"]["round"] == index + 1
                for index, fragment in enumerate(fragments)
            ),
            f"{where}: p{pid} fragments are not consecutively numbered "
            "from round 1",
        )
        states = [fragment["state"] for fragment in fragments]
        states.append(final_state)
        proposal = _canon(states[0]["proposal"])
        self.check(
            A15_PROPOSAL,
            all(_canon(state["proposal"]) == proposal for state in states),
            f"{where}: p{pid}'s proposal changes across rounds",
        )
        decision: str | None = None
        write_once = states[0]["decision"] is None
        for state in states:
            recorded = state["decision"]
            if decision is None:
                decision = None if recorded is None else _canon(recorded)
            elif recorded is None or _canon(recorded) != decision:
                write_once = False
                break
        self.check(
            A15_DECISION,
            write_once,
            f"{where}: p{pid}'s decision is not write-once (or it starts "
            "round 1 already decided)",
        )
        self.check(
            A15_FINAL,
            final_state["process"] == pid
            and final_state["round"] == rounds + 1,
            f"{where}: p{pid}'s final state is not the state at the "
            f"start of round {rounds + 1}",
        )

    # -- Definition 1 -----------------------------------------------------

    def verify_isolation(self, claim: dict) -> None:
        """Definition 1 for one isolation claim, from the raw records."""
        label = claim.get("execution")
        executions = self.payload["executions"]
        if not self.check(
            DEF1_ISOLATION,
            label in executions,
            f"isolation claim references unknown execution {label!r}",
        ):
            return
        record = executions[label]
        where = f"execution {label!r}"
        try:
            group = set(claim["group"])
            from_round = claim["from_round"]
            faulty = set(record["faulty"])
            n = record["n"]
            if not self.check(
                DEF1_ISOLATION,
                bool(group)
                and group <= faulty
                and group != set(range(n)),
                f"{where}: claimed group {sorted(group)} is empty, not "
                "within the faulty set, or not a proper subset",
            ):
                return
            for pid in sorted(group):
                behavior = record["behaviors"][pid]
                for index, fragment in enumerate(behavior["fragments"]):
                    round_ = index + 1
                    self.check(
                        DEF1_ISOLATION,
                        not fragment["send_omitted"],
                        f"{where}: p{pid} send-omits in r{round_} despite "
                        "isolation",
                    )
                    self.check(
                        DEF1_ISOLATION,
                        all(
                            m["sender"] in group or round_ < from_round
                            for m in fragment["received"]
                        ),
                        f"{where}: p{pid} r{round_} received an outside "
                        f"message that isolation from round {from_round} "
                        "requires dropping",
                    )
                    self.check(
                        DEF1_ISOLATION,
                        all(
                            m["sender"] not in group
                            and round_ >= from_round
                            for m in fragment["receive_omitted"]
                        ),
                        f"{where}: p{pid} r{round_} receive-omits an "
                        "in-group or pre-isolation message",
                    )
        except (KeyError, TypeError, IndexError) as error:
            self.fail(
                DEF1_ISOLATION,
                f"isolation claim on {where} is malformed: {error}",
            )

    # -- §3 indistinguishability ------------------------------------------

    def verify_indistinguishability(self, claim: dict) -> None:
        """Same proposal + identical received sets for each named pid."""
        executions = self.payload["executions"]
        left_label = claim.get("left")
        right_label = claim.get("right")
        if not self.check(
            S3_INDISTINGUISHABILITY,
            left_label in executions and right_label in executions,
            f"indistinguishability claim references unknown executions "
            f"({left_label!r}, {right_label!r})",
        ):
            return
        left = executions[left_label]
        right = executions[right_label]
        where = f"({left_label!r} ~ {right_label!r})"
        try:
            for pid in claim["processes"]:
                lb = left["behaviors"][pid]
                rb = right["behaviors"][pid]
                if not self.check(
                    S3_INDISTINGUISHABILITY,
                    len(lb["fragments"]) == len(rb["fragments"]),
                    f"{where}: p{pid}'s behaviors span different horizons",
                ):
                    continue
                self.check(
                    S3_INDISTINGUISHABILITY,
                    _canon(lb["fragments"][0]["state"]["proposal"])
                    == _canon(rb["fragments"][0]["state"]["proposal"]),
                    f"{where}: p{pid} proposes differently",
                )
                for index, (lf, rf) in enumerate(
                    zip(lb["fragments"], rb["fragments"])
                ):
                    self.check(
                        S3_INDISTINGUISHABILITY,
                        {_message_key(m) for m in lf["received"]}
                        == {_message_key(m) for m in rf["received"]},
                        f"{where}: p{pid} receives different messages in "
                        f"round {index + 1}",
                    )
        except (KeyError, TypeError, IndexError) as error:
            self.fail(
                S3_INDISTINGUISHABILITY,
                f"indistinguishability claim {where} is malformed: "
                f"{error}",
            )

    # -- the witness claim ------------------------------------------------

    def verify_witness(self) -> None:
        """The claimed property breach, re-derived from the records."""
        witness = self.payload["witness"]
        claim = self.payload["claim"]
        if witness is None:
            return
        executions = self.payload["executions"]
        label = witness.get("execution")
        if not self.check(
            WITNESS_REFERENCE,
            label in executions
            and witness.get("kind")
            in ("agreement", "termination", "weak-validity"),
            f"witness references unknown execution {label!r} or carries "
            f"an unknown kind {witness.get('kind')!r}",
        ):
            return
        record = executions[label]
        try:
            n = record["n"]
            faulty = set(record["faulty"])
            culprit = witness["culprit"]
            if not self.check(
                WITNESS_CULPRIT,
                isinstance(culprit, int)
                and 0 <= culprit < n
                and culprit not in faulty,
                f"culprit p{culprit} is not a correct process of the "
                "witness execution",
            ):
                return

            def decision(pid: int) -> str | None:
                recorded = record["behaviors"][pid]["final_state"][
                    "decision"
                ]
                return None if recorded is None else _canon(recorded)

            kind = witness["kind"]
            if kind == "termination":
                self.check(
                    WITNESS_TERMINATION,
                    decision(culprit) is None,
                    f"claimed non-termination, but p{culprit} decided",
                )
            elif kind == "agreement":
                counterpart = witness.get("counterpart")
                if not self.check(
                    WITNESS_AGREEMENT,
                    isinstance(counterpart, int)
                    and 0 <= counterpart < n
                    and counterpart not in faulty,
                    f"agreement witness counterpart p{counterpart} is "
                    "not a correct process",
                ):
                    return
                culprit_decision = decision(culprit)
                other_decision = decision(counterpart)
                self.check(
                    WITNESS_AGREEMENT,
                    culprit_decision is not None
                    and other_decision is not None
                    and culprit_decision != other_decision,
                    f"claimed disagreement between p{culprit} and "
                    f"p{counterpart}, but their decisions do not differ",
                )
            else:  # weak-validity
                proposals = {
                    _canon(
                        behavior["fragments"][0]["state"]["proposal"]
                    )
                    for behavior in record["behaviors"]
                }
                self.check(
                    WITNESS_VALIDITY,
                    not faulty
                    and len(proposals) == 1
                    and decision(culprit) != next(iter(proposals)),
                    "weak-validity witness must be fault-free with "
                    "unanimous proposals and a deviating culprit "
                    "decision",
                )
            self.check(
                ACCOUNTING_VERDICT,
                claim["verdict"] == VERDICT_VIOLATION,
                "certificate embeds a witness but claims verdict "
                f"{claim['verdict']!r}",
            )
        except (KeyError, TypeError, IndexError) as error:
            self.fail(
                WITNESS_REFERENCE,
                f"witness record is malformed: {error}",
            )

    # -- accounting -------------------------------------------------------

    def verify_accounting(self) -> None:
        """Recompute message counts and the t²/32 arithmetic."""
        accounting = self.payload["accounting"]
        claim = self.payload["claim"]
        executions = self.payload["executions"]
        try:
            t = accounting["t"]
            observed = accounting["observed"]
            self.check(
                ACCOUNTING_FLOOR,
                t == claim["t"] and accounting["floor"] == t * t / 32,
                f"recorded floor {accounting['floor']!r} is not "
                f"t^2/32 for t={claim['t']}",
            )
            self.check(
                ACCOUNTING_VERDICT,
                accounting["below_floor"] == (observed < t * t / 32),
                "below_floor flag contradicts the observed count and "
                "the floor",
            )
            per_execution = accounting["per_execution"]
            for label, recorded in sorted(per_execution.items()):
                if not self.check(
                    ACCOUNTING_COUNT,
                    label in executions,
                    f"accounting references unknown execution {label!r}",
                ):
                    continue
                record = executions[label]
                faulty = set(record["faulty"])
                recomputed = sum(
                    len(fragment["sent"])
                    for pid, behavior in enumerate(record["behaviors"])
                    if pid not in faulty
                    for fragment in behavior["fragments"]
                )
                self.check(
                    ACCOUNTING_COUNT,
                    recomputed == recorded,
                    f"execution {label!r} contains {recomputed} "
                    f"correct-sender messages, accounting records "
                    f"{recorded}",
                )
            max_label = accounting.get("max_execution")
            if max_label is not None:
                self.check(
                    ACCOUNTING_OBSERVED,
                    per_execution.get(max_label) == observed,
                    f"claimed maximum execution {max_label!r} does not "
                    f"attain the observed count {observed}",
                )
            if self.payload["witness"] is None:
                self.check(
                    ACCOUNTING_VERDICT,
                    claim["verdict"] == VERDICT_BOUND,
                    "certificate embeds no witness but claims verdict "
                    f"{claim['verdict']!r}",
                )
        except (KeyError, TypeError) as error:
            self.fail(
                SCHEMA_STRUCTURE,
                f"accounting section is malformed: {error}",
            )

    # -- provenance -------------------------------------------------------

    def verify_provenance(self) -> None:
        """Every provenance step references embedded executions."""
        executions = self.payload["executions"]
        known_ops = {"simulate", "isolate", "merge", "swap", "witness"}
        for index, step in enumerate(self.payload["provenance"]):
            if not self.check(
                PROVENANCE_REFERENCE,
                isinstance(step, dict) and step.get("op") in known_ops,
                f"provenance step {index} has unknown op "
                f"{step.get('op') if isinstance(step, dict) else step!r}",
            ):
                continue
            labels: list[str] = []
            for key in ("execution", "source", "result"):
                if key in step:
                    labels.append(step[key])
            labels.extend(step.get("inputs", ()))
            for label in labels:
                self.check(
                    PROVENANCE_REFERENCE,
                    label in executions,
                    f"provenance step {index} ({step['op']}) references "
                    f"unembedded execution {label!r}",
                )

    # -- behavior condition 7 (optional, needs protocol code) -------------

    def verify_transitions(self, factory: Callable) -> None:
        """Replay every behavior through a fresh state machine.

        The only check that cannot run from the artifact alone: it
        re-runs the candidate's algorithm, feeding each process exactly
        the received sets the certificate records, and demands that the
        machine emit exactly the recorded outgoing messages and reach
        the recorded decisions.  Payloads cross from the artifact into
        the machines through the serialization codec; the comparison is
        by canonical encoding, so no library equality is trusted.
        """
        from repro.sim.serialization import decode_payload, encode_payload

        def canon_value(value: Any) -> str:
            return _canon(encode_payload(value))

        for label in sorted(self.payload["executions"]):
            record = self.payload["executions"][label]
            where = f"execution {label!r}"
            rounds = len(record["behaviors"][0]["fragments"])
            for pid, behavior in enumerate(record["behaviors"]):
                proposal = decode_payload(
                    behavior["fragments"][0]["state"]["proposal"]
                )
                machine = factory(pid, proposal)
                replay_ok = True
                for index, fragment in enumerate(behavior["fragments"]):
                    round_ = index + 1
                    produced = machine.validate_outgoing(
                        round_, machine.outgoing(round_)
                    )
                    produced_canon = {
                        receiver: canon_value(payload)
                        for receiver, payload in produced.items()
                    }
                    recorded_canon = {
                        m["receiver"]: _canon(m["payload"])
                        for m in fragment["sent"]
                        + fragment["send_omitted"]
                    }
                    if not self.check(
                        A15_TRANSITIONS,
                        produced_canon == recorded_canon,
                        f"{where}: p{pid} r{round_} recorded sends are "
                        "not what the algorithm produces",
                    ):
                        replay_ok = False
                        break
                    machine.deliver(
                        round_,
                        {
                            m["sender"]: decode_payload(m["payload"])
                            for m in sorted(
                                fragment["received"],
                                key=lambda m: m["sender"],
                            )
                        },
                    )
                if not replay_ok:
                    continue
                final_decision = behavior["final_state"]["decision"]
                machine_decision = machine.snapshot(rounds + 1).decision
                self.check(
                    A15_TRANSITIONS,
                    (final_decision is None)
                    == (machine_decision is None)
                    and (
                        final_decision is None
                        or _canon(final_decision)
                        == canon_value(machine_decision)
                    ),
                    f"{where}: p{pid}'s recorded decision is not what "
                    "the algorithm decides on this input",
                )


def verify_certificate(
    source: Any,
    factory: Callable | None = None,
) -> VerificationReport:
    """Re-derive every claim of a certificate from the artifact alone.

    Args:
        source: a :class:`~repro.certify.format.Certificate`, its payload
            dict, or the JSON artifact as text/bytes.
        factory: optional ``(pid, proposal) -> Process`` builder of the
            attacked algorithm; when given, behavior condition 7 is
            additionally replayed (the certificate's executions must be
            honest runs of *this* code).

    Returns:
        A :class:`VerificationReport`; ``report.ok`` is the verdict and
        ``report.first`` names the first violated condition.
    """
    if hasattr(source, "payload") and isinstance(source.payload, dict):
        payload: Any = source.payload  # a Certificate wrapper, unwrapped
    elif isinstance(source, bytes):
        try:
            payload = json.loads(source.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            return VerificationReport(
                failures=(
                    VerificationFailure(
                        SCHEMA_STRUCTURE,
                        f"artifact is not UTF-8 JSON: {error}",
                    ),
                ),
                conditions_checked=1,
            )
    elif isinstance(source, str):
        try:
            payload = json.loads(source)
        except json.JSONDecodeError as error:
            return VerificationReport(
                failures=(
                    VerificationFailure(
                        SCHEMA_STRUCTURE,
                        f"artifact is not valid JSON: {error}",
                    ),
                ),
                conditions_checked=1,
            )
    else:
        payload = source
    verifier = _Verifier(payload)
    if verifier.verify_schema():
        for label in sorted(payload["executions"]):
            verifier.verify_execution(
                label, payload["executions"][label]
            )
        for claim in payload["isolation"]:
            verifier.verify_isolation(claim)
        for claim in payload["indistinguishability"]:
            verifier.verify_indistinguishability(claim)
        verifier.verify_witness()
        verifier.verify_accounting()
        verifier.verify_provenance()
        if factory is not None and not verifier.failures:
            verifier.verify_transitions(factory)
    return VerificationReport(
        failures=tuple(verifier.failures),
        conditions_checked=verifier.checked,
        replayed=factory is not None,
    )


def is_valid_certificate(
    source: Any,
    factory: Callable | None = None,
) -> bool:
    """Predicate form of :func:`verify_certificate`."""
    return verify_certificate(source, factory).ok
