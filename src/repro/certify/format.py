"""Portable attack certificates — the v1 artifact format.

A :class:`Certificate` is a single JSON document that makes a
lower-bound attack *portable*: everything a third party needs in order
to check the attack's claim — without trusting (or even running) the
attack driver — travels inside the artifact:

* the **claim**: which protocol, at which ``(n, t)``, and the verdict
  (``"violation"`` or ``"bound-respected"``);
* the **executions**: every recorded trace the claim rests on (the
  witness execution, the merge inputs, the pre-swap source, or — for a
  respected bound — the trace attaining the observed maximum), encoded
  through the :mod:`repro.sim.serialization` codec;
* the **provenance chain**: which constructions (Definition-1
  isolation, Algorithm-5 ``merge``, Algorithm-4 ``swap_omission``)
  produced which execution from which;
* the **indistinguishability pairs** each construction promises (the
  Lemma-15/16 conclusions), stated as checkable claims;
* the **isolation claims** (Definition 1) for each isolated input;
* the **message-count accounting** against the Lemma-1 ``t²/32`` floor.

The schema is versioned (:data:`CERTIFICATE_SCHEMA`); loaders reject
unknown versions loudly.  Certificates are rendered canonically
(``sort_keys`` plus the codec's canonical set ordering), so one attack
produces byte-identical artifacts on every interpreter and backend.

The independent checker lives in :mod:`repro.certify.verifier` and
shares *no* code path with the attack driver's live checks — see that
module for the trust argument.

>>> CERTIFICATE_SCHEMA
1
>>> CERTIFICATE_FORMAT
'repro-attack-certificate'
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from repro.errors import ReproError
from repro.lowerbound.bound import weak_consensus_floor
from repro.lowerbound.partition import ABCPartition
from repro.sim.execution import Execution
from repro.sim.serialization import (
    encode_payload,
    execution_from_dict,
    execution_to_dict,
)

CERTIFICATE_FORMAT = "repro-attack-certificate"
CERTIFICATE_SCHEMA = 1

VERDICT_VIOLATION = "violation"
VERDICT_BOUND = "bound-respected"


@dataclass(frozen=True)
class Certificate:
    """A versioned, machine-checkable attack artifact (schema v1).

    Thin immutable wrapper around the JSON-safe ``payload`` dictionary;
    the accessors below decode the embedded records on demand.  Equality
    is payload equality — two certificates are equal iff their artifacts
    are byte-identical when dumped.
    """

    payload: dict

    @property
    def schema(self) -> int:
        """The artifact's schema version."""
        return self.payload.get("schema", 0)

    @property
    def verdict(self) -> str:
        """``"violation"`` or ``"bound-respected"``."""
        return self.payload["claim"]["verdict"]

    @property
    def protocol(self) -> str:
        """The attacked candidate's name."""
        return self.payload["claim"]["protocol"]

    @property
    def n(self) -> int:
        """The system size of the claim."""
        return self.payload["claim"]["n"]

    @property
    def t(self) -> int:
        """The corruption budget of the claim."""
        return self.payload["claim"]["t"]

    @property
    def execution_labels(self) -> tuple[str, ...]:
        """Labels of the embedded executions, sorted."""
        return tuple(sorted(self.payload["executions"]))

    def execution(self, label: str) -> Execution:
        """Decode the embedded execution stored under ``label``."""
        try:
            record = self.payload["executions"][label]
        except KeyError:
            raise ReproError(
                f"certificate embeds no execution {label!r}"
            ) from None
        return execution_from_dict(record)

    def witness(self):
        """Reconstruct the embedded violation witness, if any.

        Returns ``None`` for bound-respected certificates.  The
        reconstructed witness can be re-verified against live protocol
        code with :func:`repro.lowerbound.witnesses.verify_witness`.
        """
        from repro.lowerbound.witnesses import (
            ViolationKind,
            ViolationWitness,
        )

        record = self.payload.get("witness")
        if record is None:
            return None
        return ViolationWitness(
            kind=ViolationKind(record["kind"]),
            execution=self.execution(record["execution"]),
            culprit=record["culprit"],
            counterpart=record["counterpart"],
            note=record["note"],
        )

    def dumps(self) -> str:
        """Serialize to the canonical JSON artifact string."""
        return json.dumps(self.payload, sort_keys=True)

    def to_bytes(self) -> bytes:
        """The canonical artifact as UTF-8 bytes (for shipping)."""
        return self.dumps().encode("utf-8")

    @classmethod
    def loads(cls, text: str) -> "Certificate":
        """Load a certificate from its JSON artifact string.

        Raises:
            ReproError: if the document is not a v1 attack certificate.
        """
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as error:
            raise ReproError(
                f"certificate is not valid JSON: {error}"
            ) from None
        return cls.from_dict(payload)

    @classmethod
    def from_bytes(cls, blob: bytes) -> "Certificate":
        """Load a certificate from :meth:`to_bytes` output."""
        return cls.loads(blob.decode("utf-8"))

    @classmethod
    def from_dict(cls, payload: Any) -> "Certificate":
        """Wrap an already-parsed payload, checking format and version."""
        if (
            not isinstance(payload, dict)
            or payload.get("format") != CERTIFICATE_FORMAT
        ):
            raise ReproError("document is not a repro attack certificate")
        if payload.get("schema") != CERTIFICATE_SCHEMA:
            raise ReproError(
                f"unsupported certificate schema "
                f"{payload.get('schema')!r} (this library reads "
                f"v{CERTIFICATE_SCHEMA})"
            )
        return cls(payload=payload)


def build_certificate(
    *,
    protocol: str,
    n: int,
    t: int,
    rounds: int,
    partition: ABCPartition,
    executions: Mapping[str, Execution],
    witness=None,
    witness_label: str | None = None,
    provenance: Sequence[Mapping[str, Any]] = (),
    indistinguishability: Sequence[Mapping[str, Any]] = (),
    isolations: Sequence[Mapping[str, Any]] = (),
    observed: int = 0,
    max_label: str | None = None,
    default_bit: Any = None,
    critical_round: int | None = None,
) -> Certificate:
    """Assemble a v1 certificate from the attack driver's records.

    Args:
        protocol, n, t, rounds: the attacked candidate's identity.
        partition: the (A, B, C) split the pipeline used.
        executions: label → recorded execution, every trace the claim
            references (and nothing more — certificates stay small).
        witness: the driver's :class:`ViolationWitness`, or ``None``.
        witness_label: the label under which the witness execution is
            embedded (required iff ``witness`` is given).
        provenance: construction steps, each an op record referencing
            execution labels (``simulate`` / ``merge`` / ``swap``).
        indistinguishability: claims ``{left, right, processes}`` — the
            named processes observe identical proposals and received
            sets in both executions (Lemma 15/16 conclusions).
        isolations: claims ``{execution, group, from_round}`` — the
            group is isolated per Definition 1 in that execution.
        observed: the worst §2 message count the attack observed.
        max_label: label of the embedded execution attaining
            ``observed`` (bound-respected certificates), or ``None``.
        default_bit: the Lemma-3 common decision, if reached.
        critical_round: the Lemma-4 round ``R``, if reached.

    Raises:
        ReproError: on inconsistent inputs (dangling labels, a witness
            without its execution).
    """
    encoded_executions = {
        label: execution_to_dict(execution)
        for label, execution in executions.items()
    }

    def require_label(label: str, context: str) -> None:
        if label not in encoded_executions:
            raise ReproError(
                f"certificate {context} references unembedded "
                f"execution {label!r}"
            )

    witness_record = None
    if witness is not None:
        if witness_label is None:
            raise ReproError(
                "a violation certificate needs its witness execution "
                "embedded under a label"
            )
        require_label(witness_label, "witness")
        witness_record = {
            "kind": witness.kind.value,
            "culprit": witness.culprit,
            "counterpart": witness.counterpart,
            "note": witness.note,
            "execution": witness_label,
        }
    for claim in indistinguishability:
        require_label(claim["left"], "indistinguishability claim")
        require_label(claim["right"], "indistinguishability claim")
    for claim in isolations:
        require_label(claim["execution"], "isolation claim")
    if max_label is not None:
        require_label(max_label, "accounting")
    per_execution = {
        label: execution.message_complexity()
        for label, execution in executions.items()
    }
    floor = weak_consensus_floor(t)
    payload = {
        "format": CERTIFICATE_FORMAT,
        "schema": CERTIFICATE_SCHEMA,
        "claim": {
            "protocol": protocol,
            "n": n,
            "t": t,
            "rounds": rounds,
            "verdict": (
                VERDICT_VIOLATION if witness is not None else VERDICT_BOUND
            ),
            "default_bit": (
                None if default_bit is None else encode_payload(default_bit)
            ),
            "critical_round": critical_round,
        },
        "partition": {
            "a": sorted(partition.group_a),
            "b": sorted(partition.group_b),
            "c": sorted(partition.group_c),
        },
        "executions": encoded_executions,
        "witness": witness_record,
        "provenance": [dict(step) for step in provenance],
        "indistinguishability": [
            {
                "left": claim["left"],
                "right": claim["right"],
                "processes": sorted(claim["processes"]),
            }
            for claim in indistinguishability
        ],
        "isolation": [
            {
                "execution": claim["execution"],
                "group": sorted(claim["group"]),
                "from_round": claim["from_round"],
            }
            for claim in isolations
        ],
        "accounting": {
            "t": t,
            "observed": observed,
            "floor": floor,
            "below_floor": observed < floor,
            "max_execution": max_label,
            "per_execution": per_execution,
        },
    }
    return Certificate(payload=payload)


def read_certificate(path: str) -> Certificate:
    """Load a certificate artifact *file*, with the uniform diagnostic.

    The file-facing twin of :meth:`Certificate.loads`: a file that
    exists but is not a v1 attack certificate raises the shared
    :mod:`repro.artifact` one-liner (:class:`~repro.errors
    .ArtifactError`, CLI exit 2) — a malformed artifact is an
    environment failure, distinct from a well-formed certificate that
    fails verification (a domain failure, exit 1).

    Raises:
        ArtifactError: when the document is not a v1 certificate.
        OSError: when the file cannot be read.
    """
    from repro.artifact import load_artifact

    return load_artifact(path, "attack certificate", Certificate.loads)


def dump_certificate(certificate: Certificate) -> str:
    """Serialize a certificate to its canonical JSON artifact string."""
    return certificate.dumps()


def load_certificate(text: str) -> Certificate:
    """Load a certificate from :func:`dump_certificate` output.

    Always run :func:`repro.certify.verifier.verify_certificate` before
    trusting a loaded artifact.
    """
    return Certificate.loads(text)
