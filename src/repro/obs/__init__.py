"""Observability: the unified run ledger, tracer, metrics and reports.

The layer every pipeline stage emits into and every report reads from:

* :mod:`repro.obs.ledger` — the append-only JSONL event log with the
  ``run_id`` / ``cell_id`` / ``worker_id`` correlation triple and the
  cross-process splice protocol;
* :mod:`repro.obs.tracer` — span tracing with a zero-overhead no-op
  default (:data:`NULL_TRACER`) and the per-round engine observer;
* :mod:`repro.obs.metrics` — the associative registry of named
  counters, gauges and histograms;
* :mod:`repro.obs.report` — the ``repro trace`` timeline and the
  ``repro report --trend`` perf-trajectory log;
* :mod:`repro.obs.telemetry` — the sampled telemetry bus folding live
  metrics/progress/round accounting into observability-only
  ``telemetry.snapshot`` world-log records;
* :mod:`repro.obs.export` — Prometheus text exposition and Chrome
  trace-event JSON adapters.

Telemetry is wall-clock data: it never participates in outcome
equality, and the parallel sweep backends are required to agree only on
the *event order* (``kind``/``name``/``cell_id`` sequence), never on
timestamps or worker ids.
"""

from __future__ import annotations

from repro.obs.export import (
    chrome_trace,
    registry_from_events,
    render_prometheus,
)
from repro.obs.ledger import (
    EVENT_KINDS,
    LedgerEvent,
    RunLedger,
    cell_label,
    new_run_id,
    order_signature,
    read_events,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.telemetry import (
    TELEMETRY_SCHEMA,
    TelemetryBus,
    parse_interval,
)
from repro.obs.tracer import (
    NULL_TRACER,
    LedgerTracer,
    RoundTraceObserver,
    Tracer,
)

__all__ = [
    "EVENT_KINDS",
    "Counter",
    "Gauge",
    "Histogram",
    "LedgerEvent",
    "LedgerTracer",
    "MetricsRegistry",
    "NULL_TRACER",
    "RoundTraceObserver",
    "RunLedger",
    "TELEMETRY_SCHEMA",
    "TelemetryBus",
    "Tracer",
    "cell_label",
    "chrome_trace",
    "new_run_id",
    "order_signature",
    "parse_interval",
    "read_events",
    "registry_from_events",
    "render_prometheus",
]
