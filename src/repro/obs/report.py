"""Human rendering of run ledgers and the performance trend log.

Two consumers of the :mod:`repro.obs.ledger` event stream:

* :func:`render_trace` — the ``repro trace <ledger>`` timeline: the
  span tree with accumulated durations, the slowest simulated rounds,
  the per-round message-count series, the cache hit rate and the
  observed messages-vs-``t²/32`` ratio, plus a per-cell table for sweep
  ledgers.
* the trend log — ``repro report --trend`` runs a fixed canary attack
  (ring-token at the bench regime), distills its ledger into one
  :func:`trend_point`, appends it to ``benchmarks/reports/trend.jsonl``
  and diffs it against the previous point
  (:func:`append_trend`), flagging wall-clock regressions beyond the
  threshold and *any* drift in the deterministic counters (rounds
  simulated, events, observed messages — those must not move without a
  code change that intends it).
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from repro.obs.ledger import LedgerEvent

TREND_PATH = os.path.join("benchmarks", "reports", "trend.jsonl")
"""Where the repository's perf trajectory accumulates."""

_DETERMINISTIC_KEYS = ("rounds_simulated", "events", "messages_observed")


# ----------------------------------------------------------------------
# trace rendering
# ----------------------------------------------------------------------


@dataclass
class _SpanNode:
    """One aggregated node of the span tree."""

    name: str
    seconds: float = 0.0
    count: int = 0
    children: dict[str, "_SpanNode"] = field(default_factory=dict)

    def child(self, name: str) -> "_SpanNode":
        if name not in self.children:
            self.children[name] = _SpanNode(name)
        return self.children[name]


def build_span_tree(events: Sequence[LedgerEvent]) -> _SpanNode:
    """Aggregate paired span events into one tree.

    Spans are paired per ``(worker_id, cell_id)`` stream (timestamps are
    only comparable within one stream); same-named spans at the same
    nesting depth accumulate duration and count across streams.
    """
    root = _SpanNode("")
    stacks: dict[tuple[int, str | None], list[tuple[_SpanNode, float]]] = {}
    for event in events:
        stream = (event.worker_id, event.cell_id)
        stack = stacks.setdefault(stream, [])
        if event.kind == "span-start":
            parent = stack[-1][0] if stack else root
            stack.append((parent.child(event.name), event.ts))
        elif event.kind == "span-end":
            while stack:
                node, started = stack.pop()
                if node.name == event.name:
                    node.seconds += event.ts - started
                    node.count += 1
                    break
    return root


def _render_tree(node: _SpanNode, depth: int, lines: list[str]) -> None:
    for child in node.children.values():
        suffix = f" ×{child.count}" if child.count > 1 else ""
        lines.append(
            f"{'  ' * depth}{child.name:<18} "
            f"{child.seconds * 1e3:9.2f} ms{suffix}"
        )
        _render_tree(child, depth + 1, lines)


def _round_events(
    events: Sequence[LedgerEvent],
) -> list[LedgerEvent]:
    return [
        event
        for event in events
        if event.kind == "counter" and event.name == "engine.round"
    ]


def _counter_total(events: Sequence[LedgerEvent], name: str) -> float:
    return sum(
        event.value or 0
        for event in events
        if event.kind == "counter" and event.name == name
    )


def _last_gauge(
    events: Sequence[LedgerEvent], name: str
) -> LedgerEvent | None:
    found = None
    for event in events:
        if event.kind == "gauge" and event.name == name:
            found = event
    return found


def span_totals(
    events: Sequence[LedgerEvent],
) -> dict[str, dict[str, float]]:
    """Flat accumulated span durations: name → ``{seconds, count}``.

    The flat companion to :func:`build_span_tree` — same pairing rule
    (per ``(worker_id, cell_id)`` stream), but same-named spans
    accumulate regardless of nesting depth.  Shared by the trace
    renderer's consumers and ``repro log stats`` (certificate verify
    time is the ``witness-verify`` + ``certify`` rows).
    """
    totals: dict[str, dict[str, float]] = {}
    stacks: dict[tuple[int, str | None], list[tuple[str, float]]] = {}
    for event in events:
        stream = (event.worker_id, event.cell_id)
        stack = stacks.setdefault(stream, [])
        if event.kind == "span-start":
            stack.append((event.name, event.ts))
        elif event.kind == "span-end":
            while stack:
                name, started = stack.pop()
                if name == event.name:
                    entry = totals.setdefault(
                        name, {"seconds": 0.0, "count": 0}
                    )
                    entry["seconds"] += event.ts - started
                    entry["count"] += 1
                    break
    return dict(sorted(totals.items()))


def percentiles(
    values: Sequence[float],
    marks: Sequence[float] = (0.5, 0.9, 0.99),
) -> dict[str, float]:
    """Nearest-rank percentiles of ``values``: ``{"p50": ..., ...}``.

    Empty input yields an empty dict (a log with no per-cell data has
    no percentiles, not a zero).  Shared by ``repro log stats`` and any
    renderer that distills a metric series into a summary row.
    """
    if not values:
        return {}
    ordered = sorted(values)
    result: dict[str, float] = {}
    for mark in marks:
        rank = max(0, min(len(ordered) - 1, round(mark * len(ordered)) - 1))
        label = f"p{mark * 100:g}"
        result[label] = ordered[rank]
    result["max"] = ordered[-1]
    return result


def cache_hit_rate(events: Sequence[LedgerEvent]) -> float | None:
    """``(hits + alias_hits) / lookups`` over the whole ledger."""
    hits = _counter_total(events, "cache.hits")
    alias = _counter_total(events, "cache.alias_hits")
    misses = _counter_total(events, "cache.misses")
    lookups = hits + alias + misses
    if not lookups:
        return None
    return (hits + alias) / lookups


def render_trace(
    events: Sequence[LedgerEvent], slowest: int = 5
) -> str:
    """The human timeline of one persisted run ledger."""
    from repro.analysis.tables import render_table

    lines: list[str] = []
    run_ids = sorted({event.run_id for event in events})
    workers = sorted({event.worker_id for event in events})
    cells = sorted(
        {
            event.cell_id
            for event in events
            if event.cell_id is not None
        }
    )
    lines.append(
        f"run {', '.join(run_ids) or '-'}: {len(events)} events, "
        f"{len(workers)} worker(s), {len(cells)} cell(s)"
    )

    tree = build_span_tree(events)
    if tree.children:
        lines.append("")
        lines.append("phase tree (accumulated wall time):")
        _render_tree(tree, 1, lines)

    rounds = _round_events(events)
    if rounds:
        lines.append("")
        per_round: dict[int, int] = {}
        for event in rounds:
            index = int(event.attr("round", 0))
            per_round[index] = per_round.get(index, 0) + int(
                event.value or 0
            )
        lines.append(
            f"rounds simulated: {len(rounds)}; correct-sender "
            "messages per round index:"
        )
        lines.append(
            render_table(
                ("round", "messages"),
                [(index, per_round[index]) for index in sorted(per_round)],
            )
        )
        ranked = sorted(
            rounds,
            key=lambda event: event.attr("seconds", 0.0),
            reverse=True,
        )[:slowest]
        lines.append(f"slowest {len(ranked)} rounds:")
        lines.append(
            render_table(
                ("cell", "run", "round", "wall us", "messages"),
                [
                    (
                        event.cell_id or "-",
                        event.attr("run", "-"),
                        event.attr("round", "-"),
                        f"{event.attr('seconds', 0.0) * 1e6:.1f}",
                        event.value,
                    )
                    for event in ranked
                ],
            )
        )

    rate = cache_hit_rate(events)
    if rate is not None:
        lines.append(
            f"cache hit rate: {rate * 100:.1f}% "
            f"({_counter_total(events, 'cache.hits'):.0f} hits, "
            f"{_counter_total(events, 'cache.alias_hits'):.0f} alias, "
            f"{_counter_total(events, 'cache.misses'):.0f} misses)"
        )

    ratio = _last_gauge(events, "bound.vs_floor")
    observed = _last_gauge(events, "bound.observed")
    floor = _last_gauge(events, "bound.floor")
    if ratio is not None:
        detail = ""
        if observed is not None and floor is not None:
            detail = (
                f" ({observed.value:.0f} messages vs "
                f"t²/32 = {floor.value:.1f})"
            )
        lines.append(
            f"messages / (t²/32): {ratio.value:.3f}{detail}"
        )

    if cells:
        lines.append("")
        lines.append("per-cell summary:")
        rows = []
        for cell in cells:
            cell_events = [
                event for event in events if event.cell_id == cell
            ]
            wall = _last_gauge(cell_events, "cell.wall_seconds")
            errors = _counter_total(cell_events, "cell.error")
            artifacts = sum(
                1
                for event in cell_events
                if event.kind == "artifact"
            )
            rows.append(
                (
                    cell,
                    f"{wall.value * 1e3:.1f}" if wall else "-",
                    len(cell_events),
                    artifacts,
                    "ERROR" if errors else "ok",
                )
            )
        lines.append(
            render_table(
                ("cell", "wall ms", "events", "artifacts", "status"),
                rows,
            )
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# trend reporting
# ----------------------------------------------------------------------


def trend_point(label: str = "attack/ring-token/n12/t8") -> dict[str, Any]:
    """Run the canary attack and distill its ledger into one point.

    The canary is the bench-suite regime (ring-token at ``n=12, t=8``,
    reuse on): small enough for CI, heavy enough that the cache, the
    scan and the merge all run.  Deterministic fields
    (``rounds_simulated``, ``events``, ``messages_observed``) move only
    when the pipeline's behavior changes; ``wall_seconds`` tracks speed.
    """
    from repro.lowerbound.driver import attack_weak_consensus
    from repro.obs.ledger import RunLedger
    from repro.obs.tracer import LedgerTracer
    from repro.protocols.subquadratic import ring_token_spec

    ledger = RunLedger()
    begin = time.perf_counter()
    outcome = attack_weak_consensus(
        ring_token_spec(12, 8), tracer=LedgerTracer(ledger)
    )
    wall = time.perf_counter() - begin
    rate = cache_hit_rate(ledger.events)
    return {
        "ts": time.time(),
        "label": label,
        "wall_seconds": wall,
        "rounds_simulated": outcome.rounds_simulated,
        "rounds_baseline": outcome.rounds_baseline,
        "messages_observed": outcome.bound.observed,
        "events": len(ledger.events),
        "cache_hit_rate": rate,
        "violation": outcome.found_violation,
    }


@dataclass(frozen=True)
class TrendDelta:
    """The appended point, its predecessor, and the comparison verdict."""

    point: dict[str, Any]
    previous: dict[str, Any] | None
    regressions: tuple[str, ...]
    notes: tuple[str, ...]

    @property
    def ok(self) -> bool:
        """Whether no wall-clock regression was flagged."""
        return not self.regressions

    def render(self) -> str:
        lines = [
            f"trend point: {self.point['label']} "
            f"wall={self.point['wall_seconds'] * 1e3:.1f} ms "
            f"rounds={self.point['rounds_simulated']} "
            f"events={self.point['events']}"
        ]
        if self.previous is None:
            lines.append("first recorded point — nothing to diff against")
        else:
            previous_wall = self.previous.get("wall_seconds", 0.0)
            if previous_wall:
                change = (
                    self.point["wall_seconds"] / previous_wall - 1.0
                ) * 100
                lines.append(
                    f"wall vs previous: {change:+.1f}% "
                    f"({previous_wall * 1e3:.1f} ms before)"
                )
        for note in self.notes:
            lines.append(f"note: {note}")
        for regression in self.regressions:
            lines.append(f"REGRESSION: {regression}")
        return "\n".join(lines)


def read_trend(path: str) -> list[dict[str, Any]]:
    """Every recorded trend point (empty when the log doesn't exist).

    Raises:
        ArtifactError: if the log exists but contains a line that is
            not a JSON object — the CLI maps this to exit 2.  The
            diagnostic is the shared :mod:`repro.artifact` ``file:line``
            one-liner.
    """
    from repro.artifact import load_artifact_lines

    def parse(line: str) -> dict[str, Any]:
        point = json.loads(line)
        if not isinstance(point, dict):
            raise ValueError("line is not a JSON object")
        return point

    return load_artifact_lines(
        path, "trend point", parse, missing_ok=True
    )


def trend_delta(
    point: dict[str, Any],
    previous: dict[str, Any] | None,
    threshold: float = 0.2,
) -> TrendDelta:
    """Diff one trend point against its predecessor (pure, no I/O).

    A ``wall_seconds`` increase beyond ``threshold`` (default 20%) is a
    flagged regression; any change in the deterministic counters is
    surfaced as a note (it signals a behavior change, not noise).
    Shared by the legacy ``trend.jsonl`` appender and the world-log
    trend recorder — one comparison policy for both stores.
    """
    regressions: list[str] = []
    notes: list[str] = []
    if previous is not None:
        previous_wall = previous.get("wall_seconds") or 0.0
        if (
            previous_wall
            and point["wall_seconds"] > previous_wall * (1 + threshold)
        ):
            regressions.append(
                f"wall_seconds {point['wall_seconds']:.4f} is "
                f"{(point['wall_seconds'] / previous_wall - 1) * 100:.0f}%"
                f" above the previous {previous_wall:.4f} "
                f"(threshold {threshold * 100:.0f}%)"
            )
        for key in _DETERMINISTIC_KEYS:
            if key in previous and previous[key] != point.get(key):
                notes.append(
                    f"{key} changed {previous[key]!r} -> "
                    f"{point.get(key)!r}"
                )
    return TrendDelta(
        point=point,
        previous=previous,
        regressions=tuple(regressions),
        notes=tuple(notes),
    )


def append_trend(
    path: str,
    point: dict[str, Any],
    threshold: float = 0.2,
) -> TrendDelta:
    """Append ``point`` to the trend log and diff it against the last.

    See :func:`trend_delta` for the comparison policy.
    """
    history = read_trend(path)
    previous = history[-1] if history else None
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(point))
        handle.write("\n")
    return trend_delta(point, previous, threshold)


def events_from(
    source: "Iterable[LedgerEvent] | str",
) -> list[LedgerEvent]:
    """Events from a ledger path or an in-memory event iterable."""
    if isinstance(source, str):
        from repro.obs.ledger import read_events

        return read_events(source)
    return list(source)
