"""The metrics registry: named counters, gauges and histograms.

A :class:`MetricsRegistry` is the process-local aggregation point the
tracing layer streams into: the round observer feeds it per-round
message counts, round wall times and the running messages-vs-``t²/32``
ratio; the driver folds in its :class:`ExecutionCache` counters at the
end of a pipeline (:meth:`MetricsRegistry.absorb_cache`).  Registries
are picklable and :meth:`MetricsRegistry.merge` is **associative** with
the empty registry as identity, so per-worker registries fold into one
sweep aggregate in any grouping — the same counters-only contract
``ExecutionCache.merge_stats`` established for cache accounting.

Worked example::

    >>> registry = MetricsRegistry()
    >>> registry.counter("cache.hits").add(3)
    >>> registry.counter("cache.hits").add(2)
    >>> registry.counter("cache.hits").total
    5
    >>> registry.gauge("bound.vs_floor").set(1.25)
    >>> registry.histogram("round.seconds").record(0.5)
    >>> registry.histogram("round.seconds").record(1.5)
    >>> registry.histogram("round.seconds").mean
    1.0

Merging sums counters and histograms and keeps the most recently
updated gauge::

    >>> other = MetricsRegistry()
    >>> other.counter("cache.hits").add(10)
    >>> other.gauge("bound.vs_floor").set(2.0)
    >>> merged = registry.merge(other)
    >>> merged.counter("cache.hits").total
    15
    >>> merged.gauge("bound.vs_floor").value
    2.0
    >>> empty = MetricsRegistry()
    >>> empty.merge(registry).snapshot() == registry.snapshot()
    True
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.obs.tracer import Tracer


@dataclass
class Counter:
    """A monotone occurrence count."""

    name: str
    total: float = 0

    def add(self, value: float = 1) -> None:
        """Increment by ``value`` (non-negative)."""
        self.total += value

    def merged(self, other: "Counter") -> "Counter":
        """The element-wise sum."""
        return Counter(name=self.name, total=self.total + other.total)


@dataclass
class Gauge:
    """A last-value-wins sampled measurement."""

    name: str
    value: float | None = None
    updates: int = 0

    def set(self, value: float) -> None:
        """Record the latest sample."""
        self.value = value
        self.updates += 1

    def merged(self, other: "Gauge") -> "Gauge":
        """The later-updated value wins (right operand on updates)."""
        value = other.value if other.updates else self.value
        return Gauge(
            name=self.name,
            value=value,
            updates=self.updates + other.updates,
        )


@dataclass
class Histogram:
    """A streaming summary: count, total, min, max (hence mean)."""

    name: str
    count: int = 0
    total: float = 0.0
    min: float | None = None
    max: float | None = None

    def record(self, value: float) -> None:
        """Fold one observation into the summary."""
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    @property
    def mean(self) -> float:
        """The mean observation (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def merged(self, other: "Histogram") -> "Histogram":
        """The summary of the union of both observation streams."""
        mins = [m for m in (self.min, other.min) if m is not None]
        maxs = [m for m in (self.max, other.max) if m is not None]
        return Histogram(
            name=self.name,
            count=self.count + other.count,
            total=self.total + other.total,
            min=min(mins) if mins else None,
            max=max(maxs) if maxs else None,
        )


@dataclass
class MetricsRegistry:
    """A named, mergeable, picklable collection of metrics.

    Instruments are created on first access and keep insertion order,
    so emission and rendering are deterministic.
    """

    _counters: dict[str, Counter] = field(default_factory=dict)
    _gauges: dict[str, Gauge] = field(default_factory=dict)
    _histograms: dict[str, Histogram] = field(default_factory=dict)

    def counter(self, name: str) -> Counter:
        """The counter registered under ``name`` (created on demand)."""
        if name not in self._counters:
            self._counters[name] = Counter(name)
        return self._counters[name]

    def gauge(self, name: str) -> Gauge:
        """The gauge registered under ``name`` (created on demand)."""
        if name not in self._gauges:
            self._gauges[name] = Gauge(name)
        return self._gauges[name]

    def histogram(self, name: str) -> Histogram:
        """The histogram registered under ``name`` (created on demand)."""
        if name not in self._histograms:
            self._histograms[name] = Histogram(name)
        return self._histograms[name]

    def absorb_cache(self, stats: Any) -> None:
        """Fold execution-cache counters into ``cache.*`` metrics.

        ``stats`` is anything exposing integer ``hits`` /
        ``alias_hits`` / ``misses`` attributes — a live
        :class:`~repro.lowerbound.driver.ExecutionCache` or the
        picklable :class:`~repro.parallel.jobs.CacheStats` counters a
        worker ships home.
        """
        self.counter("cache.hits").add(stats.hits)
        self.counter("cache.alias_hits").add(stats.alias_hits)
        self.counter("cache.misses").add(stats.misses)

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """The associative fold of two registries (new registry)."""
        merged = MetricsRegistry()
        for name, counter in self._counters.items():
            merged._counters[name] = Counter(name, counter.total)
        for name, counter in other._counters.items():
            if name in merged._counters:
                merged._counters[name] = merged._counters[name].merged(
                    counter
                )
            else:
                merged._counters[name] = Counter(name, counter.total)
        for name, gauge in self._gauges.items():
            merged._gauges[name] = Gauge(name, gauge.value, gauge.updates)
        for name, gauge in other._gauges.items():
            if name in merged._gauges:
                merged._gauges[name] = merged._gauges[name].merged(gauge)
            else:
                merged._gauges[name] = Gauge(
                    name, gauge.value, gauge.updates
                )
        for name, histogram in self._histograms.items():
            merged._histograms[name] = Histogram(
                name,
                histogram.count,
                histogram.total,
                histogram.min,
                histogram.max,
            )
        for name, histogram in other._histograms.items():
            if name in merged._histograms:
                merged._histograms[name] = merged._histograms[
                    name
                ].merged(histogram)
            else:
                merged._histograms[name] = Histogram(
                    name,
                    histogram.count,
                    histogram.total,
                    histogram.min,
                    histogram.max,
                )
        return merged

    def snapshot(self) -> dict[str, Any]:
        """A JSON-serializable view of every registered instrument."""
        return {
            "counters": {
                name: counter.total
                for name, counter in self._counters.items()
            },
            "gauges": {
                name: gauge.value
                for name, gauge in self._gauges.items()
            },
            "histograms": {
                name: {
                    "count": histogram.count,
                    "total": histogram.total,
                    "min": histogram.min,
                    "max": histogram.max,
                    "mean": histogram.mean,
                }
                for name, histogram in self._histograms.items()
            },
        }

    def emit(self, tracer: "Tracer") -> None:
        """Publish every instrument as typed ledger events.

        Counters become ``counter`` events, gauges ``gauge`` events, and
        each histogram one ``gauge`` event carrying its mean with the
        full summary in the attributes — all in registration order, so
        the emitted sequence is deterministic.
        """
        for name, counter in self._counters.items():
            tracer.counter(name, value=counter.total)
        for name, gauge in self._gauges.items():
            if gauge.value is not None:
                tracer.gauge(name, value=gauge.value)
        for name, histogram in self._histograms.items():
            tracer.gauge(
                name,
                value=histogram.mean,
                count=histogram.count,
                total=histogram.total,
                min=histogram.min,
                max=histogram.max,
            )

    def cache_hit_rate(self) -> float | None:
        """``(hits + alias_hits) / lookups`` or ``None`` without data."""
        hits = self.counter("cache.hits").total
        alias = self.counter("cache.alias_hits").total
        misses = self.counter("cache.misses").total
        lookups = hits + alias + misses
        if not lookups:
            return None
        return (hits + alias) / lookups
