"""Span tracing over the run ledger, with a zero-overhead no-op default.

:class:`Tracer` is the *null* tracer: every hook is a constant-return
no-op (``span`` hands back one shared :func:`~contextlib.nullcontext`,
``round_observers`` returns an empty tuple so instrumented engine runs
attach nothing), so un-traced pipelines pay one attribute check per
phase and nothing per round.  The shared :data:`NULL_TRACER` instance is
the default everywhere a tracer is accepted.

:class:`LedgerTracer` is the live implementation: spans become paired
``span-start``/``span-end`` events, counters/gauges/artifacts become
their typed events, and :meth:`LedgerTracer.round_observers` yields a
:class:`RoundTraceObserver` that turns every simulated
:class:`~repro.sim.engine.RoundEvent` into one ``engine.round`` counter
event carrying the round's correct-sender message count, wall time and
the running messages-vs-``t²/32`` ratio — the paper's quantity of
interest as a first-class time series.

The tracer subsumes the older wall-clock instruments: the driver's
pipeline phases (fault-free probe, isolation scan, swap, merge, witness
verify, certify) emit spans through it, and per-round timing previously
only available via :class:`~repro.parallel.profiling.ProfilingObserver`
rides on the round events.  Trace data is wall-clock telemetry and is
*never* part of outcome equality.
"""

from __future__ import annotations

import time
from contextlib import contextmanager, nullcontext
from typing import TYPE_CHECKING, Any, ContextManager, Iterator

from repro.obs.ledger import RunLedger
from repro.sim.engine import RoundEvent, RoundObserver

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.obs.metrics import MetricsRegistry

_NULL_CONTEXT: ContextManager[None] = nullcontext()


class Tracer:
    """The no-op tracer: zero events, zero per-round observers.

    Every hook is safe to call unconditionally; hot paths may also
    branch on :attr:`enabled` to skip argument construction entirely.
    """

    enabled = False

    def span(self, name: str, **attrs: Any) -> ContextManager[None]:
        """A timing span context — the shared no-op context here."""
        return _NULL_CONTEXT

    def counter(
        self, name: str, value: float | int = 1, **attrs: Any
    ) -> None:
        """Record a counter increment (no-op here)."""

    def gauge(self, name: str, value: float | int, **attrs: Any) -> None:
        """Record a sampled gauge value (no-op here)."""

    def artifact(self, name: str, ref: str, **attrs: Any) -> None:
        """Record a reference to a produced artifact (no-op here)."""

    def round_observers(
        self,
        floor: float | None = None,
        metrics: "MetricsRegistry | None" = None,
    ) -> tuple[RoundObserver, ...]:
        """Engine observers to attach to instrumented runs (none here)."""
        return ()


NULL_TRACER = Tracer()
"""The shared zero-overhead default tracer."""


class LedgerTracer(Tracer):
    """A tracer that appends typed events to a :class:`RunLedger`.

    Args:
        ledger: the destination event log.
        cell_id: the sweep-cell correlation id stamped on every emitted
            event (``None`` outside sweeps).
    """

    enabled = True

    def __init__(
        self, ledger: RunLedger, cell_id: str | None = None
    ) -> None:
        self.ledger = ledger
        self.cell_id = cell_id

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[None]:
        """Emit paired ``span-start``/``span-end`` events around the body."""
        self.ledger.emit(
            "span-start", name, cell_id=self.cell_id, **attrs
        )
        try:
            yield
        finally:
            self.ledger.emit("span-end", name, cell_id=self.cell_id)

    def counter(
        self, name: str, value: float | int = 1, **attrs: Any
    ) -> None:
        self.ledger.emit(
            "counter", name, value=value, cell_id=self.cell_id, **attrs
        )

    def gauge(self, name: str, value: float | int, **attrs: Any) -> None:
        self.ledger.emit(
            "gauge", name, value=value, cell_id=self.cell_id, **attrs
        )

    def artifact(self, name: str, ref: str, **attrs: Any) -> None:
        self.ledger.emit(
            "artifact", name, value=ref, cell_id=self.cell_id, **attrs
        )

    def round_observers(
        self,
        floor: float | None = None,
        metrics: "MetricsRegistry | None" = None,
    ) -> tuple[RoundObserver, ...]:
        return (RoundTraceObserver(self, floor=floor, metrics=metrics),)


class RoundTraceObserver(RoundObserver):
    """Per-round engine telemetry: one ``engine.round`` event per round.

    One instance follows a whole driver pipeline (attached to every
    engine run it launches, like the profiling observer); the ``run``
    attribute on each event distinguishes the pipeline's successive
    simulations.  Per event: the round's correct-sender message count
    (the §2 complexity contribution), the round's wall time, the
    cumulative in-run message count and — when the ``t²/32`` floor was
    supplied — the running messages-vs-floor ratio.

    When a :class:`~repro.obs.metrics.MetricsRegistry` is supplied the
    observer also streams into it: the ``engine.round_messages``
    counter, the ``engine.round_seconds`` histogram and the
    ``bound.vs_floor`` gauge, updated every round.
    """

    def __init__(
        self,
        tracer: LedgerTracer,
        floor: float | None = None,
        metrics: "MetricsRegistry | None" = None,
    ) -> None:
        self.tracer = tracer
        self.floor = floor
        self.metrics = metrics
        self.rounds_seen = 0
        self._run = -1
        self._cum = 0
        self._mark: float | None = None

    def on_run_start(self, config, machines, adversary) -> None:
        self._run += 1
        self._cum = 0
        self._mark = time.perf_counter()

    def on_round(self, event: RoundEvent) -> None:
        now = time.perf_counter()
        seconds = 0.0 if self._mark is None else now - self._mark
        self._mark = now
        messages = event.sent_by_correct()
        self._cum += messages
        self.rounds_seen += 1
        attrs: dict[str, Any] = {
            "round": event.round,
            "run": self._run,
            "seconds": seconds,
            "cum_messages": self._cum,
        }
        if self.floor:
            attrs["vs_floor"] = self._cum / self.floor
        self.tracer.counter("engine.round", value=messages, **attrs)
        if self.metrics is not None:
            self.metrics.counter("engine.round_messages").add(messages)
            self.metrics.histogram("engine.round_seconds").record(
                seconds
            )
            if self.floor:
                self.metrics.gauge("bound.vs_floor").set(
                    self._cum / self.floor
                )

    def on_run_end(self, final_states, corrupted) -> None:
        self._mark = None
