"""The benchmark observatory: statistical timing with a persisted trajectory.

The eleven ``benchmarks/bench_*.py`` modules define the *kernels* — the
experiment regenerations and simulator-core loops whose cost this
repository cares about.  Under pytest they run through pytest-benchmark
and emit the text reports EXPERIMENTS.md collects; this module gives the
same kernels a second, pytest-free life as a *measured subsystem*:

* :class:`BenchRunner` executes a kernel with warmup plus ``N`` timed
  repetitions and reduces the samples to :class:`BenchStats` —
  min/median/IQR with one-sided (upper-fence) outlier rejection and a
  relative **noise estimate** (``IQR / median``) that downstream
  comparisons gate on;
* every run also captures a :mod:`tracemalloc` peak and the sim-engine
  object-materialization deltas
  (:func:`repro.sim.engine.object_counts`), measured in a dedicated
  non-timed pass so memory instrumentation never pollutes the timings;
* every point is stamped with an **environment fingerprint** (git SHA,
  python version, platform, CPU count) so a trajectory spanning machines
  or commits stays interpretable;
* points append to ``BENCH_<suite>.json`` — a schema-versioned
  (:data:`BENCH_SCHEMA`) JSON document per suite — and
  :func:`compare_points` applies the noise-aware regression gate: a
  kernel is flagged only when its median delta exceeds
  ``max(threshold, 3 × measured noise)``.

Kernels register themselves via :func:`register` (or the
:func:`benchmark_kernel` decorator) at the bottom of each benchmark module;
:func:`load_benchmark_modules` imports ``bench_*.py`` files from a
directory so ``repro bench run`` works from a plain checkout, outside
pytest.

Worked example (statistics are pure functions of the samples)::

    >>> stats = BenchStats.of([1.0, 1.1, 1.05, 1.02, 9.0])
    >>> stats.outliers_rejected
    1
    >>> round(stats.min, 2), round(stats.median, 3)
    (1.0, 1.035)
    >>> stats.noise < 0.2
    True
"""

from __future__ import annotations

import importlib.util
import json
import os
import sys
import time
import tracemalloc
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Sequence

from repro.errors import ReproError

BENCH_SCHEMA = "repro.bench/v1"
"""The schema tag stamped on every persisted benchmark point."""

QUICK_REPETITIONS = 3
"""Timed repetitions in the ``--quick`` tier."""

FULL_REPETITIONS = 7
"""Timed repetitions in the full tier."""


class BenchError(ReproError):
    """A benchmark-observatory failure (unknown suite, malformed file)."""


# ----------------------------------------------------------------------
# statistics
# ----------------------------------------------------------------------


def _quantile(ordered: Sequence[float], q: float) -> float:
    """The ``q``-quantile of pre-sorted samples, linearly interpolated."""
    if not ordered:
        raise ValueError("no samples")
    if len(ordered) == 1:
        return ordered[0]
    position = q * (len(ordered) - 1)
    low = int(position)
    high = min(low + 1, len(ordered) - 1)
    weight = position - low
    return ordered[low] * (1 - weight) + ordered[high] * weight


@dataclass(frozen=True)
class BenchStats:
    """Repetition statistics for one kernel's timing samples.

    Outlier rejection is one-sided: timing noise on a quiet machine only
    ever makes a deterministic kernel *slower* (scheduler preemption, GC,
    page faults), so samples above the Tukey upper fence
    ``Q3 + 1.5·IQR`` of the raw samples are dropped before the summary
    statistics; a fast sample is evidence about the true cost and is
    always kept.  ``noise`` is the relative spread ``IQR / median`` of
    the kept samples — the quantity regression gates scale with.

    Attributes:
        samples: the raw timed repetitions, in execution order (seconds).
        kept: the samples surviving outlier rejection, sorted ascending.
    """

    samples: tuple[float, ...]
    kept: tuple[float, ...]

    @classmethod
    def of(cls, samples: Iterable[float]) -> "BenchStats":
        """Reduce raw timing samples to statistics."""
        raw = tuple(float(sample) for sample in samples)
        if not raw:
            raise ValueError("a benchmark needs at least one sample")
        ordered = sorted(raw)
        q1 = _quantile(ordered, 0.25)
        q3 = _quantile(ordered, 0.75)
        fence = q3 + 1.5 * (q3 - q1)
        kept = tuple(sample for sample in ordered if sample <= fence)
        return cls(samples=raw, kept=kept)

    @property
    def min(self) -> float:
        """The fastest kept sample — the best estimate of the true cost."""
        return self.kept[0]

    @property
    def median(self) -> float:
        """The median kept sample — what comparisons run on."""
        return _quantile(self.kept, 0.5)

    @property
    def q1(self) -> float:
        """The first quartile of the kept samples."""
        return _quantile(self.kept, 0.25)

    @property
    def q3(self) -> float:
        """The third quartile of the kept samples."""
        return _quantile(self.kept, 0.75)

    @property
    def iqr(self) -> float:
        """The interquartile range of the kept samples."""
        return self.q3 - self.q1

    @property
    def noise(self) -> float:
        """Relative spread ``IQR / median`` (0.0 for a zero median)."""
        median = self.median
        return self.iqr / median if median else 0.0

    @property
    def outliers_rejected(self) -> int:
        """How many raw samples fell above the upper Tukey fence."""
        return len(self.samples) - len(self.kept)

    def to_payload(self) -> dict[str, Any]:
        """The JSON view persisted inside a benchmark point."""
        return {
            "repetitions": len(self.samples),
            "min": self.min,
            "median": self.median,
            "q1": self.q1,
            "q3": self.q3,
            "iqr": self.iqr,
            "noise": self.noise,
            "outliers_rejected": self.outliers_rejected,
            "samples": list(self.samples),
        }


# ----------------------------------------------------------------------
# kernels and the registry
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class BenchKernel:
    """One registered, zero-argument benchmark kernel.

    Attributes:
        suite: the suite the kernel belongs to (``e1`` … ``e9``, ``a1``,
            ``sim_core``); one ``BENCH_<suite>.json`` trajectory per
            suite.
        name: the kernel's name within the suite.
        fn: the zero-argument callable to measure.  Kernels assert their
            own shape claims (like the pytest benches), so a timing run
            doubles as a correctness run.
        quick: whether the kernel belongs to the ``--quick`` tier (small
            parameters, CI-speed); full-tier kernels run only without
            ``--quick``.
    """

    suite: str
    name: str
    fn: Callable[[], Any]
    quick: bool = False

    @property
    def key(self) -> tuple[str, str]:
        """The registry key ``(suite, name)``."""
        return (self.suite, self.name)

    @property
    def label(self) -> str:
        """The human label ``suite/name``."""
        return f"{self.suite}/{self.name}"


_REGISTRY: dict[tuple[str, str], BenchKernel] = {}


def register(
    suite: str,
    name: str,
    fn: Callable[[], Any],
    *,
    quick: bool = False,
) -> BenchKernel:
    """Register (or re-register) one kernel with the observatory."""
    kernel = BenchKernel(suite=suite, name=name, fn=fn, quick=quick)
    _REGISTRY[kernel.key] = kernel
    return kernel


def benchmark_kernel(
    suite: str, name: str | None = None, *, quick: bool = False
) -> Callable[[Callable[[], Any]], Callable[[], Any]]:
    """Decorator form of :func:`register` (name defaults to ``fn.__name__``)."""

    def decorate(fn: Callable[[], Any]) -> Callable[[], Any]:
        register(suite, name or fn.__name__, fn, quick=quick)
        return fn

    return decorate


def kernels(
    suites: Sequence[str] | None = None, quick: bool | None = None
) -> list[BenchKernel]:
    """Registered kernels, filtered by suite and tier, in stable order.

    Raises:
        BenchError: when ``suites`` names a suite with no kernels.
    """
    selected = sorted(_REGISTRY.values(), key=lambda kernel: kernel.key)
    if suites is not None:
        known = {kernel.suite for kernel in selected}
        missing = sorted(set(suites) - known)
        if missing:
            raise BenchError(
                f"unknown bench suite(s) {', '.join(missing)}; "
                f"registered: {', '.join(sorted(known)) or '(none)'}"
            )
        selected = [
            kernel for kernel in selected if kernel.suite in suites
        ]
    if quick:
        selected = [kernel for kernel in selected if kernel.quick]
    return selected


def load_benchmark_modules(directory: str) -> list[str]:
    """Import every ``bench_*.py`` module under ``directory``.

    Importing a benchmark module executes its registration block, which
    populates the observatory registry.  The directory is prepended to
    ``sys.path`` for the duration so intra-directory imports (the
    ``conftest`` report helpers) resolve exactly as they do under
    pytest.  Returns the module file names imported, sorted.

    Raises:
        BenchError: when ``directory`` has no benchmark modules.
    """
    path = os.path.abspath(directory)
    if not os.path.isdir(path):
        raise BenchError(f"benchmark directory {directory!r} not found")
    files = sorted(
        name
        for name in os.listdir(path)
        if name.startswith("bench_") and name.endswith(".py")
    )
    if not files:
        raise BenchError(
            f"no bench_*.py modules under {directory!r}"
        )
    inserted = path not in sys.path
    if inserted:
        sys.path.insert(0, path)
    try:
        for file_name in files:
            module_name = file_name[: -len(".py")]
            spec = importlib.util.spec_from_file_location(
                module_name, os.path.join(path, file_name)
            )
            assert spec is not None and spec.loader is not None
            module = importlib.util.module_from_spec(spec)
            # Re-executing an already imported module would double-run
            # its registration block (harmlessly) but waste time; reuse.
            existing = sys.modules.get(module_name)
            if existing is not None and getattr(
                existing, "__file__", None
            ) == os.path.join(path, file_name):
                continue
            sys.modules[module_name] = module
            spec.loader.exec_module(module)
    finally:
        if inserted:
            sys.path.remove(path)
    return files


# ----------------------------------------------------------------------
# the runner
# ----------------------------------------------------------------------


def environment_fingerprint() -> dict[str, Any]:
    """Where a benchmark point was measured: commit, interpreter, host.

    Best-effort: a checkout without git (or a non-repository directory)
    records ``"unknown"`` for the SHA rather than failing the run.
    """
    import platform
    import subprocess

    try:
        probe = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
        )
        git_sha = probe.stdout.strip() if probe.returncode == 0 else "unknown"
    except (OSError, subprocess.SubprocessError):
        git_sha = "unknown"
    return {
        "git_sha": git_sha or "unknown",
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
    }


@dataclass(frozen=True)
class BenchPoint:
    """One measured benchmark point, ready to persist.

    The payload (:meth:`to_payload`) is the schema-versioned record the
    ``BENCH_<suite>.json`` trajectory accumulates.
    """

    kernel: str
    suite: str
    stats: BenchStats
    tracemalloc_peak_bytes: int
    objects: dict[str, int]
    fingerprint: dict[str, Any]
    warmup: int
    tier: str
    unix_time: float

    def to_payload(self) -> dict[str, Any]:
        """The JSON record appended to the suite trajectory."""
        return {
            "schema": BENCH_SCHEMA,
            "suite": self.suite,
            "kernel": self.kernel,
            "tier": self.tier,
            "warmup": self.warmup,
            "unix_time": self.unix_time,
            "stats": self.stats.to_payload(),
            "memory": {
                "tracemalloc_peak_bytes": self.tracemalloc_peak_bytes
            },
            "objects": dict(self.objects),
            "fingerprint": dict(self.fingerprint),
        }


@dataclass
class BenchRunner:
    """Measures registered kernels: warmup, timed repetitions, memory.

    The measurement protocol, per kernel:

    1. ``warmup`` untimed executions (caches, imports, allocator warmup);
    2. ``repetitions`` timed executions under ``clock`` — *without* any
       memory instrumentation, so timings are clean;
    3. one dedicated accounting pass under :mod:`tracemalloc` that also
       snapshots the sim-engine object counters, yielding the per-call
       allocation peak and exact object-materialization deltas.

    Args:
        repetitions: timed executions per kernel.
        warmup: untimed executions before the first timed one.
        clock: timestamp source (injectable: the statistics tests script
            it, so tier-1 never measures real time).
        trace_memory: disable to skip the accounting pass entirely
            (``tracemalloc_peak_bytes`` records 0).
        tier: the tier label stamped on the emitted points.
    """

    repetitions: int = FULL_REPETITIONS
    warmup: int = 1
    clock: Callable[[], float] = time.perf_counter
    trace_memory: bool = True
    tier: str = "full"

    def __post_init__(self) -> None:
        if self.repetitions < 1:
            raise ValueError(
                f"need at least one repetition, got {self.repetitions}"
            )
        if self.warmup < 0:
            raise ValueError(f"negative warmup {self.warmup}")

    def measure(self, kernel: BenchKernel) -> BenchPoint:
        """Run one kernel through the full measurement protocol."""
        for _ in range(self.warmup):
            kernel.fn()
        samples: list[float] = []
        for _ in range(self.repetitions):
            begin = self.clock()
            kernel.fn()
            samples.append(self.clock() - begin)
        peak, objects = self._accounting_pass(kernel)
        return BenchPoint(
            kernel=kernel.name,
            suite=kernel.suite,
            stats=BenchStats.of(samples),
            tracemalloc_peak_bytes=peak,
            objects=objects,
            fingerprint=environment_fingerprint(),
            warmup=self.warmup,
            tier=self.tier,
            unix_time=time.time(),
        )

    def _accounting_pass(
        self, kernel: BenchKernel
    ) -> tuple[int, dict[str, int]]:
        """One non-timed execution under memory/object instrumentation."""
        from repro.sim.engine import object_counts, object_counts_delta

        before = object_counts()
        if not self.trace_memory:
            kernel.fn()
            return 0, object_counts_delta(before)
        # Nested tracing (a caller already profiling) degrades to
        # counters-only rather than clobbering the outer trace.
        if tracemalloc.is_tracing():
            kernel.fn()
            return 0, object_counts_delta(before)
        tracemalloc.start()
        try:
            kernel.fn()
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        return peak, object_counts_delta(before)


# ----------------------------------------------------------------------
# the persisted trajectory
# ----------------------------------------------------------------------


def trajectory_file_name(suite: str) -> str:
    """The trajectory file name for ``suite``."""
    return f"BENCH_{suite}.json"


def read_bench_file(path: str) -> list[dict[str, Any]]:
    """Every point of one trajectory file, oldest first.

    Raises:
        OSError: when the file cannot be read.
        ArtifactError: when the document is not a known bench
            trajectory (an environment failure; the CLI exits 2).  The
            diagnostic is the shared :mod:`repro.artifact` one-liner.
    """
    from repro.artifact import load_artifact

    def parse(text: str) -> list[dict[str, Any]]:
        document = json.loads(text)
        if (
            not isinstance(document, dict)
            or document.get("schema") != BENCH_SCHEMA
            or not isinstance(document.get("points"), list)
        ):
            raise ValueError(
                f"expected schema {BENCH_SCHEMA!r} with a points list"
            )
        return document["points"]

    return load_artifact(path, "bench trajectory", parse)


def append_points(
    directory: str, points: Iterable[BenchPoint]
) -> list[str]:
    """Append points to their per-suite trajectories under ``directory``.

    Creates ``directory`` (and each ``BENCH_<suite>.json``) on demand;
    existing trajectories keep their history — the trajectory is the
    point, one run after another.  Returns the file paths written.
    """
    by_suite: dict[str, list[BenchPoint]] = {}
    for point in points:
        by_suite.setdefault(point.suite, []).append(point)
    os.makedirs(directory, exist_ok=True)
    written = []
    for suite, suite_points in sorted(by_suite.items()):
        path = os.path.join(directory, trajectory_file_name(suite))
        history = (
            read_bench_file(path) if os.path.exists(path) else []
        )
        history.extend(point.to_payload() for point in suite_points)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(
                {"schema": BENCH_SCHEMA, "points": history},
                handle,
                indent=2,
                sort_keys=True,
            )
            handle.write("\n")
        written.append(path)
    return written


def latest_by_kernel(
    points: Iterable[dict[str, Any]],
) -> dict[tuple[str, str], dict[str, Any]]:
    """The newest point per ``(suite, kernel)`` (file order breaks ties)."""
    latest: dict[tuple[str, str], dict[str, Any]] = {}
    for point in points:
        latest[(point["suite"], point["kernel"])] = point
    return latest


# ----------------------------------------------------------------------
# comparison
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class KernelDelta:
    """One kernel's baseline-vs-current comparison row.

    ``gate`` is the noise-aware threshold the delta is judged against:
    ``max(threshold, 3 × max(baseline noise, current noise))``.  A
    kernel regresses only when its median slows down by more than the
    gate — so a noisy kernel needs a proportionally bigger slowdown to
    be flagged, and a 20% default floor keeps quiet kernels from
    flagging on measurement jitter.
    """

    suite: str
    kernel: str
    baseline_median: float
    current_median: float
    noise: float
    gate: float
    delta: float

    @property
    def regressed(self) -> bool:
        """Whether the slowdown exceeds the noise-aware gate."""
        return self.delta > self.gate

    @property
    def improved(self) -> bool:
        """Whether the speedup exceeds the noise-aware gate."""
        return self.delta < -self.gate

    @property
    def verdict(self) -> str:
        """``"REGRESSION"``, ``"improved"`` or ``"ok"``."""
        if self.regressed:
            return "REGRESSION"
        if self.improved:
            return "improved"
        return "ok"


@dataclass(frozen=True)
class CompareReport:
    """The gathered baseline-vs-current comparison.

    Attributes:
        deltas: one row per kernel present on both sides.
        missing: kernels in the baseline with no current point
            (``suite/kernel`` labels) — surfaced, never silently
            dropped.
    """

    deltas: tuple[KernelDelta, ...]
    missing: tuple[str, ...] = ()
    threshold: float = 0.2

    @property
    def regressions(self) -> tuple[KernelDelta, ...]:
        """The flagged rows."""
        return tuple(delta for delta in self.deltas if delta.regressed)

    @property
    def ok(self) -> bool:
        """Whether no kernel regressed."""
        return not self.regressions

    def render(self) -> str:
        """The per-kernel comparison table plus the verdict line."""
        from repro.analysis.tables import render_table

        rows = [
            (
                delta.suite,
                delta.kernel,
                f"{delta.baseline_median * 1e3:.2f}",
                f"{delta.current_median * 1e3:.2f}",
                f"{delta.delta * 100:+.1f}%",
                f"{delta.gate * 100:.0f}%",
                delta.verdict,
            )
            for delta in self.deltas
        ]
        table = render_table(
            ("suite", "kernel", "base ms", "now ms", "delta",
             "gate", "verdict"),
            rows,
        )
        lines = [table]
        for label in self.missing:
            lines.append(f"missing current point for {label}")
        flagged = self.regressions
        lines.append(
            f"{len(flagged)} regression(s) in {len(self.deltas)} "
            f"compared kernel(s) "
            f"(gate = max({self.threshold * 100:.0f}%, 3x noise))"
        )
        return "\n".join(lines)


def compare_points(
    baseline: Iterable[dict[str, Any]],
    current: Iterable[dict[str, Any]],
    threshold: float = 0.2,
) -> CompareReport:
    """Compare two point sets with the noise-aware regression gate.

    Both sides are reduced to their newest point per kernel; each shared
    kernel's median delta ``current/baseline - 1`` is judged against
    ``max(threshold, 3 × max(noise_baseline, noise_current))``.
    """
    base = latest_by_kernel(baseline)
    now = latest_by_kernel(current)
    deltas = []
    missing = []
    for key in sorted(base):
        suite, kernel = key
        if key not in now:
            missing.append(f"{suite}/{kernel}")
            continue
        base_stats = base[key]["stats"]
        now_stats = now[key]["stats"]
        base_median = float(base_stats["median"])
        now_median = float(now_stats["median"])
        noise = max(
            float(base_stats.get("noise", 0.0)),
            float(now_stats.get("noise", 0.0)),
        )
        gate = max(threshold, 3.0 * noise)
        delta = (
            now_median / base_median - 1.0 if base_median else 0.0
        )
        deltas.append(
            KernelDelta(
                suite=suite,
                kernel=kernel,
                baseline_median=base_median,
                current_median=now_median,
                noise=noise,
                gate=gate,
                delta=delta,
            )
        )
    return CompareReport(
        deltas=tuple(deltas),
        missing=tuple(missing),
        threshold=threshold,
    )


def render_points(points: Sequence[BenchPoint]) -> str:
    """The per-kernel measurement table a ``bench run`` prints."""
    from repro.analysis.tables import render_table

    rows = [
        (
            point.suite,
            point.kernel,
            f"{point.stats.min * 1e3:.2f}",
            f"{point.stats.median * 1e3:.2f}",
            f"{point.stats.iqr * 1e3:.2f}",
            f"{point.stats.noise * 100:.1f}%",
            point.stats.outliers_rejected,
            f"{point.tracemalloc_peak_bytes / 1024:.0f}",
            point.objects.get("messages_materialized", 0),
            point.objects.get("behaviors_built", 0),
        )
        for point in points
    ]
    return render_table(
        ("suite", "kernel", "min ms", "median ms", "IQR ms", "noise",
         "outliers", "peak KiB", "messages", "behaviors"),
        rows,
    )
