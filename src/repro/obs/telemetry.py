"""The sampled telemetry bus: live run state as observability records.

A run already *has* all the interesting live numbers — the
:class:`~repro.obs.metrics.MetricsRegistry` the tracer streams into,
the :class:`~repro.obs.progress.SweepProgress` heartbeat accounting,
the per-round counts a :class:`~repro.obs.tracer.RoundTraceObserver`
sees — but until now they were only visible *after* the run, via the
derived views.  :class:`TelemetryBus` closes the gap: on a sampling
interval it folds whatever sources are attached into one
``telemetry.snapshot`` world-log record, so ``repro top`` (or any
``LogTailer`` follower) can watch a run converge on the ``t²/32``
floor while it happens.

The contract that makes this safe is **observability-only**:

* ``recover_jobs``, the jobs manifest and sweep resume never look at
  ``telemetry.snapshot`` records (they fold only their own kinds);
* the semantic differ drops them before aligning
  (:data:`~repro.worldlog.diffing.OBSERVABILITY_KINDS`), so a
  telemetry-on run diffs empty against its telemetry-off twin;
* nothing in a snapshot ever feeds back into execution — the bus
  only *reads* its sources.

Cost discipline: a bus that is not attached costs nothing (the driver
and scheduler skip every hook when ``telemetry is None``); an attached
bus costs one monotonic-clock read and one comparison per pump until
the interval elapses, and one registry fold + JSON append when it
does.  The quick-tier ``benchmarks/bench_telemetry.py`` kernels keep
both numbers honest.

>>> from repro.worldlog.store import WorldLog
>>> import tempfile, os
>>> path = os.path.join(tempfile.mkdtemp(), "t.worldlog")
>>> clock = iter([0.0, 10.0, 10.0]).__next__
>>> bus = TelemetryBus(WorldLog.create(path), interval=1.0, clock=clock)
>>> record = bus.sample()
>>> record.kind
'telemetry.snapshot'
>>> record.payload["seq"]
0
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Any, Callable

from repro.errors import ReproError
from repro.sim.engine import RoundEvent, RoundObserver

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.progress import SweepProgress
    from repro.worldlog.record import Record
    from repro.worldlog.store import WorldLog

TELEMETRY_SCHEMA = "repro.telemetry/v1"
"""The schema tag carried by every ``telemetry.snapshot`` payload."""

DEFAULT_INTERVAL = 1.0
"""Default seconds between samples (the ``--telemetry-interval`` default)."""


def parse_interval(
    value: str | float | int, flag: str = "--interval"
) -> float:
    """A positive seconds value from a CLI argument, or a clean error.

    The uniform ``--interval`` / ``--telemetry-interval`` validator:
    anything unparsable or non-positive raises :class:`ReproError`,
    which the CLI renders as the standard one-line ``error: ...``
    stderr diagnostic with exit code 1 — the same shape
    ``repro.artifact`` gives malformed files.

    >>> parse_interval("2.5")
    2.5
    >>> parse_interval("0")
    Traceback (most recent call last):
        ...
    repro.errors.ReproError: --interval expects a positive number of seconds, got '0'
    """
    try:
        seconds = float(value)
    except (TypeError, ValueError):
        seconds = float("nan")
    if not seconds > 0:  # rejects NaN, zero and negatives in one test
        raise ReproError(
            f"{flag} expects a positive number of seconds, "
            f"got {value!r}"
        )
    return seconds


class TelemetryRoundTap(RoundObserver):
    """A self-contained per-round tap feeding one telemetry bus.

    Unlike :class:`~repro.obs.tracer.RoundTraceObserver` it emits no
    ledger events — it only keeps running counts (rounds, cumulative
    correct-sender messages, the vs-floor ratio when the ``t²/32``
    floor is known) and pumps the bus once per round, so telemetry
    works even under the :data:`~repro.obs.tracer.NULL_TRACER`.
    """

    def __init__(
        self, bus: "TelemetryBus", floor: float | None = None
    ) -> None:
        self.bus = bus
        self.floor = floor
        self.rounds_seen = 0
        self.cum_messages = 0
        self._runs = 0
        self._started: float | None = None

    def on_run_start(self, config, machines, adversary) -> None:
        self._runs += 1
        if self._started is None:
            self._started = self.bus._clock()

    def on_round(self, event: RoundEvent) -> None:
        self.rounds_seen += 1
        self.cum_messages += event.sent_by_correct()
        self.bus.maybe_sample()

    def on_run_end(self, final_states, corrupted) -> None:
        pass

    def accounting(self) -> dict[str, Any]:
        """The tap's JSON-safe running totals."""
        rate = None
        if self._started is not None and self.rounds_seen:
            elapsed = self.bus._clock() - self._started
            if elapsed > 0:
                rate = self.rounds_seen / elapsed
        entry: dict[str, Any] = {
            "seen": self.rounds_seen,
            "runs": self._runs,
            "cum_messages": self.cum_messages,
            "rounds_per_second": rate,
        }
        if self.floor:
            entry["vs_floor"] = self.cum_messages / self.floor
        return entry


class TelemetryBus:
    """Sampled folding of live sources into ``telemetry.snapshot`` records.

    Args:
        worldlog: the destination log (appends happen on whatever
            thread pumps the bus — callers keep pumps on the log
            owner's thread, which is why the scheduler pumps from its
            main loop and the server from the event loop).
        interval: seconds between samples; pumps inside the interval
            are one clock read and one comparison.
        metrics: an optional live registry folded into each snapshot.
        progress: an optional :class:`SweepProgress` whose accounting
            is folded into each snapshot.
        clock: monotonic time source (injectable for tests).
        source: a label naming who is sampling (``"attack"``,
            ``"sweep"``, ``"serve"``).
    """

    def __init__(
        self,
        worldlog: "WorldLog",
        *,
        interval: float = DEFAULT_INTERVAL,
        metrics: "MetricsRegistry | None" = None,
        progress: "SweepProgress | None" = None,
        clock: Callable[[], float] = time.monotonic,
        source: str = "run",
    ) -> None:
        self.worldlog = worldlog
        self.interval = parse_interval(interval, "telemetry interval")
        self.metrics = metrics
        self.progress = progress
        self.source = source
        self._clock = clock
        self._began = clock()
        self._last_sample: float | None = None
        self._seq = 0
        self._taps: list[TelemetryRoundTap] = []
        self._extra: list[
            tuple[str, Callable[[], dict[str, Any]]]
        ] = []

    def attach_metrics(self, metrics: "MetricsRegistry") -> None:
        """Fold ``metrics`` into every subsequent snapshot."""
        self.metrics = metrics

    def attach_progress(self, progress: "SweepProgress") -> None:
        """Fold ``progress.accounting()`` into every snapshot."""
        self.progress = progress

    def add_source(
        self, name: str, read: Callable[[], dict[str, Any]]
    ) -> None:
        """Register an arbitrary extra snapshot section.

        ``read`` is called at sample time and must return a JSON-safe
        dict; the section lands under ``name`` in the payload.
        """
        self._extra.append((name, read))

    def round_tap(
        self, floor: float | None = None
    ) -> TelemetryRoundTap:
        """A new per-round observer wired to this bus.

        Attach the returned tap to engine runs alongside the tracer's
        observers; its running totals appear in every snapshot's
        ``rounds`` section.
        """
        tap = TelemetryRoundTap(self, floor=floor)
        self._taps.append(tap)
        return tap

    @property
    def samples(self) -> int:
        """How many snapshots this bus has appended."""
        return self._seq

    def build_snapshot(self) -> dict[str, Any]:
        """The pure fold: one snapshot payload, no appending.

        Key order is stable (schema first), so snapshot payloads render
        deterministically modulo their sampled values.
        """
        payload: dict[str, Any] = {
            "schema": TELEMETRY_SCHEMA,
            "seq": self._seq,
            "source": self.source,
            "uptime_seconds": self._clock() - self._began,
        }
        if self.metrics is not None:
            payload["metrics"] = self.metrics.snapshot()
            rate = self.metrics.cache_hit_rate()
            if rate is not None:
                payload["cache_hit_rate"] = rate
        if self.progress is not None:
            payload["progress"] = self.progress.accounting()
        if self._taps:
            rounds = {
                "seen": 0,
                "runs": 0,
                "cum_messages": 0,
                "rounds_per_second": None,
            }
            for tap in self._taps:
                entry = tap.accounting()
                rounds["seen"] += entry["seen"]
                rounds["runs"] += entry["runs"]
                rounds["cum_messages"] += entry["cum_messages"]
                if entry["rounds_per_second"] is not None:
                    rounds["rounds_per_second"] = (
                        rounds["rounds_per_second"] or 0.0
                    ) + entry["rounds_per_second"]
                if "vs_floor" in entry:
                    rounds["vs_floor"] = entry["vs_floor"]
            payload["rounds"] = rounds
        for name, read in self._extra:
            payload[name] = read()
        return payload

    def sample(self) -> "Record":
        """Append one snapshot now, unconditionally."""
        payload = self.build_snapshot()
        record = self.worldlog.append("telemetry.snapshot", payload)
        self._seq += 1
        self._last_sample = self._clock()
        return record

    def maybe_sample(self) -> "Record | None":
        """Append a snapshot if the interval elapsed; the hot-path pump.

        The fast path — interval not yet elapsed — is one clock read
        and one float comparison.
        """
        now = self._clock()
        if (
            self._last_sample is not None
            and now - self._last_sample < self.interval
        ):
            return None
        return self.sample()

    def close(self) -> "Record | None":
        """Append one final snapshot (the end-of-run picture).

        Skipped when nothing was ever attached *and* nothing was ever
        sampled — an idle bus leaves no record behind.
        """
        if (
            self._seq == 0
            and self.metrics is None
            and self.progress is None
            and not self._taps
            and not self._extra
        ):
            return None
        return self.sample()
