"""Live sweep progress: heartbeat accounting and the stderr status line.

A multi-minute sweep (the E3 cheater matrix, a ``--jobs N`` fan-out) was
previously silent until the gather step returned; this module closes the
liveness gap.  :class:`SweepProgress` is the shared tracker the
:class:`~repro.parallel.scheduler.SweepScheduler` drives:

* the backends report cell lifecycle — :meth:`SweepProgress.start` when
  a cell is launched (serial) or submitted (process pool) and
  :meth:`SweepProgress.note_done` when it completes;
* a monitor thread (:class:`HeartbeatMonitor`) calls
  :meth:`SweepProgress.tick` on a fixed interval, crediting one
  *heartbeat* to every in-flight cell and refreshing the status line;
* the status line — **stderr only**, stdout stays machine-readable —
  shows ``done/total`` cells, elapsed, an ETA extrapolated from the
  completed cells, and a ``STALLED`` flag once no cell has completed
  within the configured quiet period.

Heartbeat *counts* are wall-clock telemetry (they differ run to run and
backend to backend); the scheduler serializes them into the run ledger
at gather time, one deterministic ``cell.start`` / ``cell.heartbeat`` /
``cell.done`` triple per cell in submission order, so the spliced event
*order* stays backend-independent (the PR-4 splice contract).

Everything here is stdlib-only and injectable: the tests drive a fake
clock and a string stream, never a real timer thread.
"""

from __future__ import annotations

import sys
import threading
import time
from typing import Callable, TextIO


def _format_seconds(seconds: float) -> str:
    """Compact human duration (``41s``, ``3m20s``, ``1h02m``)."""
    if seconds < 60:
        return f"{seconds:.0f}s"
    minutes, secs = divmod(int(seconds), 60)
    if minutes < 60:
        return f"{minutes}m{secs:02d}s"
    hours, minutes = divmod(minutes, 60)
    return f"{hours}h{minutes:02d}m"


class SweepProgress:
    """Thread-safe sweep liveness tracker with an stderr status line.

    Args:
        total: how many cells the sweep will run.
        stream: where status lines go (``None`` disables output — the
            tracker still accounts heartbeats for the ledger).  Status
            output belongs on **stderr**; passing stdout would break the
            CLI's stream-hygiene contract.
        stall_after: the quiet period (seconds): once no cell has
            completed for this long while cells remain, the line grows a
            ``STALLED`` flag naming the longest-running cell.
        clock: monotonic time source (injectable for tests).
        label: the line's prefix (e.g. ``"sweep"``, ``"e3"``).
    """

    def __init__(
        self,
        total: int,
        *,
        stream: TextIO | None = None,
        stall_after: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
        label: str = "sweep",
    ) -> None:
        self.total = total
        self.stall_after = stall_after
        self.label = label
        self.heartbeats: dict[str, int] = {}
        self._stream = stream
        self._clock = clock
        self._lock = threading.Lock()
        self._started: dict[str, float] = {}
        self._done = 0
        self._begin = clock()
        self._last_done_at = self._begin
        self._line_open = False

    @property
    def done(self) -> int:
        """How many cells have completed (any status)."""
        with self._lock:
            return self._done

    def start(self, label: str) -> None:
        """Record that ``label``'s cell is now in flight."""
        with self._lock:
            self._started[label] = self._clock()
            self.heartbeats.setdefault(label, 0)

    def note_done(self, label: str) -> None:
        """Record that ``label``'s cell completed.

        Safe to call from executor callback threads; refreshes the
        status line.
        """
        with self._lock:
            self._started.pop(label, None)
            self._done += 1
            self._last_done_at = self._clock()
            line = self._line()
        self._emit(line)

    def tick(self) -> None:
        """One heartbeat: credit in-flight cells, refresh the line."""
        with self._lock:
            for label in self._started:
                self.heartbeats[label] = self.heartbeats.get(label, 0) + 1
            line = self._line()
        self._emit(line)

    def stalled_for(self) -> float:
        """Seconds since the last completion (0.0 once all cells done)."""
        with self._lock:
            if self._done >= self.total:
                return 0.0
            return self._clock() - self._last_done_at

    @property
    def stalled(self) -> bool:
        """Whether the quiet period has elapsed with cells outstanding."""
        return self.stalled_for() > self.stall_after

    def eta_seconds(self) -> float | None:
        """Remaining-time estimate from completed-cell throughput."""
        with self._lock:
            if not self._done or self._done >= self.total:
                return None
            elapsed = self._clock() - self._begin
            return elapsed / self._done * (self.total - self._done)

    def close(self) -> None:
        """Emit the final line and release the terminal."""
        with self._lock:
            line = self._line()
        self._emit(line, final=True)

    def accounting(self) -> dict[str, object]:
        """A JSON-safe snapshot of the tracker's live accounting.

        The telemetry bus folds this into ``telemetry.snapshot``
        records; everything here is wall-clock telemetry, so it never
        feeds a derived view.
        """
        with self._lock:
            now = self._clock()
            in_flight = len(self._started)
            done = self._done
            eta = None
            if done and done < self.total:
                eta = (now - self._begin) / done * (self.total - done)
            quiet = now - self._last_done_at
            return {
                "label": self.label,
                "done": done,
                "total": self.total,
                "in_flight": in_flight,
                "elapsed_seconds": now - self._begin,
                "eta_seconds": eta,
                "stalled": (
                    done < self.total and quiet > self.stall_after
                ),
                "heartbeats": sum(self.heartbeats.values()),
            }

    # -- rendering -----------------------------------------------------

    def _line(self) -> str:
        """The current status line (caller holds the lock)."""
        now = self._clock()
        parts = [
            f"{self.label}: {self._done}/{self.total} cells",
            f"elapsed {_format_seconds(now - self._begin)}",
        ]
        if self._done and self._done < self.total:
            eta = (now - self._begin) / self._done * (
                self.total - self._done
            )
            parts.append(f"eta {_format_seconds(eta)}")
        quiet = now - self._last_done_at
        if self._done < self.total and quiet > self.stall_after:
            slowest = min(
                self._started, key=self._started.get, default=None
            )
            flag = f"STALLED {_format_seconds(quiet)}"
            if slowest is not None:
                flag += f" (longest in flight: {slowest})"
            parts.append(flag)
        return ", ".join(parts)

    def _emit(self, line: str, final: bool = False) -> None:
        if self._stream is None:
            return
        interactive = getattr(self._stream, "isatty", lambda: False)()
        if interactive:
            # Erase the whole previous line (CSI 2K) instead of padding
            # it over: a fixed-width pad wraps on terminals narrower
            # than the pad and the wrapped fragment was never cleared,
            # leaving stale heartbeat text above the gather summary.
            self._stream.write(f"\r\x1b[2K{line}")
            if final:
                self._stream.write("\n")
        else:
            self._stream.write(line + "\n")
        self._stream.flush()


class HeartbeatMonitor:
    """A daemon thread calling :meth:`SweepProgress.tick` on an interval.

    Context-manager usage wraps a sweep::

        with HeartbeatMonitor(progress, interval=1.0):
            ...  # run cells

    The thread stops (and joins) on exit; a zero or negative interval
    disables the thread entirely, leaving heartbeat counts at zero —
    the deterministic ledger events are emitted either way.
    """

    def __init__(
        self, progress: SweepProgress, interval: float = 1.0
    ) -> None:
        self.progress = progress
        self.interval = interval
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def __enter__(self) -> "HeartbeatMonitor":
        if self.interval > 0:
            self._thread = threading.Thread(
                target=self._run,
                name="sweep-heartbeat",
                daemon=True,
            )
            self._thread.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=self.interval + 1.0)
            self._thread = None

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self.progress.tick()


def default_progress_stream() -> TextIO:
    """Where sweep progress belongs: stderr, never stdout."""
    return sys.stderr
