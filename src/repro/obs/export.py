"""Export adapters: metrics and spans in formats other tools speak.

Two one-way bridges out of the repository's own observability model:

* **Prometheus text exposition** — a
  :meth:`~repro.obs.metrics.MetricsRegistry.snapshot` rendered as the
  ``# HELP`` / ``# TYPE`` line format every Prometheus-compatible
  scraper ingests (``repro metrics export --format prom``).  Counters
  become ``<prefix>_<name>_total`` counters, gauges become gauges,
  histograms become summaries (``_count`` / ``_sum``) with their
  min/max as companion gauges.
* **Chrome trace-event JSON** — a ledger's span tree as the
  ``traceEvents`` array Perfetto and ``chrome://tracing`` open
  (``repro trace --format chrome``): ``B``/``E`` duration events per
  span, ``C`` counter samples, and ``M`` metadata naming each
  ``(worker, cell)`` stream as a process/thread pair.

Both adapters are pure functions of data the log already holds —
:func:`registry_from_events` refolds a recorded event stream into a
registry first, so a finished world log exports exactly what a live
scrape would have shown.

>>> registry = MetricsRegistry()
>>> registry.counter("cache.hits").add(3)
>>> print(render_prometheus(registry.snapshot()).rstrip())
# HELP repro_cache_hits_total counter cache.hits
# TYPE repro_cache_hits_total counter
repro_cache_hits_total 3
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from repro.obs.ledger import LedgerEvent
from repro.obs.metrics import MetricsRegistry


def registry_from_events(
    events: Iterable[LedgerEvent],
) -> MetricsRegistry:
    """Refold a recorded event stream into a metrics registry.

    ``counter`` events sum into counters, ``gauge`` events set gauges
    (last write wins, matching live semantics), and each completed
    ``span-start``/``span-end`` pair records the span's duration into
    a ``span.<name>_seconds`` histogram — per ``(worker, cell)``
    stream, since timestamps only compare within one stream.
    """
    registry = MetricsRegistry()
    open_spans: dict[tuple[int, str | None], list[LedgerEvent]] = {}
    for event in events:
        if event.kind == "counter":
            value = event.value if event.value is not None else 1
            registry.counter(event.name).add(value)
        elif event.kind == "gauge":
            if event.value is not None:
                registry.gauge(event.name).set(event.value)
        elif event.kind == "span-start":
            stream = (event.worker_id, event.cell_id)
            open_spans.setdefault(stream, []).append(event)
        elif event.kind == "span-end":
            stream = (event.worker_id, event.cell_id)
            stack = open_spans.get(stream, [])
            while stack:
                start = stack.pop()
                if start.name == event.name:
                    registry.histogram(
                        f"span.{event.name}_seconds"
                    ).record(event.ts - start.ts)
                    break
    return registry


def metric_name(name: str, prefix: str = "repro") -> str:
    """A Prometheus-legal metric name for one registry instrument.

    >>> metric_name("engine.round_seconds")
    'repro_engine_round_seconds'
    """
    sanitized = "".join(
        char if char.isalnum() or char == "_" else "_"
        for char in name
    )
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return f"{prefix}_{sanitized}" if prefix else sanitized


def _format_value(value: Any) -> str:
    if value is None:
        return "NaN"
    number = float(value)
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def prometheus_lines(
    snapshot: dict[str, Any], prefix: str = "repro"
) -> list[str]:
    """One Prometheus exposition line list from a metrics snapshot.

    ``snapshot`` is the JSON shape
    :meth:`~repro.obs.metrics.MetricsRegistry.snapshot` produces (the
    same shape a ``telemetry.snapshot`` record carries under
    ``metrics``), so live registries, world logs and telemetry records
    all export through the one renderer.
    """
    lines: list[str] = []
    for name, total in snapshot.get("counters", {}).items():
        metric = metric_name(name, prefix) + "_total"
        lines.append(f"# HELP {metric} counter {name}")
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_format_value(total)}")
    for name, value in snapshot.get("gauges", {}).items():
        metric = metric_name(name, prefix)
        lines.append(f"# HELP {metric} gauge {name}")
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_format_value(value)}")
    for name, summary in snapshot.get("histograms", {}).items():
        metric = metric_name(name, prefix)
        lines.append(f"# HELP {metric} summary {name}")
        lines.append(f"# TYPE {metric} summary")
        lines.append(
            f"{metric}_count {_format_value(summary.get('count'))}"
        )
        lines.append(
            f"{metric}_sum {_format_value(summary.get('total'))}"
        )
        for stat in ("min", "max"):
            if summary.get(stat) is not None:
                stat_metric = f"{metric}_{stat}"
                lines.append(f"# HELP {stat_metric} gauge {name} {stat}")
                lines.append(f"# TYPE {stat_metric} gauge")
                lines.append(
                    f"{stat_metric} {_format_value(summary[stat])}"
                )
    return lines


def render_prometheus(
    snapshot: dict[str, Any], prefix: str = "repro"
) -> str:
    """The full exposition document (trailing newline included)."""
    return "\n".join(prometheus_lines(snapshot, prefix)) + "\n"


def chrome_trace(
    events: Sequence[LedgerEvent],
) -> dict[str, Any]:
    """A ledger event stream as Chrome trace-event JSON.

    Spans become ``B``/``E`` duration events on one track per
    ``(worker, cell)`` stream — the worker is the *process*, the cell
    the *thread*, named via ``M`` metadata events so Perfetto labels
    the tracks.  Counter events become ``C`` samples on the same
    track.  Timestamps are the ledger's monotonic seconds scaled to
    the format's microseconds; they are meaningful per process, which
    is exactly the trace-event contract.
    """
    trace_events: list[dict[str, Any]] = []
    threads: dict[tuple[int, str | None], int] = {}
    processes: set[int] = set()

    def track(event: LedgerEvent) -> tuple[int, int]:
        pid = event.worker_id
        if pid not in processes:
            processes.add(pid)
            trace_events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": f"worker {pid}"},
                }
            )
        stream = (pid, event.cell_id)
        if stream not in threads:
            tid = sum(1 for key in threads if key[0] == pid) + 1
            threads[stream] = tid
            trace_events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": event.cell_id or "main"},
                }
            )
        return pid, threads[stream]

    for event in events:
        if event.kind not in (
            "span-start",
            "span-end",
            "counter",
            "gauge",
        ):
            continue
        pid, tid = track(event)
        ts = event.ts * 1e6
        if event.kind == "span-start":
            trace_events.append(
                {
                    "name": event.name,
                    "ph": "B",
                    "ts": ts,
                    "pid": pid,
                    "tid": tid,
                    "args": dict(event.attrs),
                }
            )
        elif event.kind == "span-end":
            trace_events.append(
                {
                    "name": event.name,
                    "ph": "E",
                    "ts": ts,
                    "pid": pid,
                    "tid": tid,
                }
            )
        elif (
            event.value is not None
            and isinstance(event.value, (int, float))
        ):
            trace_events.append(
                {
                    "name": event.name,
                    "ph": "C",
                    "ts": ts,
                    "pid": pid,
                    "tid": tid,
                    "args": {event.name: event.value},
                }
            )
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}
