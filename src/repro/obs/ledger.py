"""The append-only structured run ledger (JSON Lines).

One pipeline run — an attack, a sweep, an experiment — produces one
*ledger*: an ordered sequence of typed :class:`LedgerEvent` records that
every telemetry producer (the span tracer, the metrics registry, the
sweep scheduler) appends to.  The ledger is the single correlated event
stream the repository's observability is built on; ``repro trace``
renders it, ``repro report --trend`` distills it into a perf-trajectory
point.

Event model
-----------

Every event carries

* a ``kind`` from :data:`EVENT_KINDS` — ``span-start``/``span-end``
  (wall-clock spans, paired by name and nesting), ``counter`` (a
  monotone occurrence count), ``gauge`` (a sampled value), and
  ``artifact`` (a reference to a produced artifact such as a
  certificate);
* a monotonic ``ts`` from :func:`time.perf_counter` — comparable (and
  meaningful as a duration source) only *within* one
  ``(run_id, worker_id)`` stream, never across processes;
* the correlation triple ``run_id`` / ``cell_id`` / ``worker_id``: which
  top-level run, which sweep cell (``None`` outside sweeps) and which OS
  process produced the event.

Cross-process protocol
----------------------

Worker processes never share a ledger.  Each worker appends to its own
:class:`RunLedger` and ships the picklable event tuple
(:meth:`RunLedger.segment`) home inside its job result; the scheduler
*splices* the segments into the parent ledger in deterministic cell
order (:meth:`RunLedger.splice`), rewriting each event's ``run_id`` to
the parent's.  Because cell simulations are deterministic, the spliced
event *order* — the ``(kind, name, cell_id)`` sequence — is identical
whichever backend ran the cells; only timestamps, worker ids and the
run id differ (and are therefore excluded from outcome equality).

Worked example::

    >>> ticks = iter(range(10))
    >>> ledger = RunLedger(run_id="demo", worker_id=7,
    ...                    clock=lambda: float(next(ticks)))
    >>> _ = ledger.emit("counter", "cache.hits", value=3)
    >>> _ = ledger.emit("gauge", "bound.vs_floor", value=1.5,
    ...                 cell_id="attack/silent/n12/t8")
    >>> [event.kind for event in ledger.events]
    ['counter', 'gauge']
    >>> print(ledger.events[0].to_json())
    {"ts": 0.0, "kind": "counter", "name": "cache.hits", "value": 3, "run_id": "demo", "cell_id": null, "worker_id": 7, "attrs": {}}
    >>> LedgerEvent.from_json(ledger.events[0].to_json()) == ledger.events[0]
    True

Splicing a worker segment rewrites the run id but keeps the worker id,
so the correlation triple stays truthful::

    >>> worker = RunLedger(run_id="scratch", worker_id=41,
    ...                    clock=lambda: 0.5)
    >>> _ = worker.emit("counter", "engine.round", value=12,
    ...                 cell_id="attack/silent/n12/t8")
    >>> ledger.splice(worker.segment())
    1
    >>> ledger.events[-1].run_id, ledger.events[-1].worker_id
    ('demo', 41)
"""

from __future__ import annotations

import json
import os
import time
import uuid
from dataclasses import dataclass, replace
from typing import Any, Callable, Iterable, TextIO

EVENT_KINDS = ("span-start", "span-end", "counter", "gauge", "artifact")
"""The typed event vocabulary, in documentation order."""


def new_run_id() -> str:
    """A short random correlation id for one top-level pipeline run."""
    return uuid.uuid4().hex[:12]


def cell_label(key: tuple) -> str:
    """The canonical ``cell_id`` string for a sweep cell key.

    >>> cell_label(("attack", "silent", 12, 8))
    'attack/silent/n12/t8'
    """
    kind, builder, n, t = key
    return f"{kind}/{builder}/n{n}/t{t}"


def job_label(key: tuple, job_key: str) -> str:
    """The canonical ``cell_id`` string for one attack-service job.

    Extends :func:`cell_label` with a ``#``-suffixed prefix of the
    job's idempotent key, so two submissions of the same ``(kind,
    builder, n, t)`` cell with different options stay distinguishable
    in the correlated event stream.

    >>> job_label(("attack", "silent", 12, 8), "0f3a9b2c41d5e6f7")
    'job/attack/silent/n12/t8#0f3a9b2c'
    """
    return f"job/{cell_label(key)}#{job_key[:8]}"


@dataclass(frozen=True)
class LedgerEvent:
    """One typed, correlated telemetry record.

    Attributes:
        kind: one of :data:`EVENT_KINDS`.
        name: the event's dotted metric/span name (e.g. ``cache.hits``).
        ts: monotonic seconds (``time.perf_counter``) in the *emitting
            process's* clock; only deltas within one ``(run_id,
            worker_id)`` stream are meaningful.
        value: the numeric (or short string) payload; ``None`` for pure
            span markers.
        run_id: the top-level run this event belongs to.
        cell_id: the sweep cell (``None`` outside sweeps).
        worker_id: the OS process id that emitted the event.
        attrs: sorted ``(key, value)`` pairs of JSON-safe extra
            attributes (round numbers, phase parameters, verdicts).
    """

    kind: str
    name: str
    ts: float
    value: float | int | str | None = None
    run_id: str = ""
    cell_id: str | None = None
    worker_id: int = 0
    attrs: tuple[tuple[str, Any], ...] = ()

    def attr(self, key: str, default: Any = None) -> Any:
        """The attribute stored under ``key`` (or ``default``)."""
        for name, value in self.attrs:
            if name == key:
                return value
        return default

    def to_json(self) -> str:
        """One JSON Lines record with a fixed, stable key order."""
        return json.dumps(
            {
                "ts": self.ts,
                "kind": self.kind,
                "name": self.name,
                "value": self.value,
                "run_id": self.run_id,
                "cell_id": self.cell_id,
                "worker_id": self.worker_id,
                "attrs": dict(self.attrs),
            }
        )

    @classmethod
    def from_json(cls, line: str) -> "LedgerEvent":
        """Parse one JSON Lines record back into an event."""
        raw = json.loads(line)
        return cls(
            kind=raw["kind"],
            name=raw["name"],
            ts=raw["ts"],
            value=raw.get("value"),
            run_id=raw.get("run_id", ""),
            cell_id=raw.get("cell_id"),
            worker_id=raw.get("worker_id", 0),
            attrs=tuple(sorted(raw.get("attrs", {}).items())),
        )


class RunLedger:
    """An append-only in-memory event log with JSONL persistence.

    Args:
        run_id: the run correlation id (random when omitted).
        worker_id: the emitting process id (``os.getpid()`` when
            omitted).
        clock: the monotonic timestamp source (injectable for
            deterministic tests and doctests).
        sink: optional callback invoked with every event as it is
            appended — emitted *and* spliced, in append order.  This is
            how the world log mirrors a live ledger
            (``RunLedger(sink=worldlog.record_event)``): the derived
            ledger view then reproduces :meth:`write` output
            byte-for-byte.  The sink observes; it never mutates.
    """

    def __init__(
        self,
        run_id: str | None = None,
        worker_id: int | None = None,
        clock: Callable[[], float] = time.perf_counter,
        sink: Callable[[LedgerEvent], None] | None = None,
    ) -> None:
        self.run_id = new_run_id() if run_id is None else run_id
        self.worker_id = os.getpid() if worker_id is None else worker_id
        self._clock = clock
        self._sink = sink
        self.events: list[LedgerEvent] = []

    def _append(self, event: LedgerEvent) -> None:
        self.events.append(event)
        if self._sink is not None:
            self._sink(event)

    def __len__(self) -> int:
        return len(self.events)

    def emit(
        self,
        kind: str,
        name: str,
        value: float | int | str | None = None,
        cell_id: str | None = None,
        **attrs: Any,
    ) -> LedgerEvent:
        """Append one event stamped with this ledger's correlation ids."""
        if kind not in EVENT_KINDS:
            raise ValueError(
                f"unknown event kind {kind!r}; expected one of "
                f"{', '.join(EVENT_KINDS)}"
            )
        event = LedgerEvent(
            kind=kind,
            name=name,
            ts=self._clock(),
            value=value,
            run_id=self.run_id,
            cell_id=cell_id,
            worker_id=self.worker_id,
            attrs=tuple(sorted(attrs.items())),
        )
        self._append(event)
        return event

    def segment(self) -> tuple[LedgerEvent, ...]:
        """This ledger's events as a picklable, shippable buffer."""
        return tuple(self.events)

    def splice(self, segment: Iterable[LedgerEvent]) -> int:
        """Append a shipped segment, rewriting ``run_id`` to this run's.

        Worker ids and timestamps are preserved — they identify the
        producing process and its clock.  Returns the number of events
        spliced.
        """
        count = 0
        for event in segment:
            self._append(replace(event, run_id=self.run_id))
            count += 1
        return count

    def dump(self, stream: TextIO) -> None:
        """Write every event as one JSON line to ``stream``."""
        for event in self.events:
            stream.write(event.to_json())
            stream.write("\n")

    def write(self, path: str) -> None:
        """Persist the ledger to ``path`` as a JSONL artifact."""
        with open(path, "w", encoding="utf-8") as handle:
            self.dump(handle)


def read_events(path: str) -> list[LedgerEvent]:
    """Load a persisted JSONL ledger back into events (blank-line safe).

    Raises:
        ArtifactError: if any line is not valid JSON or lacks a required
            event field — the file exists but is not a ledger, an
            environment failure the CLI maps to exit 2.  The diagnostic
            is the shared :mod:`repro.artifact` ``file:line`` one-liner.
        OSError: if the file cannot be read at all.
    """
    from repro.artifact import load_artifact_lines

    return load_artifact_lines(
        path, "ledger event", LedgerEvent.from_json
    )


def order_signature(
    events: Iterable[LedgerEvent],
) -> list[tuple[str, str, str | None]]:
    """The backend-independent event order: ``(kind, name, cell_id)``.

    Timestamps, worker ids and run ids legitimately differ between the
    serial and process sweep backends; the *sequence* of this triple
    must not (asserted by the cross-process splice tests).
    """
    return [
        (event.kind, event.name, event.cell_id) for event in events
    ]
