"""Per-tenant admission control: pending-job quotas and rate limits.

Admission is decided *before* anything is logged: a rejected submission
leaves no record, charges no rate token and occupies no queue slot —
the world log records accepted work only, so crash-resume never replays
a rejection.  Idempotent re-submissions of an already-accepted key are
likewise never charged: the server answers them from queue state or the
recorded result without consulting this module.

Two independent gates, both per tenant:

* **pending quota** — at most ``max_pending`` jobs simultaneously
  queued or running.  Terminal jobs free their slot.
* **rate limit** — a token bucket holding at most ``burst`` tokens,
  refilled at ``rate`` tokens/second.  Each accepted submission spends
  one token; an empty bucket rejects.

The clock is injectable, so policy behaviour is exactly testable:

>>> now = iter([0.0, 0.0, 2.0])
>>> policy = QuotaPolicy(max_pending=8, rate=0.5, burst=1,
...                      clock=lambda: next(now))
>>> policy.admit("alice", pending=0).allowed
True
>>> policy.admit("alice", pending=0)           # bucket drained
QuotaDecision(allowed=False, reason='rate limit: tenant alice exceeded 0.5 jobs/s (burst 1)')
>>> policy.admit("alice", pending=0).allowed   # 2 s later: refilled
True

The pending gate is checked first, against the *caller's* live count —
the policy holds no job state of its own:

>>> policy = QuotaPolicy(max_pending=2, rate=100.0, burst=100,
...                      clock=lambda: 0.0)
>>> policy.admit("bob", pending=2)
QuotaDecision(allowed=False, reason='quota: tenant bob has 2 pending jobs (max 2)')
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable


@dataclass(frozen=True)
class QuotaDecision:
    """One admission verdict: allowed, or a rejection with its reason.

    ``reason`` is the exact diagnostic the client prints to stderr; the
    leading token (``quota:`` / ``rate limit:``) doubles as the wire
    error kind.
    """

    allowed: bool
    reason: str = ""

    @property
    def kind(self) -> str:
        """The wire error kind (``quota`` or ``rate``)."""
        return "rate" if self.reason.startswith("rate") else "quota"


class QuotaPolicy:
    """Per-tenant admission policy: pending cap plus token bucket.

    Args:
        max_pending: maximum queued-or-running jobs per tenant.
        rate: sustained accepted submissions per second per tenant.
        burst: bucket capacity — how far a tenant may briefly exceed
            ``rate`` after idling.
        clock: monotonic seconds source (injectable for tests).
    """

    def __init__(
        self,
        max_pending: int = 16,
        rate: float = 10.0,
        burst: int = 20,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.max_pending = max_pending
        self.rate = rate
        self.burst = burst
        self._clock = clock
        self._tokens: dict[str, float] = {}
        self._stamped: dict[str, float] = {}

    def _refill(self, tenant: str) -> float:
        now = self._clock()
        tokens = self._tokens.get(tenant, float(self.burst))
        stamped = self._stamped.get(tenant, now)
        tokens = min(
            float(self.burst), tokens + (now - stamped) * self.rate
        )
        self._stamped[tenant] = now
        self._tokens[tenant] = tokens
        return tokens

    def known_tenants(self) -> tuple[str, ...]:
        """Tenants the token bucket has seen, sorted (status reporting)."""
        return tuple(sorted(self._tokens))

    def occupancy(self, tenant: str) -> dict[str, float]:
        """The tenant's current token-bucket state, *without* spending.

        Refills to now (so an idle tenant reads full) but charges
        nothing — safe to call from a status fold at any rate.

        >>> policy = QuotaPolicy(rate=1.0, burst=4, clock=lambda: 0.0)
        >>> policy.occupancy("alice")
        {'tokens': 4.0, 'burst': 4.0}
        """
        return {
            "tokens": self._refill(tenant),
            "burst": float(self.burst),
        }

    def admit(self, tenant: str, pending: int) -> QuotaDecision:
        """Decide one submission; spends a rate token iff allowed.

        Args:
            tenant: the submitting tenant.
            pending: the tenant's current queued-or-running job count
                (the server's live view — this policy is stateless
                about jobs on purpose, so recovery needs no replay
                through it).
        """
        if pending >= self.max_pending:
            return QuotaDecision(
                allowed=False,
                reason=(
                    f"quota: tenant {tenant} has {pending} pending "
                    f"jobs (max {self.max_pending})"
                ),
            )
        tokens = self._refill(tenant)
        if tokens < 1.0:
            return QuotaDecision(
                allowed=False,
                reason=(
                    f"rate limit: tenant {tenant} exceeded "
                    f"{self.rate:g} jobs/s (burst {self.burst})"
                ),
            )
        self._tokens[tenant] = tokens - 1.0
        return QuotaDecision(allowed=True)
