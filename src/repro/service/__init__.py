"""The attack service: a multi-tenant job server over the world log.

``repro serve`` runs a :class:`JobServer`; ``repro submit`` /
``repro jobs`` / ``repro watch`` drive it through a
:class:`ServiceClient`.  The subsystem has four modules:

* :mod:`repro.service.protocol` — the framed-JSON wire protocol and
  the idempotent :func:`job_key`;
* :mod:`repro.service.queue` — the priority queue and the world-log
  recovery fold (:func:`recover_jobs`);
* :mod:`repro.service.quota` — per-tenant admission control
  (:class:`QuotaPolicy`: pending caps plus a token-bucket rate limit);
* :mod:`repro.service.server` / :mod:`repro.service.client` — the
  asyncio server and its blocking client.

The design invariant, documented in ``docs/SERVICE.md`` and enforced
by ``tests/service``: **every accepted job reaches exactly one
terminal record, even across restarts** — the world log is the queue,
so a restarted server resumes it bit-identically.
"""

from __future__ import annotations

from repro.service.client import ServiceClient, ServiceError
from repro.service.protocol import (
    JOB_STATES,
    OPS,
    SERVICE_SCHEMA,
    ProtocolError,
    job_key,
)
from repro.service.queue import JobEntry, JobQueue, recover_jobs
from repro.service.quota import QuotaDecision, QuotaPolicy
from repro.service.server import JobServer

__all__ = [
    "JOB_STATES",
    "OPS",
    "SERVICE_SCHEMA",
    "JobEntry",
    "JobQueue",
    "JobServer",
    "ProtocolError",
    "QuotaDecision",
    "QuotaPolicy",
    "ServiceClient",
    "ServiceError",
    "job_key",
    "recover_jobs",
]
