"""The attack service's wire protocol: framed JSON over a local socket.

One connection carries a sequence of *frames* — UTF-8 JSON objects, one
per line, exactly the world log's shape discipline.  A client sends one
request frame; the server answers with one response frame (``submit``,
``jobs``, ``ping``, ``shutdown``) or a response *stream* terminated by
a ``"final": true`` frame (``submit --wait``, ``watch``).  Every
response carries ``"ok"``: ``true`` with the operation's payload, or
``false`` with a structured ``"error"`` object (``kind`` + ``message``)
the client maps onto the repository's uniform exit codes — quota and
rate rejections are *domain* failures (exit 1), never protocol errors.

The idempotency anchor is :func:`job_key`: the SHA-256 of the job
spec's canonical JSON, truncated to 16 hex digits.  Two submissions
describing the same work — same kind, builder, parameters *and
options* — hash identically whatever the tenant, priority or
submission order, so the server can answer a re-submission from the
recorded terminal result without simulating anything.

>>> from repro.parallel.jobs import AttackJob
>>> from repro.worldlog.codec import encode_job
>>> key = job_key(encode_job(AttackJob("silent", 8, 4)))
>>> key == job_key(encode_job(AttackJob("silent", 8, 4)))
True
>>> len(key)
16
>>> key != job_key(encode_job(AttackJob("silent", 8, 4, certify=True)))
True

Frames round-trip through :func:`encode_frame` / :func:`decode_frame`:

>>> decode_frame(encode_frame({"op": "ping"}))
{'op': 'ping'}
>>> decode_frame("not json")
Traceback (most recent call last):
  ...
repro.service.protocol.ProtocolError: malformed frame: not json
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

from repro.errors import ReproError
from repro.sim.serialization import canonical_json

SERVICE_SCHEMA = "repro.service/v1"
"""The protocol version announced by ``ping`` responses."""

OPS = ("ping", "status", "submit", "jobs", "watch", "shutdown")
"""The request vocabulary, in documentation order.

* ``ping`` — liveness + server identity (schema tag, run id, backend,
  worker count, queue depth).
* ``status`` — the full live-state fold: queue depth by priority,
  per-tenant pending/quota/token-bucket occupancy, worker-pool
  utilization and per-job progress (what ``repro status`` and
  ``repro top`` render).
* ``submit`` — enqueue one job (``tenant``, ``priority``, ``job`` spec;
  optional ``wait`` keeps the connection open until the terminal
  frame).
* ``jobs`` — the live job manifest, newest state per idempotent key.
* ``watch`` — stream a job's world-log records (replay, then live)
  until its terminal record.
* ``shutdown`` — stop accepting work, finish in-flight jobs, exit;
  queued jobs stay in the log for the next ``repro serve``.
"""

JOB_STATES = ("queued", "running", "done", "failed")
"""The job lifecycle, in order.  Transitions only move right:
``queued → running → done | failed``; a restart rewinds ``running``
(no terminal record) back to ``queued``, never past a terminal."""


class ProtocolError(ReproError):
    """A frame that is not valid service protocol (peer gets an error
    response; a malformed *response* surfaces to the client as exit 1)."""


def job_key(encoded_job: dict[str, Any]) -> str:
    """The idempotent job key: canonical-JSON SHA-256, 16 hex digits.

    Tenant and priority are deliberately *not* part of the key: they
    describe who asked and how urgently, not what the work is.
    """
    digest = hashlib.sha256(
        canonical_json(encoded_job).encode("utf-8")
    )
    return digest.hexdigest()[:16]


def encode_frame(payload: dict[str, Any]) -> bytes:
    """One frame: the payload's JSON plus the line terminator."""
    return (json.dumps(payload) + "\n").encode("utf-8")


def decode_frame(line: bytes | str) -> dict[str, Any]:
    """Parse one received line back into a frame payload.

    Raises:
        ProtocolError: when the line is not a JSON object.
    """
    if isinstance(line, bytes):
        line = line.decode("utf-8", errors="replace")
    line = line.strip()
    try:
        payload = json.loads(line)
    except ValueError as exc:
        raise ProtocolError(f"malformed frame: {line}") from exc
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"frame is not an object: {line}"
        )
    return payload


def error_frame(kind: str, message: str) -> dict[str, Any]:
    """The uniform failure response body."""
    return {"ok": False, "error": {"kind": kind, "message": message}}


def parse_request(frame: dict[str, Any]) -> str:
    """Validate a request frame's ``op``; returns it.

    Raises:
        ProtocolError: for a missing or unknown operation.
    """
    op = frame.get("op")
    if op not in OPS:
        raise ProtocolError(
            f"unknown op {op!r}; expected one of {', '.join(OPS)}"
        )
    return op
