"""The attack job server: many tenants, one world log, one queue.

:class:`JobServer` listens on a unix socket, accepts jobs from many
concurrent clients, runs them on a worker pool and records *everything*
that matters in the world log:

* ``job.submitted`` — the acceptance record: idempotent key, tenant,
  priority and the encoded spec.  Written once per key, ever.
* ``job.start`` — one marker per execution *attempt* (a job killed
  mid-run and re-run after restart has two).
* ``job.result`` / ``job.error`` — the terminal record.  **Exactly one
  per accepted key**, even across restarts: a restart only re-queues
  jobs with no terminal record, and an idempotent re-submission of a
  terminal key is answered from the log without running anything.
* ``job.rejected`` — a quota/rate rejection at admission time, recorded
  for post-hoc per-tenant accounting (``repro log stats``).  It enters
  no queue and is invisible to recovery and the jobs manifest.
* ``telemetry.snapshot`` — optional (``telemetry_interval``): the live
  status fold sampled on an interval, same observability-only contract
  as ``job.rejected`` — no recovery, no manifest, scrubbed by the
  semantic differ.

Crash-resume follows the sweep scheduler's contract: the log is the
queue.  ``JobServer`` on an existing log resumes it
(:meth:`~repro.worldlog.store.WorldLog.resume`), refolds the ``job.*``
records (:func:`~repro.service.queue.recover_jobs`) and continues —
queued jobs still queued, died-mid-run jobs re-queued, finished jobs
answerable.  Nothing outside the log is consulted, so a SIGKILL at any
record boundary loses at most the in-flight attempt, never a result.

Determinism: a job's ledger events ship *inside* its ``job.result``
payload (the :func:`~repro.worldlog.codec.encode_job_result` envelope),
never as separate records — the terminal record is the atomic unit, so
an interrupted-and-resumed run's per-key values, certificates and event
order signatures are bit-identical to an uninterrupted run's.

Threading model: all queue, quota and log state lives on the event-loop
thread.  Only :func:`~repro.parallel.jobs.execute_job` leaves it — to a
``ThreadPoolExecutor`` (``jobs=1``; in-process, no pickling) or a
``ProcessPoolExecutor`` (``jobs>1``; the scheduler's process backend),
both driving the same job kernel.  :meth:`JobServer.request_shutdown`
and the ``ready`` event are the thread-safe control surface the CLI and
tests use.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import contextlib
import json
import os
import signal
import threading
import time
import traceback
from typing import Any

from repro.errors import ReproError
from repro.obs.ledger import job_label
from repro.obs.telemetry import TelemetryBus
from repro.parallel.jobs import execute_job
from repro.service.protocol import (
    SERVICE_SCHEMA,
    ProtocolError,
    decode_frame,
    encode_frame,
    error_frame,
    job_key,
    parse_request,
)
from repro.service.queue import JobEntry, JobQueue, recover_jobs
from repro.service.quota import QuotaPolicy
from repro.worldlog.codec import decode_job, encode_job, encode_job_result
from repro.worldlog.record import Record
from repro.worldlog.store import WorldLog
from repro.worldlog.views import jobs_manifest

TERMINAL_KINDS = ("job.result", "job.error")
"""The record kinds that end a job's lifecycle."""


class JobServer:
    """One serving process: socket in, world-log records out.

    Args:
        log_path: the world log (created fresh, or resumed if it
            already exists — that is the whole restart story).
        socket_path: the unix socket to listen on (stale files are
            replaced).  Beware the OS's ~100-byte socket path limit.
        jobs: worker parallelism; ``1`` keeps execution in-process.
        quota: the per-tenant admission policy.
        run_id: correlation id for a fresh log (random when omitted).
        telemetry_interval: when set, a :class:`~repro.obs.telemetry
            .TelemetryBus` samples the server's live status fold into
            ``telemetry.snapshot`` records every this-many seconds.
            Observability only: the records bypass the watcher publish
            path (they belong to no job key) and are invisible to
            recovery, the manifest and the semantic differ.
    """

    def __init__(
        self,
        log_path: str,
        socket_path: str,
        jobs: int = 1,
        quota: QuotaPolicy | None = None,
        run_id: str | None = None,
        telemetry_interval: float | None = None,
    ) -> None:
        self.log_path = log_path
        self.socket_path = socket_path
        self.jobs = max(1, jobs)
        self.quota = QuotaPolicy() if quota is None else quota
        self.telemetry_interval = telemetry_interval
        self._run_id = run_id
        self.ready = threading.Event()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stopping: asyncio.Event | None = None
        self._cond: asyncio.Condition | None = None
        self._log: WorldLog | None = None
        self._queue = JobQueue()
        self._entries: dict[str, JobEntry] = {}
        self._terminals: dict[str, Record] = {}
        self._pending: dict[str, int] = {}
        self._running: dict[str, dict[str, Any]] = {}
        self._watchers: dict[str, list[asyncio.Queue]] = {}
        self._telemetry: "TelemetryBus | None" = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def serve_forever(self) -> None:
        """Run the server until :meth:`request_shutdown` (blocking)."""
        asyncio.run(self._main())

    def request_shutdown(self) -> None:
        """Stop accepting work and exit once in-flight jobs finish.

        Thread-safe; also wired to SIGTERM/SIGINT inside the loop.
        Queued jobs are *not* run — they stay in the log for the next
        server on the same path.
        """
        loop = self._loop
        if loop is not None and not loop.is_closed():
            loop.call_soon_threadsafe(self._signal_stop)

    def _signal_stop(self) -> None:
        assert self._stopping is not None and self._cond is not None
        self._stopping.set()

        async def _wake() -> None:
            async with self._cond:
                self._cond.notify_all()

        asyncio.ensure_future(_wake())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stopping = asyncio.Event()
        self._cond = asyncio.Condition()
        for signum in (signal.SIGTERM, signal.SIGINT):
            with contextlib.suppress(
                NotImplementedError, RuntimeError
            ):
                self._loop.add_signal_handler(signum, self._signal_stop)

        if os.path.exists(self.log_path):
            self._log = WorldLog.resume(self.log_path)
        else:
            self._log = WorldLog.create(self.log_path, run_id=self._run_id)
        pending, self._terminals = recover_jobs(self._log.records)
        for entry in pending:
            self._admit_entry(entry)

        sampler: asyncio.Future | None = None
        if self.telemetry_interval is not None:
            self._telemetry = TelemetryBus(
                self._log,
                interval=self.telemetry_interval,
                source="serve",
            )
            self._telemetry.add_source("service", self._status_body)
            sampler = asyncio.ensure_future(self._telemetry_loop())

        if self.jobs == 1:
            executor: concurrent.futures.Executor = (
                concurrent.futures.ThreadPoolExecutor(max_workers=1)
            )
        else:
            executor = concurrent.futures.ProcessPoolExecutor(
                max_workers=self.jobs
            )

        if os.path.exists(self.socket_path):
            os.unlink(self.socket_path)
        server = await asyncio.start_unix_server(
            self._handle_connection, path=self.socket_path
        )
        workers = [
            asyncio.ensure_future(self._worker(executor))
            for _ in range(self.jobs)
        ]
        self.ready.set()
        try:
            await self._stopping.wait()
        finally:
            server.close()
            await server.wait_closed()
            await asyncio.gather(*workers, return_exceptions=True)
            if sampler is not None:
                await asyncio.gather(sampler, return_exceptions=True)
            executor.shutdown(wait=True)
            if self._telemetry is not None:
                # The end-of-run picture; still on the loop thread, so
                # the append races nothing.
                self._telemetry.close()
            self._log.close()
            with contextlib.suppress(OSError):
                os.unlink(self.socket_path)
            self.ready.clear()

    # ------------------------------------------------------------------
    # queue state (event-loop thread only)
    # ------------------------------------------------------------------

    def _admit_entry(self, entry: JobEntry) -> None:
        self._queue.push(entry)
        self._entries[entry.key] = entry
        self._pending[entry.tenant] = (
            self._pending.get(entry.tenant, 0) + 1
        )

    def _finish_entry(self, entry: JobEntry, record: Record) -> None:
        self._entries.pop(entry.key, None)
        self._terminals[entry.key] = record
        remaining = self._pending.get(entry.tenant, 1) - 1
        if remaining > 0:
            self._pending[entry.tenant] = remaining
        else:
            self._pending.pop(entry.tenant, None)

    def _append(
        self, kind: str, payload: dict[str, Any], cell_id: str | None
    ) -> Record:
        assert self._log is not None
        record = self._log.append(kind, payload, cell_id=cell_id)
        self._publish(payload["key"], record)
        return record

    def _publish(self, key: str, record: Record) -> None:
        for queue in self._watchers.get(key, ()):  # live watchers
            queue.put_nowait(record)

    def _entry_cell_id(self, entry: JobEntry) -> str:
        job = decode_job(entry.job)
        return job_label(job.key, entry.key)

    async def _telemetry_loop(self) -> None:
        """Sample the status fold every interval until shutdown.

        Runs on the event-loop thread — the only thread that may touch
        the world log — so samples serialize naturally with job
        records.
        """
        assert self._stopping is not None and self._telemetry is not None
        while True:
            try:
                await asyncio.wait_for(
                    self._stopping.wait(), self._telemetry.interval
                )
                return
            except asyncio.TimeoutError:
                self._telemetry.sample()

    # ------------------------------------------------------------------
    # workers
    # ------------------------------------------------------------------

    async def _worker(
        self, executor: concurrent.futures.Executor
    ) -> None:
        assert self._cond is not None and self._stopping is not None
        while True:
            async with self._cond:
                while not len(self._queue) and not self._stopping.is_set():
                    await self._cond.wait()
                if self._stopping.is_set():
                    return
                entry = self._queue.pop()
            if entry is None:  # pragma: no cover - raced another worker
                continue
            await self._run_entry(executor, entry)

    async def _run_entry(
        self, executor: concurrent.futures.Executor, entry: JobEntry
    ) -> None:
        assert self._loop is not None
        cell_id = self._entry_cell_id(entry)
        self._append("job.start", {"key": entry.key}, cell_id)
        job = decode_job(entry.job)
        begin = time.perf_counter()
        self._running[entry.key] = {
            "tenant": entry.tenant,
            "priority": entry.priority,
            "began": begin,
        }
        try:
            result = await self._loop.run_in_executor(
                executor, execute_job, job
            )
        except BaseException as exc:
            record = self._append(
                "job.error",
                {
                    "key": entry.key,
                    "error_kind": "exception",
                    "message": f"{type(exc).__name__}: {exc}",
                    "detail": traceback.format_exc(),
                    "wall_seconds": time.perf_counter() - begin,
                },
                cell_id,
            )
        else:
            record = self._append(
                "job.result",
                {
                    "key": entry.key,
                    "result": encode_job_result(result),
                },
                cell_id,
            )
        self._running.pop(entry.key, None)
        self._finish_entry(entry, record)

    # ------------------------------------------------------------------
    # protocol handlers
    # ------------------------------------------------------------------

    async def _handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            line = await reader.readline()
            if not line:
                return
            try:
                frame = decode_frame(line)
                op = parse_request(frame)
            except ProtocolError as exc:
                await self._send(
                    writer, error_frame("protocol", str(exc))
                )
                return
            handler = getattr(self, f"_op_{op}")
            await handler(frame, writer)
        except (ConnectionResetError, BrokenPipeError):
            pass  # client went away mid-stream; nothing to unwind
        finally:
            with contextlib.suppress(OSError):
                writer.close()
                await writer.wait_closed()

    async def _send(
        self, writer: asyncio.StreamWriter, payload: dict[str, Any]
    ) -> None:
        writer.write(encode_frame(payload))
        await writer.drain()

    async def _op_ping(
        self, frame: dict[str, Any], writer: asyncio.StreamWriter
    ) -> None:
        assert self._log is not None
        await self._send(
            writer,
            {
                "ok": True,
                "schema": SERVICE_SCHEMA,
                "run_id": self._log.run_id,
                "jobs": self.jobs,
                "backend": "thread" if self.jobs == 1 else "process",
                "queued": len(self._queue),
                "pending": len(self._entries),
                "completed": len(self._terminals),
            },
        )

    def _status_body(self) -> dict[str, Any]:
        """The live-state fold ``status`` answers and telemetry samples.

        Event-loop thread only (it reads queue, quota and running-job
        state).  Everything here is a *view* — nothing is charged or
        mutated beyond the quota clock refill.
        """
        now = time.perf_counter()
        tenants: dict[str, Any] = {}
        names = set(self._pending) | set(self.quota.known_tenants())
        for tenant in sorted(names):
            pending = self._pending.get(tenant, 0)
            bucket = self.quota.occupancy(tenant)
            tenants[tenant] = {
                "pending": pending,
                "max_pending": self.quota.max_pending,
                "quota_occupancy": pending / self.quota.max_pending,
                "rate_tokens": bucket["tokens"],
                "burst": bucket["burst"],
            }
        running = [
            {
                "key": key,
                "tenant": info["tenant"],
                "priority": info["priority"],
                "seconds": now - info["began"],
            }
            for key, info in sorted(self._running.items())
        ]
        return {
            "workers": {
                "total": self.jobs,
                "busy": len(self._running),
                "utilization": len(self._running) / self.jobs,
            },
            "queue": {
                "depth": len(self._queue),
                "by_priority": self._queue.depth_by_priority(),
            },
            "tenants": tenants,
            "jobs": {
                "queued": len(self._queue),
                "running": running,
                "completed": len(self._terminals),
            },
        }

    async def _op_status(
        self, frame: dict[str, Any], writer: asyncio.StreamWriter
    ) -> None:
        assert self._log is not None
        await self._send(
            writer,
            {
                "ok": True,
                "schema": SERVICE_SCHEMA,
                "run_id": self._log.run_id,
                **self._status_body(),
            },
        )

    async def _op_submit(
        self, frame: dict[str, Any], writer: asyncio.StreamWriter
    ) -> None:
        assert self._cond is not None
        tenant = str(frame.get("tenant", "default"))
        priority = int(frame.get("priority", 0))
        wait = bool(frame.get("wait", False))
        spec = frame.get("job")
        try:
            if not isinstance(spec, dict):
                raise ReproError("submit frame has no job object")
            job = decode_job(spec)
            spec = encode_job(job)  # canonical field order for the key
        except (ReproError, KeyError, TypeError) as exc:
            await self._send(writer, error_frame("bad-job", str(exc)))
            return
        key = job_key(spec)

        if key in self._terminals:
            # Idempotent replay: no quota charge, no record, no work.
            record = self._terminals[key]
            response = {
                "ok": True,
                "key": key,
                "state": (
                    "done" if record.kind == "job.result" else "failed"
                ),
                "cached": True,
            }
            if wait:
                response["final"] = True
                response["record"] = json.loads(record.to_json())
            await self._send(writer, response)
            return
        if key in self._entries:
            # Idempotent join: the job is already queued or running.
            entry = self._entries[key]
            await self._send(
                writer,
                {
                    "ok": True,
                    "key": key,
                    "state": entry.state,
                    "cached": True,
                },
            )
            if wait:
                await self._stream_job(key, writer, replay=False)
            return

        decision = self.quota.admit(
            tenant, pending=self._pending.get(tenant, 0)
        )
        if not decision.allowed:
            # Observability only: the rejection enters no queue and
            # charges no quota, but it is recorded so post-hoc tooling
            # (``repro log stats``) can count rejections per tenant.
            # The recovery fold and the jobs manifest both ignore it.
            self._append(
                "job.rejected",
                {
                    "key": key,
                    "tenant": tenant,
                    "kind": decision.kind,
                    "reason": decision.reason,
                },
                job_label(job.key, key),
            )
            await self._send(
                writer, error_frame(decision.kind, decision.reason)
            )
            return

        entry = JobEntry(
            key=key, tenant=tenant, priority=priority, job=spec
        )
        self._append(
            "job.submitted",
            {
                "key": key,
                "tenant": tenant,
                "priority": priority,
                "job": spec,
            },
            job_label(job.key, key),
        )
        self._admit_entry(entry)
        async with self._cond:
            self._cond.notify()
        await self._send(
            writer,
            {"ok": True, "key": key, "state": "queued", "cached": False},
        )
        if wait:
            await self._stream_job(key, writer, replay=False)

    async def _op_jobs(
        self, frame: dict[str, Any], writer: asyncio.StreamWriter
    ) -> None:
        assert self._log is not None
        manifest = jobs_manifest(self._log.records)
        for entry_view in manifest["jobs"]:
            live = self._entries.get(entry_view["key"])
            if live is not None:
                # The log says "running" for a recovered-but-requeued
                # job; the live queue is the truth for non-terminal
                # states.
                entry_view["state"] = live.state
        await self._send(writer, {"ok": True, **manifest})

    async def _op_watch(
        self, frame: dict[str, Any], writer: asyncio.StreamWriter
    ) -> None:
        key = frame.get("key")
        if not isinstance(key, str) or not (
            key in self._entries or key in self._terminals
        ):
            await self._send(
                writer,
                error_frame("unknown-key", f"no job with key {key!r}"),
            )
            return
        await self._send(writer, {"ok": True, "key": key})
        await self._stream_job(key, writer, replay=True)

    async def _op_shutdown(
        self, frame: dict[str, Any], writer: asyncio.StreamWriter
    ) -> None:
        await self._send(writer, {"ok": True, "stopping": True})
        self._signal_stop()

    async def _stream_job(
        self, key: str, writer: asyncio.StreamWriter, replay: bool
    ) -> None:
        """Stream the job's records to ``writer`` until its terminal.

        With ``replay`` the already-logged records come first, so a
        watcher always sees the full lifecycle; the subscription is
        registered *before* the replay snapshot is taken, so no record
        can fall in the gap (duplicates are filtered by tick).
        """
        assert self._log is not None
        queue: asyncio.Queue = asyncio.Queue()
        self._watchers.setdefault(key, []).append(queue)
        try:
            seen_tick = -1
            if replay:
                for record in list(self._log.records):
                    if (
                        record.kind.startswith("job.")
                        and record.payload.get("key") == key
                    ):
                        seen_tick = record.tick
                        if await self._emit_record(writer, key, record):
                            return
            terminal = self._terminals.get(key)
            if terminal is not None:
                # The job went terminal before we subscribed (or the
                # caller skipped the replay): the recorded terminal is
                # the stream's final frame.
                if terminal.tick > seen_tick:
                    await self._emit_record(writer, key, terminal)
                return
            while True:
                record = await queue.get()
                if record.tick <= seen_tick:
                    continue
                if await self._emit_record(writer, key, record):
                    return
        finally:
            self._watchers[key].remove(queue)
            if not self._watchers[key]:
                del self._watchers[key]

    async def _emit_record(
        self, writer: asyncio.StreamWriter, key: str, record: Record
    ) -> bool:
        """Send one stream frame; ``True`` when it was the terminal."""
        final = record.kind in TERMINAL_KINDS
        await self._send(
            writer,
            {
                "ok": True,
                "key": key,
                "record": json.loads(record.to_json()),
                "final": final,
            },
        )
        return final
