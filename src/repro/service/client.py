"""The blocking service client ``repro submit``/``jobs``/``watch`` use.

One request per connection: the client connects to the server's unix
socket, writes a single request frame and reads the response — one
frame for ``ping``/``jobs``/``shutdown`` and plain ``submit``, a frame
*stream* ending at ``"final": true`` for ``submit --wait`` and
``watch``.

Failure discipline mirrors the CLI's exit codes:

* the socket is missing or nothing is listening → ``OSError``
  propagates (an environment failure; the CLI maps it to exit 2);
* the server answered ``"ok": false`` → :class:`ServiceError` carrying
  the structured kind and message (a domain failure; exit 1).
"""

from __future__ import annotations

import socket
from typing import Any, Iterator

from repro.errors import ReproError
from repro.service.protocol import (
    ProtocolError,
    decode_frame,
    encode_frame,
)


class ServiceError(ReproError):
    """The server rejected a request (quota, rate, bad job, …)."""

    def __init__(self, kind: str, message: str) -> None:
        super().__init__(message)
        self.kind = kind


def _raise_if_error(frame: dict[str, Any]) -> dict[str, Any]:
    if not frame.get("ok", False):
        error = frame.get("error", {})
        raise ServiceError(
            kind=str(error.get("kind", "unknown")),
            message=str(error.get("message", "request rejected")),
        )
    return frame


class ServiceClient:
    """A blocking client bound to one server socket path."""

    def __init__(self, socket_path: str, timeout: float | None = None):
        self.socket_path = socket_path
        self.timeout = timeout

    def _connect(self) -> "socket.socket":
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        if self.timeout is not None:
            sock.settimeout(self.timeout)
        sock.connect(self.socket_path)
        return sock

    def request(self, frame: dict[str, Any]) -> dict[str, Any]:
        """One request, one response frame (raises on ``ok: false``)."""
        with self._connect() as sock:
            sock.sendall(encode_frame(frame))
            with sock.makefile("rb") as stream:
                line = stream.readline()
        if not line:
            raise ProtocolError(
                f"server at {self.socket_path} closed the connection "
                f"without a response"
            )
        return _raise_if_error(decode_frame(line))

    def stream(
        self, frame: dict[str, Any]
    ) -> Iterator[dict[str, Any]]:
        """One request, a frame stream; yields every response frame.

        The first yielded frame is the acknowledgement; subsequent
        frames carry job records; iteration ends after the frame marked
        ``"final": true`` (or on server close).
        """
        with self._connect() as sock:
            sock.sendall(encode_frame(frame))
            with sock.makefile("rb") as response:
                for line in response:
                    parsed = _raise_if_error(decode_frame(line))
                    yield parsed
                    if parsed.get("final", False):
                        return

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------

    def ping(self) -> dict[str, Any]:
        """Server identity and queue depths."""
        return self.request({"op": "ping"})

    def status(self) -> dict[str, Any]:
        """The live status fold: queue depth by priority, per-tenant
        pending/quota/token-bucket occupancy, worker-pool utilization
        and per-job progress (what ``repro status`` prints)."""
        return self.request({"op": "status"})

    def submit(
        self,
        job: dict[str, Any],
        tenant: str = "default",
        priority: int = 0,
    ) -> dict[str, Any]:
        """Enqueue one encoded job; returns the acceptance frame."""
        return self.request(
            {
                "op": "submit",
                "tenant": tenant,
                "priority": priority,
                "job": job,
            }
        )

    def submit_wait(
        self,
        job: dict[str, Any],
        tenant: str = "default",
        priority: int = 0,
    ) -> Iterator[dict[str, Any]]:
        """Enqueue and stream until the job's terminal record."""
        return self.stream(
            {
                "op": "submit",
                "tenant": tenant,
                "priority": priority,
                "job": job,
                "wait": True,
            }
        )

    def jobs(self) -> dict[str, Any]:
        """The live job manifest (``repro.jobs/v1`` shape)."""
        return self.request({"op": "jobs"})

    def watch(self, key: str) -> Iterator[dict[str, Any]]:
        """Replay-then-follow one job's records until its terminal."""
        return self.stream({"op": "watch", "key": key})

    def shutdown(self) -> dict[str, Any]:
        """Ask the server to finish in-flight jobs and exit."""
        return self.request({"op": "shutdown"})
