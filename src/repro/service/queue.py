"""The service's priority queue and its world-log recovery function.

:class:`JobQueue` is a pure, synchronous data structure — no locks, no
sockets, no log.  The server owns exactly one and touches it only from
the event-loop thread; tests drive it directly.  Ordering is a binary
heap on ``(-priority, seq)``: higher ``priority`` first, and within one
priority strictly first-come-first-served by acceptance sequence.

:func:`recover_jobs` is the crash-resume half: it folds a resumed world
log's ``job.*`` records back into queue entries and recorded results.
The fold mirrors :func:`repro.worldlog.views.jobs_manifest` exactly —
the manifest is the operator's *view* of the same transition function
the server *executes*:

* ``job.submitted`` with no later record → the job is still queued;
* ``job.start`` with no terminal record → the job died mid-run and is
  **re-queued** (its next attempt appends a fresh ``job.start``; the
  one-terminal-record invariant is untouched because no terminal was
  ever written);
* ``job.result`` / ``job.error`` → terminal; the payload becomes the
  recorded result a re-submission of the same key is answered from.

>>> queue = JobQueue()
>>> queue.push(JobEntry(key="aa", tenant="t", priority=0, job={}))
>>> queue.push(JobEntry(key="bb", tenant="t", priority=5, job={}))
>>> queue.push(JobEntry(key="cc", tenant="t", priority=0, job={}))
>>> [queue.pop().key for _ in range(3)]
['bb', 'aa', 'cc']
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.worldlog.record import Record


@dataclass
class JobEntry:
    """One accepted job: the queue's (and the log's) unit of work.

    Attributes:
        key: the idempotent job key (:func:`repro.service.protocol
            .job_key` of the encoded spec).
        tenant: who submitted it (quota accounting unit).
        priority: bigger runs sooner; ties break by acceptance order.
        job: the encoded job spec, exactly the ``job.submitted``
            payload's ``job`` field.
        state: one of :data:`repro.service.protocol.JOB_STATES`.
        seq: acceptance sequence number (assigned by :meth:`JobQueue
            .push`; survives recovery because record order is acceptance
            order).
    """

    key: str
    tenant: str
    priority: int
    job: dict[str, Any]
    state: str = "queued"
    seq: int = field(default=-1)


class JobQueue:
    """A priority queue of :class:`JobEntry` — highest priority first.

    >>> queue = JobQueue()
    >>> queue.push(JobEntry(key="aa", tenant="t", priority=1, job={}))
    >>> len(queue)
    1
    >>> queue.pop().state
    'running'
    >>> queue.pop() is None
    True
    """

    def __init__(self) -> None:
        self._heap: list[tuple[int, int, JobEntry]] = []
        self._seq = itertools.count()

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, entry: JobEntry) -> None:
        """Accept one entry; stamps its ``seq`` and queues it."""
        entry.seq = next(self._seq)
        entry.state = "queued"
        heapq.heappush(self._heap, (-entry.priority, entry.seq, entry))

    def pop(self) -> JobEntry | None:
        """The next entry to run (marked ``running``), or ``None``."""
        if not self._heap:
            return None
        _, _, entry = heapq.heappop(self._heap)
        entry.state = "running"
        return entry

    def depth_by_priority(self) -> dict[int, int]:
        """Queued-entry counts keyed by priority, highest first.

        A read-only status fold over the live heap; the JSON encoder
        stringifies the integer keys on the wire.

        >>> queue = JobQueue()
        >>> for priority in (0, 5, 0):
        ...     queue.push(JobEntry(key=f"k{priority}", tenant="t",
        ...                         priority=priority, job={}))
        >>> queue.depth_by_priority()
        {5: 1, 0: 2}
        """
        depths: dict[int, int] = {}
        for negated, _, _ in self._heap:
            depths[-negated] = depths.get(-negated, 0) + 1
        return dict(
            sorted(depths.items(), key=lambda item: -item[0])
        )


def recover_jobs(
    records: Iterable[Record],
) -> tuple[list[JobEntry], dict[str, Record]]:
    """Fold a resumed log's ``job.*`` records into queue state.

    Returns ``(pending, terminals)``: the entries to re-queue in
    acceptance order (both never-started and died-mid-run jobs), and
    the terminal record per completed key — the recorded results that
    make re-submission free and restarts idempotent.
    """
    entries: dict[str, JobEntry] = {}
    terminals: dict[str, Record] = {}
    for record in records:
        if record.kind == "job.submitted":
            payload = record.payload
            entries[payload["key"]] = JobEntry(
                key=payload["key"],
                tenant=payload["tenant"],
                priority=payload["priority"],
                job=payload["job"],
            )
        elif record.kind in ("job.result", "job.error"):
            key = record.payload["key"]
            terminals[key] = record
            entries.pop(key, None)
    return list(entries.values()), terminals
