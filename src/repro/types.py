"""Shared type aliases and small helpers used across the library.

The paper's model (§2 and Appendix A.1) works with a static system
``Pi = {p_1, ..., p_n}`` of deterministic state machines advancing in
synchronous rounds.  Processes are identified here by integers ``0..n-1``
(the paper uses 1-based indices; zero-based is idiomatic Python and the
translation is mechanical).  Rounds are 1-based as in the paper.
"""

from __future__ import annotations

from typing import Hashable

ProcessId = int
"""Identifier of a process, in ``range(n)``."""

Round = int
"""A synchronous round number, starting at 1 as in the paper."""

Bit = int
"""A binary value, 0 or 1 (weak consensus operates on bits)."""

Payload = Hashable
"""Message payloads must be hashable so messages compare by value."""

FIRST_ROUND: Round = 1
"""Computation starts in round 1 (Appendix A.1)."""


def validate_system_size(n: int, t: int) -> None:
    """Check the basic system constraints ``n >= 1`` and ``0 <= t < n``.

    Raises:
        ValueError: if the pair ``(n, t)`` is not a legal system size.
    """
    if n < 1:
        raise ValueError(f"need at least one process, got n={n}")
    if not 0 <= t < n:
        raise ValueError(f"need 0 <= t < n, got n={n}, t={t}")


def validate_process_id(pid: ProcessId, n: int) -> None:
    """Check that ``pid`` identifies a process in a system of ``n`` processes."""
    if not 0 <= pid < n:
        raise ValueError(f"process id {pid} outside range(0, {n})")


def validate_round(round_: Round) -> None:
    """Check that ``round_`` is a legal (1-based) round number."""
    if round_ < FIRST_ROUND:
        raise ValueError(f"rounds start at {FIRST_ROUND}, got {round_}")
