"""Interactive consistency from n parallel Byzantine broadcasts (§6, [88]).

The classical composition the related-work section recalls: run one
Byzantine broadcast per process (each broadcasting its own proposal) and
decide the vector of the ``n`` outputs.  IC-Validity follows from Sender
Validity instance-wise; Agreement and Termination are instance-wise too.

This library's authenticated IC
(:func:`repro.protocols.interactive_consistency.authenticated_ic_spec`)
*is* this construction, built over Dolev–Strong; the functions here exist
to name the reduction explicitly and to expose the per-instance accounting
used by the E7 benchmark (message complexity of IC ≈ n × that of one
broadcast, under multiplexing exactly that of the busiest round pattern).
"""

from __future__ import annotations

from repro.protocols.base import ProtocolSpec
from repro.protocols.dolev_strong import dolev_strong_spec
from repro.protocols.interactive_consistency import authenticated_ic_spec
from repro.sim.execution import Execution


def ic_from_broadcasts(
    n: int, t: int, *, seed: bytes | str = b"repro-ic"
) -> ProtocolSpec:
    """IC as the parallel composition of ``n`` Dolev–Strong broadcasts."""
    return authenticated_ic_spec(n, t, seed=seed).renamed(
        "ic-from-n-broadcasts"
    )


def single_broadcast_baseline(
    n: int, t: int, sender: int = 0, *, seed: bytes | str = b"repro-ic"
) -> ProtocolSpec:
    """One constituent broadcast, for per-instance cost comparison."""
    return dolev_strong_spec(n, t, sender=sender, seed=seed)


def amortization_ratio(
    ic_execution: Execution, bb_execution: Execution
) -> float:
    """Messages of composed IC per constituent broadcast.

    Multiplexing ``n`` broadcasts over shared physical messages means the
    composed protocol can use *fewer* than ``n ×`` the single-instance
    count — the amortization theme of [88, 97] in miniature.
    """
    single = bb_execution.message_complexity()
    if single == 0:
        return float("inf")
    return ic_execution.message_complexity() / single
