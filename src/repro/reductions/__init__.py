"""The paper's reductions as protocol combinators.

* :mod:`repro.reductions.weak_from_any` — Algorithm 1: weak consensus from
  any solvable non-trivial agreement problem at zero message cost (the
  engine of Theorem 3).
* :mod:`repro.reductions.any_from_ic` — Algorithm 2: any containment-
  condition problem from interactive consistency (sufficiency of CC,
  Lemma 9).
* :mod:`repro.reductions.ic_from_bb` — IC from n parallel broadcasts
  (classical, §6).
"""

from repro.reductions.any_from_ic import GammaOverIC, solve_via_ic
from repro.reductions.bb_from_consensus import (
    NO_SENDER_VALUE,
    BroadcastViaConsensus,
    broadcast_from_consensus,
)
from repro.reductions.ic_from_bb import (
    amortization_ratio,
    ic_from_broadcasts,
    single_broadcast_baseline,
)
from repro.reductions.weak_from_any import (
    ReductionPlan,
    WeakConsensusViaReduction,
    derive_plan,
    plan_from_executions,
    reduce_weak_consensus,
    reduce_weak_consensus_from_executions,
    reduction_spec,
)

__all__ = [
    "BroadcastViaConsensus",
    "GammaOverIC",
    "NO_SENDER_VALUE",
    "ReductionPlan",
    "broadcast_from_consensus",
    "WeakConsensusViaReduction",
    "amortization_ratio",
    "derive_plan",
    "ic_from_broadcasts",
    "plan_from_executions",
    "reduce_weak_consensus",
    "reduce_weak_consensus_from_executions",
    "reduction_spec",
    "single_broadcast_baseline",
    "solve_via_ic",
]
