"""Byzantine broadcast from strong consensus (§6; [17, 82]).

The classical composition the related-work section recalls: broadcast
reduces to consensus with only ``O(n)`` additional messages.  Round 1:
the designated sender sends its value to everyone; from round 2 on, all
processes run strong consensus on what they received (a public default
stands in for a silent sender).

* *Termination / Agreement* — from the underlying consensus.
* *Sender Validity* — a correct sender delivers the same value to every
  process, so all correct consensus inputs coincide and Strong Validity
  forces that value.

The additional cost is exactly the sender's ``n - 1`` round-1 messages —
measured in the tests, mirroring the paper's "O(n) additional" remark.
Resilience is inherited from the consensus (``n > 3t`` for the King
algorithm used by default), in contrast to Dolev–Strong's any-``t < n``
— the gap authentication buys (§5.1).
"""

from __future__ import annotations

from typing import Callable, Mapping

from repro.protocols.base import ProtocolSpec
from repro.sim.process import Process, ProcessFactory
from repro.types import Payload, ProcessId, Round

NO_SENDER_VALUE = "BB-NO-SENDER-VALUE"
"""Public default consensus input when the sender stays silent."""


class BroadcastViaConsensus(Process):
    """Round 1: sender distributes; rounds 2+: consensus, shifted by one."""

    def __init__(
        self,
        pid: ProcessId,
        n: int,
        t: int,
        proposal: Payload,
        sender: ProcessId,
        consensus_factory: ProcessFactory,
    ) -> None:
        super().__init__(pid, n, t, proposal)
        self.sender = sender
        self._consensus_factory = consensus_factory
        self._inner: Process | None = None

    def outgoing(self, round_: Round) -> dict[ProcessId, Payload]:
        if round_ == 1:
            if self.pid != self.sender:
                return {}
            return {
                other: ("bb-value", self.proposal)
                for other in range(self.n)
                if other != self.pid
            }
        assert self._inner is not None
        return self._inner.outgoing(round_ - 1)

    def deliver(
        self, round_: Round, received: Mapping[ProcessId, Payload]
    ) -> None:
        if round_ == 1:
            self._inner = self._consensus_factory(
                self.pid, self._sender_value(received)
            )
            return
        assert self._inner is not None
        self._inner.deliver(round_ - 1, received)
        if self._inner.decision is not None and self.decision is None:
            self.decide(self._inner.decision)

    def _sender_value(
        self, received: Mapping[ProcessId, Payload]
    ) -> Payload:
        if self.pid == self.sender:
            return self.proposal
        payload = received.get(self.sender)
        if (
            isinstance(payload, tuple)
            and len(payload) == 2
            and payload[0] == "bb-value"
        ):
            return payload[1]
        return NO_SENDER_VALUE


def broadcast_from_consensus(
    consensus_builder: Callable[[int, int], ProtocolSpec],
    n: int,
    t: int,
    sender: ProcessId = 0,
) -> ProtocolSpec:
    """Compose Byzantine broadcast from a strong-consensus builder.

    Args:
        consensus_builder: e.g.
            :func:`repro.protocols.phase_king.phase_king_spec` or an
            authenticated consensus builder; its resilience carries over.
    """
    consensus = consensus_builder(n, t)

    def factory(pid: ProcessId, proposal: Payload) -> BroadcastViaConsensus:
        return BroadcastViaConsensus(
            pid,
            n,
            t,
            proposal,
            sender=sender,
            consensus_factory=consensus.factory,
        )

    return ProtocolSpec(
        name=f"bb-from({consensus.name}, sender={sender})",
        n=n,
        t=t,
        rounds=consensus.rounds + 1,
        factory=factory,
        authenticated=consensus.authenticated,
    )
