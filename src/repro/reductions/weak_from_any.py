"""Algorithm 1: weak consensus from any non-trivial problem (§4.2).

The zero-message reduction behind the general lower bound (Theorem 3).
Fix an algorithm 𝒜 solving a non-trivial problem P.  Pick:

* ``c_0 ∈ I_n`` — any all-correct input configuration; let ``v_0'`` be the
  value 𝒜 decides in the fault-free execution ``E_0`` with proposals
  ``c_0`` (fault-free executions are determined by the proposals, since
  machines are deterministic);
* ``c_1* ∈ I`` with ``v_0' ∉ val(c_1*)`` — exists because P is
  non-trivial; and ``c_1 ∈ I_n`` containing ``c_1*``; Lemma 7 forces the
  fault-free decision ``v_1'`` under ``c_1`` to differ from ``v_0'``
  (Lemma 17).

Then weak consensus is: propose ``c_0[i]`` to 𝒜 on input 0 and ``c_1[i]``
on input 1; decide 0 iff 𝒜 decided ``v_0'``.  Not a single extra message.

Two entry points:

* :func:`reduce_weak_consensus` — derives ``(c_0, c_1, v_0')`` from the
  problem's validity property by enumeration (the paper's existence
  argument made constructive).
* :func:`reduce_weak_consensus_from_executions` — the §4.3 / Corollary 1
  form: the caller supplies two all-correct proposal vectors whose
  fault-free decisions differ (External Validity cannot be expressed in
  the formalism, but any algorithm with two differing fully-correct
  executions is still subject to the bound).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import TrivialProblemError, UnsolvableProblemError
from repro.protocols.base import DelegatingProcess, ProtocolSpec
from repro.validity.input_config import InputConfig
from repro.validity.property import AgreementProblem
from repro.types import Bit, Payload, ProcessId


@dataclass(frozen=True)
class ReductionPlan:
    """The constants Algorithm 1 is instantiated with (Table 2).

    Attributes:
        proposals_for_zero: the full configuration ``c_0`` as a vector.
        proposals_for_one: the full configuration ``c_1`` as a vector.
        v0: the fault-free decision under ``c_0`` (``v_0'``).
        v1: the fault-free decision under ``c_1`` (``v_1' ≠ v_0'``).
    """

    proposals_for_zero: tuple[Payload, ...]
    proposals_for_one: tuple[Payload, ...]
    v0: Payload
    v1: Payload


class WeakConsensusViaReduction(DelegatingProcess):
    """The per-process combinator of Algorithm 1."""

    def __init__(
        self,
        inner,
        outer_proposal: Bit,
        v0: Payload,
    ) -> None:
        super().__init__(inner, outer_proposal)
        self._v0 = v0

    def translate_decision(self, inner_decision: Payload) -> Bit:
        return 0 if inner_decision == self._v0 else 1


def plan_from_executions(
    spec: ProtocolSpec,
    proposals_zero: Sequence[Payload],
    proposals_one: Sequence[Payload],
) -> ReductionPlan:
    """Build a plan from two all-correct runs with differing decisions.

    Runs the two fault-free executions, reads off their decisions, and
    checks they differ (the Corollary-1 hypothesis).

    Raises:
        UnsolvableProblemError: if either run fails to decide unanimously
            within the horizon, or the two decisions coincide (then this
            algorithm cannot anchor the reduction).
    """
    v0 = _fault_free_decision(spec, proposals_zero)
    v1 = _fault_free_decision(spec, proposals_one)
    if v0 == v1:
        raise UnsolvableProblemError(
            "the two fully-correct executions decide the same value "
            f"({v0!r}); the reduction needs them to differ"
        )
    return ReductionPlan(
        proposals_for_zero=tuple(proposals_zero),
        proposals_for_one=tuple(proposals_one),
        v0=v0,
        v1=v1,
    )


def _fault_free_decision(
    spec: ProtocolSpec, proposals: Sequence[Payload]
) -> Payload:
    execution = spec.run(list(proposals))
    decisions = set(execution.decisions().values())
    if None in decisions:
        raise UnsolvableProblemError(
            f"{spec.name}: some process undecided in a fault-free run "
            f"(Termination violated within {spec.rounds} rounds)"
        )
    if len(decisions) != 1:
        raise UnsolvableProblemError(
            f"{spec.name}: fault-free run disagrees: {decisions}"
        )
    return next(iter(decisions))


def derive_plan(
    spec: ProtocolSpec, problem: AgreementProblem
) -> ReductionPlan:
    """Derive (c_0, c_1, v_0', v_1') from the validity property (Table 2).

    ``c_0`` is the all-first-value configuration.  ``c_1*`` is found by
    scanning ``I`` for a configuration where ``v_0'`` is inadmissible
    under the Lemma-7 intersection; ``c_1`` extends it to ``I_n`` with the
    first input value on the missing processes (containment is preserved
    because extension never changes existing pairs).

    Raises:
        TrivialProblemError: if no such ``c_1*`` exists — then ``v_0'`` is
            always admissible and the problem is trivial, where the
            reduction (and the lower bound) rightly does not apply.
    """
    if (spec.n, spec.t) != (problem.n, problem.t):
        raise ValueError(
            f"spec is for (n={spec.n}, t={spec.t}) but problem for "
            f"(n={problem.n}, t={problem.t})"
        )
    base_value = problem.input_values[0]
    proposals_zero = tuple([base_value] * problem.n)
    v0 = _fault_free_decision(spec, proposals_zero)
    c1_star = _find_excluding_config(problem, v0)
    if c1_star is None:
        raise TrivialProblemError(
            f"{problem.name}: {v0!r} is admissible under every input "
            "configuration — the problem is trivial in that direction "
            "and the reduction does not apply"
        )
    filled = c1_star.as_mapping()
    for pid in range(problem.n):
        filled.setdefault(pid, base_value)
    proposals_one = tuple(
        filled[pid] for pid in range(problem.n)
    )
    v1 = _fault_free_decision(spec, proposals_one)
    if v1 == v0:
        raise UnsolvableProblemError(
            f"{spec.name} decided {v0!r} under {proposals_one!r}, which "
            f"Lemma 7 forbids — the algorithm does not solve "
            f"{problem.name}"
        )
    return ReductionPlan(
        proposals_for_zero=proposals_zero,
        proposals_for_one=proposals_one,
        v0=v0,
        v1=v1,
    )


def _find_excluding_config(
    problem: AgreementProblem, value: Payload
) -> InputConfig | None:
    """Some ``c*`` with ``value ∉ val(c*)`` — or ``None`` (trivial axis).

    Scanning plain admissibility suffices: if ``value ∈ val(c)`` for all
    ``c``, the problem is trivial in the ``value`` direction.
    """
    for config in problem.input_configs():
        if value not in problem.admissible(config):
            return config
    return None


def reduction_spec(
    spec: ProtocolSpec, plan: ReductionPlan
) -> ProtocolSpec:
    """Algorithm 1 as a :class:`ProtocolSpec` solving weak consensus.

    The returned spec has the *same* horizon and — by construction — the
    same message complexity as ``spec``: the combinator only relabels
    proposals and decisions.
    """

    def factory(pid: ProcessId, outer_proposal: Payload) -> WeakConsensusViaReduction:
        if outer_proposal == 0:
            inner_proposal = plan.proposals_for_zero[pid]
        else:
            inner_proposal = plan.proposals_for_one[pid]
        inner = spec.factory(pid, inner_proposal)
        return WeakConsensusViaReduction(
            inner, outer_proposal, v0=plan.v0
        )

    return ProtocolSpec(
        name=f"weak-consensus-via({spec.name})",
        n=spec.n,
        t=spec.t,
        rounds=spec.rounds,
        factory=factory,
        authenticated=spec.authenticated,
    )


def reduce_weak_consensus(
    spec: ProtocolSpec, problem: AgreementProblem
) -> ProtocolSpec:
    """Weak consensus from an algorithm solving a non-trivial problem."""
    return reduction_spec(spec, derive_plan(spec, problem))


def reduce_weak_consensus_from_executions(
    spec: ProtocolSpec,
    proposals_zero: Sequence[Payload],
    proposals_one: Sequence[Payload],
) -> ProtocolSpec:
    """Weak consensus anchored on two differing fully-correct executions.

    The Corollary-1 route for problems (like External Validity) outside
    the §4.1 formalism.
    """
    return reduction_spec(
        spec, plan_from_executions(spec, proposals_zero, proposals_one)
    )
