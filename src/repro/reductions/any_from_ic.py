"""Algorithm 2: any CC problem from interactive consistency (Lemma 9).

The sufficiency half of the general solvability theorem, made executable:
given a problem P satisfying the containment condition, run IC on the raw
proposals and decide ``Γ(vec)`` on the agreed vector.

* Termination / Agreement — inherited from IC.
* Validity — IC-Validity gives ``vec ⊇ c`` (the real input configuration),
  and Definition 3 then puts ``Γ(vec)`` inside ``val(c)``.

One engineering detail the paper's idealized IC elides: concrete IC
implementations mark provably-faulty slots with values outside ``V_I``
(Dolev–Strong's ``SENDER_FAULTY``) or may carry Byzantine garbage in
faulty slots.  Since ``Γ`` is tabulated over ``I`` (vectors over ``V_I``),
such slots are *sanitized* to a fixed default input value first.  This is
sound: sanitizing never touches correct processes' slots, so the sanitized
vector still contains ``c``.
"""

from __future__ import annotations

from repro.errors import UnsolvableProblemError
from repro.protocols.base import DelegatingProcess, ProtocolSpec
from repro.protocols.interactive_consistency import ic_spec
from repro.solvability.cc import GammaFunction, containment_condition
from repro.validity.input_config import InputConfig
from repro.validity.property import AgreementProblem
from repro.types import Payload, ProcessId


class GammaOverIC(DelegatingProcess):
    """The per-process combinator of Algorithm 2."""

    def __init__(
        self,
        inner,
        proposal: Payload,
        problem: AgreementProblem,
        gamma: GammaFunction,
        sanitize_to: Payload,
    ) -> None:
        super().__init__(inner, proposal)
        self._problem = problem
        self._gamma = gamma
        self._sanitize_to = sanitize_to

    def translate_decision(self, inner_decision: Payload) -> Payload:
        vector = self._sanitized(inner_decision)
        config = InputConfig.full(
            self._problem.n, self._problem.t, vector
        )
        return self._gamma(config)

    def _sanitized(self, inner_decision: Payload) -> list[Payload]:
        allowed = set(self._problem.input_values)
        if not isinstance(inner_decision, tuple) or len(
            inner_decision
        ) != self._problem.n:
            # IC's Agreement makes this common to all correct processes,
            # so even a degenerate inner decision cannot split them.
            return [self._sanitize_to] * self._problem.n
        return [
            value if value in allowed else self._sanitize_to
            for value in inner_decision
        ]


def solve_via_ic(
    problem: AgreementProblem,
    *,
    authenticated: bool,
    seed: bytes | str = b"repro-alg2",
) -> ProtocolSpec:
    """Build a protocol solving ``problem`` via IC + Γ (Lemma 9).

    Args:
        problem: a (finite-domain) agreement problem.
        authenticated: which Theorem-4 branch to realize; the
            unauthenticated branch requires ``n > 3t``.

    Raises:
        UnsolvableProblemError: if the containment condition fails, or the
            unauthenticated branch is requested with ``n <= 3t`` (the
            problem may still be trivial — solve those with a constant).
    """
    report = containment_condition(problem)
    gamma = report.gamma_fn()  # raises UnsolvableProblemError on CC failure
    if not authenticated and problem.n <= 3 * problem.t:
        raise UnsolvableProblemError(
            f"{problem.name}: unauthenticated solvability requires "
            f"n > 3t (Theorem 4); got n={problem.n}, t={problem.t}"
        )
    default_input = problem.input_values[0]
    inner_spec = ic_spec(
        problem.n,
        problem.t,
        authenticated=authenticated,
        default=default_input,
        seed=seed,
    )

    def factory(pid: ProcessId, proposal: Payload) -> GammaOverIC:
        return GammaOverIC(
            inner_spec.factory(pid, proposal),
            proposal,
            problem=problem,
            gamma=gamma,
            sanitize_to=default_input,
        )

    return ProtocolSpec(
        name=f"{problem.name}-via-ic"
        + ("-auth" if authenticated else "-unauth"),
        n=problem.n,
        t=problem.t,
        rounds=inner_spec.rounds,
        factory=factory,
        authenticated=authenticated,
    )
