"""The sweep scheduler: fan attack matrices out over worker processes.

The lower-bound sweep (every cheater × every ``(n, t)`` cell) is
embarrassingly parallel: cells share no state — each worker rebuilds its
spec from the registry by name, simulates with its own
:class:`~repro.lowerbound.driver.ExecutionCache`, and ships back a
picklable :class:`~repro.parallel.jobs.JobResult`.  Determinism of the
machines makes the fan-out safe: a cell's witnesses and verdicts do not
depend on which process runs it or when, so the parallel sweep is
bit-identical to the serial one (enforced by the cross-backend
equivalence tests).

:class:`SweepScheduler` owns the two backends:

* **serial** (``jobs=1``, the default) — runs cells in submission order
  in-process, exactly the historical sweep loop;
* **process** (``jobs>1``) — a
  :class:`concurrent.futures.ProcessPoolExecutor` fan-out.  Results are
  *gathered in deterministic cell order* regardless of completion order,
  per-cell failures (worker exceptions, timeouts, even a broken pool)
  are captured as structured :class:`CellError` records without aborting
  the other cells, and per-worker cache counters are merged into one
  aggregate via ``ExecutionCache.merge_stats``.

The gathered :class:`SweepReport` carries per-cell wall times, merged
cache accounting (hits / alias hits / misses), aggregate engine round
counters and any per-cell errors — the sweep-level analogue of
:class:`~repro.lowerbound.driver.AttackOutcome`'s engine counters.
"""

from __future__ import annotations

import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Any, Iterable, Sequence

from repro.lowerbound.driver import ExecutionCache
from repro.obs.progress import (
    HeartbeatMonitor,
    SweepProgress,
    default_progress_stream,
)
from repro.parallel.jobs import (
    CacheStats,
    JobResult,
    SweepJob,
    execute_job,
)

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.obs.ledger import RunLedger
    from repro.obs.telemetry import TelemetryBus
    from repro.parallel.profiling import AttackProfile
    from repro.worldlog.store import WorldLog

SERIAL = "serial"
PROCESS = "process"


@dataclass(frozen=True)
class CellError:
    """A structured per-cell failure record.

    Attributes:
        kind: ``"exception"`` (the job raised), ``"timeout"`` (the cell
            exceeded the scheduler's per-cell budget),
            ``"broken-pool"`` (the worker process died and the
            in-process retry also failed) or ``"certificate"`` (the
            cell's shipped attack certificate failed the gather step's
            independent verification).
        message: the one-line failure description.
        detail: the formatted traceback (empty for timeouts).
    """

    kind: str
    message: str
    detail: str = ""


@dataclass(frozen=True)
class SweepCell:
    """One gathered cell: its identity plus a result or an error.

    Exactly one of ``result`` / ``error`` is set.  ``index`` is the
    cell's position in the submitted job sequence — the deterministic
    gather order.
    """

    index: int
    key: tuple[str, str, int, int]
    result: JobResult | None = None
    error: CellError | None = None
    wall_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        """Whether the cell produced a result."""
        return self.result is not None

    @property
    def value(self) -> Any:
        """The cell's payload (raises on errored cells)."""
        if self.result is None:
            assert self.error is not None
            raise RuntimeError(
                f"cell {self.key} failed ({self.error.kind}): "
                f"{self.error.message}"
            )
        return self.result.value


@dataclass(frozen=True)
class SweepReport:
    """The gathered outcome of one scheduled sweep.

    Attributes:
        backend: ``"serial"`` or ``"process"``.
        jobs: the worker count the sweep ran with.
        cells: every cell in deterministic submission order.
        wall_seconds: the sweep's end-to-end wall time.
        cache: merged per-worker execution-cache counters.
        rounds_simulated: engine rounds actually simulated, summed.
        rounds_baseline: reuse-free baseline rounds, summed.
        certificates_verified: how many shipped cell certificates the
            gather step's independent verifier accepted (cells whose
            certificate is rejected surface as ``"certificate"`` errors,
            never as results).
        profile: the associative
            :meth:`~repro.parallel.profiling.AttackProfile.merge` of
            every profiled cell's profile, in cell order (``None`` when
            no cell carried one).  Wall-clock data — excluded from
            outcome equality like every per-cell profile.
    """

    backend: str
    jobs: int
    cells: tuple[SweepCell, ...]
    wall_seconds: float
    cache: CacheStats = field(default_factory=CacheStats)
    rounds_simulated: int = 0
    rounds_baseline: int = 0
    certificates_verified: int = 0
    profile: "AttackProfile | None" = field(default=None, compare=False)

    @property
    def ok(self) -> bool:
        """Whether every cell produced a result."""
        return all(cell.ok for cell in self.cells)

    def values(self) -> list[Any]:
        """Payloads of the successful cells, in cell order."""
        return [cell.result.value for cell in self.cells if cell.ok]

    def errors(self) -> list[SweepCell]:
        """The errored cells, in cell order."""
        return [cell for cell in self.cells if not cell.ok]

    def cell_seconds(self) -> dict[tuple[str, str, int, int], float]:
        """Per-cell wall seconds keyed by cell identity."""
        return {cell.key: cell.wall_seconds for cell in self.cells}

    def raise_errors(self) -> None:
        """Raise a summary :class:`RuntimeError` if any cell failed."""
        errored = self.errors()
        if errored:
            summary = "; ".join(
                f"{cell.key} [{cell.error.kind}] {cell.error.message}"
                for cell in errored
                if cell.error is not None
            )
            raise RuntimeError(
                f"{len(errored)}/{len(self.cells)} sweep cells failed: "
                f"{summary}"
            )

    def render(self) -> str:
        """A per-cell timing/accounting table plus the aggregate line."""
        from repro.analysis.tables import render_table

        rows = []
        for cell in self.cells:
            kind, builder, n, t = cell.key
            if cell.ok:
                assert cell.result is not None
                status = "ok"
                stats = cell.result.cache or CacheStats()
                detail = (
                    f"{stats.hits}/{stats.alias_hits}/{stats.misses}"
                    if cell.result.cache is not None
                    else "-"
                )
            else:
                assert cell.error is not None
                status = f"ERROR:{cell.error.kind}"
                detail = "-"
            rows.append(
                (
                    kind,
                    builder,
                    n,
                    t,
                    f"{cell.wall_seconds * 1e3:.1f}",
                    detail,
                    status,
                )
            )
        table = render_table(
            ("kind", "builder", "n", "t", "wall ms",
             "hits/alias/miss", "status"),
            rows,
        )
        summary = (
            f"backend={self.backend} jobs={self.jobs} "
            f"wall={self.wall_seconds * 1e3:.1f} ms; cache "
            f"{self.cache.hits} hits, {self.cache.alias_hits} alias "
            f"hits, {self.cache.misses} misses; simulated "
            f"{self.rounds_simulated} rounds vs {self.rounds_baseline} "
            f"baseline"
        )
        if self.certificates_verified:
            summary += (
                f"; {self.certificates_verified} certificate(s) verified"
            )
        return f"{table}\n{summary}"

    def to_payload(self) -> dict[str, Any]:
        """A JSON-serializable summary (for ``benchmarks/reports/``)."""
        return {
            "backend": self.backend,
            "jobs": self.jobs,
            "wall_seconds": self.wall_seconds,
            "cache": {
                "hits": self.cache.hits,
                "alias_hits": self.cache.alias_hits,
                "misses": self.cache.misses,
            },
            "rounds_simulated": self.rounds_simulated,
            "rounds_baseline": self.rounds_baseline,
            "certificates_verified": self.certificates_verified,
            "cells": [
                {
                    "kind": cell.key[0],
                    "builder": cell.key[1],
                    "n": cell.key[2],
                    "t": cell.key[3],
                    "wall_seconds": cell.wall_seconds,
                    "ok": cell.ok,
                    "error": (
                        None
                        if cell.error is None
                        else {
                            "kind": cell.error.kind,
                            "message": cell.error.message,
                        }
                    ),
                }
                for cell in self.cells
            ],
        }


def _error_from(exc: BaseException, kind: str = "exception") -> CellError:
    return CellError(
        kind=kind,
        message=f"{type(exc).__name__}: {exc}",
        detail="".join(
            traceback.format_exception(type(exc), exc, exc.__traceback__)
        ),
    )


@dataclass
class SweepScheduler:
    """Shards a job matrix across workers and gathers deterministically.

    Attributes:
        jobs: worker count; ``1`` selects the in-process serial backend
            (bit-identical to the historical sweep loop), ``> 1`` the
            process-pool backend.
        timeout: optional per-cell wall-clock budget in seconds (process
            backend only); an overrunning cell is recorded as a
            ``"timeout"`` :class:`CellError` and the sweep moves on.
        ledger: optional sweep :class:`~repro.obs.ledger.RunLedger`.
            When set, every job is resubmitted with ``ledger=True`` so
            the workers trace themselves, and the gather step splices
            the shipped per-cell segments into this ledger *in cell
            submission order* — followed by per-cell wall/status events
            and certificate-verdict artifacts emitted by the gather
            itself.  Both backends run the same job code path, so the
            spliced event order (``kind``/``name``/``cell_id``) is
            backend-independent.
        progress: when true, a heartbeat thread keeps a live status
            line (cells done/total, elapsed, ETA, stall flag) on the
            progress stream while the sweep runs.  The line goes to
            **stderr** (or the injected stream) only — stdout stays
            machine-readable under ``--jobs N``.
        heartbeat_interval: seconds between heartbeat ticks when
            ``progress`` is enabled; nonpositive disables the thread
            (cell lifecycle events still reach the ledger).
        stall_after: quiet period (seconds without a completion) after
            which the status line flags the sweep as stalled.
        progress_stream: status-line destination; defaults to stderr.
            Injectable so tests capture the line without a tty.
        worldlog: optional :class:`~repro.worldlog.store.WorldLog` the
            sweep records itself into.  A fresh log receives one
            ``sweep.plan`` record (the full job matrix) up front, one
            terminal ``cell.result`` / ``cell.error`` record per cell
            *as it completes* (write-through: each record is on disk
            before the next cell is consumed), and a ``gather.start``
            marker before the ledger splice.  A **resumed** log
            (:meth:`WorldLog.resume`) makes the scheduler skip every
            cell whose terminal record is already present — the
            recorded job result is replayed through the normal gather
            path (certificate re-verification included), so the final
            report, certificates and spliced event order are
            bit-identical to an uninterrupted run.  The plan recorded
            in a resumed log must match the submitted matrix.
        telemetry: optional :class:`~repro.obs.telemetry.TelemetryBus`
            sampled from the main thread as cells complete.  The
            sweep's progress tracker is attached to it, so snapshots
            carry live done/total/ETA accounting.  Snapshots are
            observability-only records: resume, the differ and every
            derived view ignore them.

    Whether or not ``progress`` is on, a carried ledger receives three
    deterministic lifecycle events per cell — ``cell.start``, a
    ``cell.heartbeat`` counter (value = ticks observed; wall-clock
    telemetry, like ``cell.wall_seconds``) and ``cell.done`` — emitted
    at gather time in submission order, so the spliced event *order*
    stays backend-independent even though heartbeat counts differ run
    to run.
    """

    jobs: int = 1
    timeout: float | None = None
    ledger: "RunLedger | None" = None
    progress: bool = False
    heartbeat_interval: float = 1.0
    stall_after: float = 30.0
    progress_stream: Any = None
    worldlog: "WorldLog | None" = None
    telemetry: "TelemetryBus | None" = None

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ValueError(f"need at least one worker, got {self.jobs}")

    @property
    def backend(self) -> str:
        """The backend this scheduler will use."""
        return SERIAL if self.jobs == 1 else PROCESS

    def run(self, jobs: Iterable[SweepJob]) -> SweepReport:
        """Execute every job and gather a :class:`SweepReport`.

        Cells appear in the report in submission order regardless of
        completion order; failures are per-cell, never sweep-aborting.
        """
        from repro.obs.ledger import cell_label

        job_list = list(jobs)
        if self.ledger is not None:
            job_list = [
                replace(job, ledger=True) for job in job_list
            ]
        recorded = self._plan_and_recall(job_list)
        tracker = SweepProgress(
            total=len(job_list),
            stream=self._stream() if self.progress else None,
            stall_after=self.stall_after,
            label=f"sweep[{self.backend}]",
        )
        if self.telemetry is not None:
            self.telemetry.attach_progress(tracker)
        interval = self.heartbeat_interval if self.progress else 0.0
        labels = [cell_label(job.key) for job in job_list]
        begin = time.perf_counter()
        with HeartbeatMonitor(tracker, interval=interval):
            if self.backend == SERIAL:
                cells = self._run_serial(
                    job_list, tracker, labels, recorded
                )
            else:
                cells = self._run_process(
                    job_list, tracker, labels, recorded
                )
        if self.progress:
            tracker.close()
        wall = time.perf_counter() - begin
        return self._gather(cells, wall, tracker)

    def _stream(self) -> Any:
        return (
            self.progress_stream
            if self.progress_stream is not None
            else default_progress_stream()
        )

    def _run_serial(
        self,
        job_list: Sequence[SweepJob],
        tracker: SweepProgress,
        labels: Sequence[str],
        recorded: dict[int, SweepCell],
    ) -> list[SweepCell]:
        cells: list[SweepCell] = []
        for index, job in enumerate(job_list):
            tracker.start(labels[index])
            if index in recorded:
                cells.append(recorded[index])
                tracker.note_done(labels[index])
                continue
            begin = time.perf_counter()
            try:
                result = execute_job(job)
            except Exception as exc:  # structured, not sweep-fatal
                cells.append(
                    SweepCell(
                        index=index,
                        key=job.key,
                        error=_error_from(exc),
                        wall_seconds=time.perf_counter() - begin,
                    )
                )
            else:
                cells.append(
                    SweepCell(
                        index=index,
                        key=job.key,
                        result=result,
                        wall_seconds=result.wall_seconds,
                    )
                )
            self._record_cell(cells[-1])
            tracker.note_done(labels[index])
        return cells

    def _run_process(
        self,
        job_list: Sequence[SweepJob],
        tracker: SweepProgress,
        labels: Sequence[str],
        recorded: dict[int, SweepCell],
    ) -> list[SweepCell]:
        cells: list[SweepCell] = []
        with ProcessPoolExecutor(max_workers=self.jobs) as pool:
            futures: dict[int, Any] = {}
            for index, (label, job) in enumerate(
                zip(labels, job_list)
            ):
                tracker.start(label)
                if index in recorded:
                    # Terminal record already on disk: nothing to
                    # submit; the gather loop replays the record.
                    tracker.note_done(label)
                    continue
                future = pool.submit(execute_job, job)
                # Completion callbacks run on executor threads; the
                # tracker is lock-protected for exactly this.
                future.add_done_callback(
                    lambda _f, label=label: tracker.note_done(label)
                )
                futures[index] = future
            for index, job in enumerate(job_list):
                if index in recorded:
                    cells.append(recorded[index])
                    continue
                future = futures[index]
                begin = time.perf_counter()
                try:
                    result = future.result(timeout=self.timeout)
                except FutureTimeoutError:
                    future.cancel()
                    cells.append(
                        SweepCell(
                            index=index,
                            key=job.key,
                            error=CellError(
                                kind="timeout",
                                message=(
                                    f"cell exceeded the {self.timeout}s "
                                    "per-cell budget"
                                ),
                            ),
                            wall_seconds=time.perf_counter() - begin,
                        )
                    )
                except Exception as exc:
                    cells.append(self._recover(index, job, exc))
                else:
                    cells.append(
                        SweepCell(
                            index=index,
                            key=job.key,
                            result=result,
                            wall_seconds=result.wall_seconds,
                        )
                    )
                self._record_cell(cells[-1])
        return cells

    def _plan_and_recall(
        self, job_list: Sequence[SweepJob]
    ) -> dict[int, SweepCell]:
        """Record (or verify) the sweep plan; recall terminal records.

        On a fresh world log, appends the ``sweep.plan`` record.  On a
        resumed log, verifies the recorded plan matches the submitted
        matrix and rebuilds a :class:`SweepCell` per cell whose
        terminal ``cell.result`` / ``cell.error`` record survived —
        those cells are skipped by the run loops and replayed through
        the normal gather path.
        """
        if self.worldlog is None:
            return {}
        from repro.worldlog.codec import encode_job
        from repro.worldlog.resume import (
            check_plan,
            completed_results,
            has_plan,
            recorded_errors,
        )

        records = self.worldlog.records
        if has_plan(records):
            check_plan(records, list(job_list))
        else:
            self.worldlog.append(
                "sweep.plan",
                {"jobs": [encode_job(job) for job in job_list]},
            )
        recalled: dict[int, SweepCell] = {}
        for index, result in completed_results(records).items():
            if 0 <= index < len(job_list):
                recalled[index] = SweepCell(
                    index=index,
                    key=job_list[index].key,
                    result=result,
                    wall_seconds=result.wall_seconds,
                )
        for index, (error, wall) in recorded_errors(records).items():
            if 0 <= index < len(job_list):
                recalled[index] = SweepCell(
                    index=index,
                    key=job_list[index].key,
                    error=error,
                    wall_seconds=wall,
                )
        return recalled

    def _record_cell(self, cell: SweepCell) -> None:
        """Append a cell's terminal record, write-through, as it lands."""
        if self.worldlog is None:
            return
        from repro.obs.ledger import cell_label
        from repro.worldlog.codec import encode_job_result

        label = cell_label(cell.key)
        if cell.result is not None:
            self.worldlog.append(
                "cell.result",
                {
                    "index": cell.index,
                    "result": encode_job_result(cell.result),
                },
                cell_id=label,
            )
        else:
            assert cell.error is not None
            self.worldlog.append(
                "cell.error",
                {
                    "index": cell.index,
                    "key": list(cell.key),
                    "error_kind": cell.error.kind,
                    "message": cell.error.message,
                    "detail": cell.error.detail,
                    "wall_seconds": cell.wall_seconds,
                },
                cell_id=label,
            )
        if self.telemetry is not None:
            # Pump from the cell-consume loop: the main thread owns the
            # world log, so the heartbeat thread never appends.
            self.telemetry.maybe_sample()

    def _recover(
        self, index: int, job: SweepJob, exc: BaseException
    ) -> SweepCell:
        """Handle a failed future; retry in-process if the pool died.

        A worker that raised an ordinary exception is a per-cell failure.
        A *dead worker process* (``BrokenProcessPool``) poisons every
        pending future in the pool, so the affected cell is retried
        in-process — the other cells must not pay for one crash.
        """
        from concurrent.futures.process import BrokenProcessPool

        if not isinstance(exc, BrokenProcessPool):
            return SweepCell(
                index=index, key=job.key, error=_error_from(exc)
            )
        begin = time.perf_counter()
        try:
            result = execute_job(job)
        except Exception as retry_exc:
            return SweepCell(
                index=index,
                key=job.key,
                error=_error_from(retry_exc, kind="broken-pool"),
                wall_seconds=time.perf_counter() - begin,
            )
        return SweepCell(
            index=index,
            key=job.key,
            result=result,
            wall_seconds=result.wall_seconds,
        )

    def _gather(
        self,
        cells: Sequence[SweepCell],
        wall: float,
        tracker: SweepProgress,
    ) -> SweepReport:
        """Merge per-worker counters into the aggregate report.

        Uses ``ExecutionCache.merge_stats`` so the sweep-level cache
        accounting goes through the same counters-only contract the
        per-driver caches use (entries and checkpointers never cross
        process boundaries).  Cells that shipped an attack certificate
        are re-verified here — by the standalone
        :func:`repro.certify.verifier.verify_certificate`, against the
        exact bytes that crossed the process boundary — and a rejected
        certificate turns its cell into a ``"certificate"`` error: the
        sweep never reports an outcome whose evidence does not check.

        When the scheduler carries a sweep ledger, each cell's shipped
        event segment is spliced here (cell order), followed by the
        gather's own per-cell events; per-cell profiles fold into one
        aggregate via ``AttackProfile.merge``.
        """
        cells = [self._verify_cell(cell) for cell in cells]
        if self.worldlog is not None:
            # Marks the gather boundary: the derived ledger view keeps
            # only ledger events after the *last* gather.start, so a
            # crash mid-gather followed by a resume cannot duplicate
            # spliced events.
            self.worldlog.append("gather.start", {"cells": len(cells)})
        self._splice_ledger(cells, tracker)
        merged = ExecutionCache()
        rounds_simulated = 0
        rounds_baseline = 0
        certificates_verified = 0
        profile: "AttackProfile | None" = None
        for cell in cells:
            if cell.result is None:
                continue
            if cell.result.cache is not None:
                merged.merge_stats(cell.result.cache)
            rounds_simulated += cell.result.rounds_simulated
            rounds_baseline += cell.result.rounds_baseline
            if cell.result.certificate is not None:
                certificates_verified += 1
            cell_profile = getattr(cell.result.value, "profile", None)
            if cell_profile is not None:
                profile = (
                    cell_profile
                    if profile is None
                    else profile.merge(cell_profile)
                )
        return SweepReport(
            backend=self.backend,
            jobs=self.jobs,
            cells=tuple(cells),
            wall_seconds=wall,
            cache=CacheStats(
                hits=merged.hits,
                alias_hits=merged.alias_hits,
                misses=merged.misses,
            ),
            rounds_simulated=rounds_simulated,
            rounds_baseline=rounds_baseline,
            certificates_verified=certificates_verified,
            profile=profile,
        )

    def _splice_ledger(
        self, cells: Sequence[SweepCell], tracker: SweepProgress
    ) -> None:
        """Fold every cell's telemetry into the sweep ledger, in order.

        For each cell (submission order): a ``cell.start`` marker, then
        the worker's shipped event segment — run ids rewritten to the
        sweep's, worker ids and timestamps preserved — then the
        gather's own view of the cell (heartbeat count, wall-clock
        gauge, error counter or certificate-verdict artifact) closed by
        ``cell.done``.  Lifecycle events are serialized here rather
        than live from the monitor thread so the spliced event *order*
        is identical across backends; only the heartbeat/wall *values*
        are wall-clock telemetry.  Certificate verdicts are emitted
        here, not in the worker, because acceptance is decided by the
        gather step's independent verifier.
        """
        from repro.obs.ledger import cell_label

        if self.ledger is None:
            return
        for cell in cells:
            label = cell_label(cell.key)
            self.ledger.emit(
                "counter", "cell.start", value=1, cell_id=label
            )
            if cell.result is not None and cell.result.events:
                self.ledger.splice(cell.result.events)
            self.ledger.emit(
                "counter",
                "cell.heartbeat",
                value=tracker.heartbeats.get(label, 0),
                cell_id=label,
            )
            self.ledger.emit(
                "gauge",
                "cell.wall_seconds",
                value=cell.wall_seconds,
                cell_id=label,
            )
            if cell.error is not None:
                self.ledger.emit(
                    "counter",
                    "cell.error",
                    value=1,
                    cell_id=label,
                    error_kind=cell.error.kind,
                    message=cell.error.message,
                )
            if cell.result is not None and (
                cell.result.certificate is not None
            ):
                self.ledger.emit(
                    "artifact",
                    "certificate",
                    value=f"certificate:{label}",
                    cell_id=label,
                    verdict="ok",
                    size_bytes=len(cell.result.certificate),
                )
            elif cell.error is not None and (
                cell.error.kind == "certificate"
            ):
                self.ledger.emit(
                    "artifact",
                    "certificate",
                    value=f"certificate:{label}",
                    cell_id=label,
                    verdict="rejected",
                )
            self.ledger.emit(
                "counter",
                "cell.done",
                value=1,
                cell_id=label,
                status="ok" if cell.ok else "error",
            )

    @staticmethod
    def _verify_cell(cell: SweepCell) -> SweepCell:
        """Independently verify a cell's shipped certificate, if any."""
        from repro.certify.verifier import verify_certificate

        if cell.result is None or cell.result.certificate is None:
            return cell
        report = verify_certificate(cell.result.certificate)
        if report.ok:
            return cell
        assert report.first is not None
        return SweepCell(
            index=cell.index,
            key=cell.key,
            error=CellError(
                kind="certificate",
                message=(
                    "shipped certificate rejected; first violated "
                    f"condition: {report.first.condition}"
                ),
                detail=report.render(),
            ),
            wall_seconds=cell.wall_seconds,
        )
