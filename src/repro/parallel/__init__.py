"""Parallel sweep execution: multi-core fan-out of attack matrices.

The subsystem has three modules:

* :mod:`repro.parallel.jobs` — picklable job descriptions
  (:class:`AttackJob`, :class:`MeasureJob`) that rebuild protocol specs
  from registry names inside each worker;
* :mod:`repro.parallel.scheduler` — :class:`SweepScheduler`, which
  shards a job matrix over a process pool (or a bit-identical serial
  fallback), gathers results in deterministic cell order and merges
  per-worker cache accounting into a :class:`SweepReport`;
* :mod:`repro.parallel.profiling` — :class:`ProfilingObserver` and
  :class:`PhaseTimer`, the wall-clock hooks whose :class:`AttackProfile`
  summaries ride on attack outcomes and sweep reports.

The scheduler symbols are loaded lazily (PEP 562): the lower-bound
driver imports :mod:`repro.parallel.profiling` at module level, and an
eager scheduler import here would close an import cycle back through
:mod:`repro.lowerbound.driver`.
"""

from __future__ import annotations

from repro.parallel.profiling import (
    AttackProfile,
    PhaseTimer,
    ProfilingObserver,
)

_LAZY = {
    "AttackJob": "repro.parallel.jobs",
    "CacheStats": "repro.parallel.jobs",
    "ClassifyJob": "repro.parallel.jobs",
    "ClassifyVerdict": "repro.parallel.jobs",
    "JobResult": "repro.parallel.jobs",
    "MeasureJob": "repro.parallel.jobs",
    "SweepJob": "repro.parallel.jobs",
    "UnknownBuilderError": "repro.parallel.jobs",
    "execute_job": "repro.parallel.jobs",
    "registered_builders": "repro.parallel.jobs",
    "registered_problems": "repro.parallel.jobs",
    "resolve_builder": "repro.parallel.jobs",
    "resolve_problem": "repro.parallel.jobs",
    "CellError": "repro.parallel.scheduler",
    "SweepCell": "repro.parallel.scheduler",
    "SweepReport": "repro.parallel.scheduler",
    "SweepScheduler": "repro.parallel.scheduler",
}

__all__ = sorted(
    ["AttackProfile", "PhaseTimer", "ProfilingObserver", *_LAZY]
)


def __getattr__(name: str):
    if name in _LAZY:
        import importlib

        module = importlib.import_module(_LAZY[name])
        value = getattr(module, name)
        globals()[name] = value  # cache for subsequent lookups
        return value
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}"
    )


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(__all__))
