"""Lightweight wall-clock profiling for attack pipelines.

Two collaborating pieces:

* :class:`ProfilingObserver` — a
  :class:`~repro.sim.engine.RoundObserver` that records the wall time of
  every simulated round.  One instance is attached to *every* engine run
  a driver launches, so its counters aggregate across the whole pipeline
  (fault-free runs, isolation probes, checkpoint resumes).
* :class:`PhaseTimer` — accumulates named wall-clock spans around the
  driver's pipeline stages (fault-free checks, the isolation scan, merge
  construction, witness verification).  Spans with the same name
  accumulate; differently named spans may overlap (a merge performed
  inside the isolation scan is charged to both), so the phase totals are
  attributions, not a partition of the wall time.

Both are summarized into an immutable :class:`AttackProfile`, surfaced on
:class:`~repro.lowerbound.driver.AttackOutcome` (when profiling was
requested) and aggregated into the
:class:`~repro.parallel.scheduler.SweepReport` of a sweep.

Timing uses :func:`time.perf_counter`; the overhead per round is two
clock reads, far below the cost of a simulated round, so profiled runs
remain representative.  Profiles are wall-clock data and therefore *not*
part of outcome equality: two runs of the same attack produce equal
witnesses and verdicts but different profiles.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

from repro.sim.engine import RoundEvent, RoundObserver


@dataclass(frozen=True)
class AttackProfile:
    """Wall-clock summary of one attack pipeline run.

    Attributes:
        wall_seconds: total wall time of the pipeline.
        phase_seconds: accumulated seconds per named driver phase, in
            first-seen order.
        rounds_timed: number of engine rounds individually timed.
        round_seconds_total: summed wall time of all timed rounds.
        round_seconds_max: the slowest single round.
    """

    wall_seconds: float
    phase_seconds: tuple[tuple[str, float], ...] = ()
    rounds_timed: int = 0
    round_seconds_total: float = 0.0
    round_seconds_max: float = 0.0

    @property
    def round_seconds_mean(self) -> float:
        """Mean wall time of a simulated round (0.0 if none timed)."""
        if not self.rounds_timed:
            return 0.0
        return self.round_seconds_total / self.rounds_timed

    def phase(self, name: str) -> float:
        """Accumulated seconds attributed to ``name`` (0.0 if absent)."""
        for phase_name, seconds in self.phase_seconds:
            if phase_name == name:
                return seconds
        return 0.0

    def merge(self, other: "AttackProfile") -> "AttackProfile":
        """The associative fold of two profiles.

        Wall time, phase attributions, timed-round counts and round
        totals sum; the slowest-round maxima take the max.  Phases keep
        first-seen order across operands, so folding a sweep's per-cell
        profiles in cell order yields a deterministic aggregate whatever
        the grouping — ``a.merge(b).merge(c) == a.merge(b.merge(c))``
        field for field.  The zero profile
        (``AttackProfile(wall_seconds=0.0)``) is the identity.
        """
        totals: dict[str, float] = {}
        order: list[str] = []
        for name, seconds in (*self.phase_seconds, *other.phase_seconds):
            if name not in totals:
                totals[name] = 0.0
                order.append(name)
            totals[name] += seconds
        return AttackProfile(
            wall_seconds=self.wall_seconds + other.wall_seconds,
            phase_seconds=tuple(
                (name, totals[name]) for name in order
            ),
            rounds_timed=self.rounds_timed + other.rounds_timed,
            round_seconds_total=(
                self.round_seconds_total + other.round_seconds_total
            ),
            round_seconds_max=max(
                self.round_seconds_max, other.round_seconds_max
            ),
        )

    def render(self) -> str:
        """A short, human-readable timing block."""
        lines = [f"wall time: {self.wall_seconds * 1e3:.2f} ms"]
        for name, seconds in self.phase_seconds:
            lines.append(f"  {name}: {seconds * 1e3:.2f} ms")
        if self.rounds_timed:
            lines.append(
                f"  rounds timed: {self.rounds_timed} "
                f"(total {self.round_seconds_total * 1e3:.2f} ms, "
                f"mean {self.round_seconds_mean * 1e6:.1f} us, "
                f"max {self.round_seconds_max * 1e6:.1f} us)"
            )
        return "\n".join(lines)


class ProfilingObserver(RoundObserver):
    """Per-round wall-time accounting, aggregated across engine runs.

    The observer marks the clock at run start and after every dispatched
    round; the delta is that round's wall time (including the other
    observers' ``on_round`` work dispatched *before* this observer —
    attach it last to charge rounds their full observation cost, first to
    charge simulation only).  Counters accumulate across runs so one
    instance can follow a whole driver pipeline.
    """

    def __init__(self) -> None:
        self.rounds_timed = 0
        self.total_seconds = 0.0
        self.max_seconds = 0.0
        self._mark: float | None = None

    def on_run_start(self, config, machines, adversary) -> None:
        self._mark = time.perf_counter()

    def on_round(self, event: RoundEvent) -> None:
        now = time.perf_counter()
        if self._mark is not None:
            elapsed = now - self._mark
            self.rounds_timed += 1
            self.total_seconds += elapsed
            if elapsed > self.max_seconds:
                self.max_seconds = elapsed
        self._mark = now

    def on_run_end(self, final_states, corrupted) -> None:
        self._mark = None


@dataclass
class PhaseTimer:
    """Accumulates named wall-clock spans around pipeline stages.

    Use as::

        timer = PhaseTimer()
        with timer.phase("isolation-scan"):
            ...

    Same-named spans accumulate.  ``profile()`` assembles the immutable
    :class:`AttackProfile`, folding in a :class:`ProfilingObserver`'s
    per-round counters when one was attached.
    """

    _started: float = field(default_factory=time.perf_counter)
    _totals: dict = field(default_factory=dict)
    _order: list = field(default_factory=list)

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time one span attributed to ``name`` (exception-safe)."""
        begin = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - begin
            if name not in self._totals:
                self._totals[name] = 0.0
                self._order.append(name)
            self._totals[name] += elapsed

    def profile(
        self, observer: ProfilingObserver | None = None
    ) -> AttackProfile:
        """The profile accumulated since this timer's construction."""
        wall = time.perf_counter() - self._started
        phases = tuple(
            (name, self._totals[name]) for name in self._order
        )
        if observer is None:
            return AttackProfile(wall_seconds=wall, phase_seconds=phases)
        return AttackProfile(
            wall_seconds=wall,
            phase_seconds=phases,
            rounds_timed=observer.rounds_timed,
            round_seconds_total=observer.total_seconds,
            round_seconds_max=observer.max_seconds,
        )
