"""Picklable sweep jobs and the builder-name registry they resolve.

A sweep cell is one ``(builder, n, t)`` configuration of an attack or
measurement.  Because :class:`~repro.protocols.base.ProtocolSpec` values
carry arbitrary process factories (closures — not picklable), jobs never
ship specs across process boundaries: a job carries only the *name* of a
registered spec builder plus the parameters, and each worker rebuilds the
spec locally via :func:`resolve_builder`.  Machines are deterministic, so
a worker-rebuilt spec produces bit-identical executions, witnesses and
verdicts to a locally built one — the cross-backend equivalence the
scheduler's tests enforce.

Job types:

* :class:`AttackJob` — run the full Lemma 2–5 lower-bound pipeline
  (:func:`~repro.lowerbound.driver.attack_weak_consensus`) on one cell;
  returns the :class:`~repro.lowerbound.driver.AttackOutcome` plus the
  worker's :class:`CacheStats`.
* :class:`MeasureJob` — run the E1/E7 message-complexity measurement
  (:func:`~repro.analysis.complexity.measure_point`) on one cell;
  returns a :class:`~repro.analysis.complexity.SweepPoint`.
* :class:`ClassifyJob` — run the Theorem-4 solvability classification
  (:func:`~repro.solvability.theorem.classify`) on one standard
  problem at ``(n, t)``; returns a compact, picklable
  :class:`ClassifyVerdict`.

Everything a job returns is wrapped in a :class:`JobResult` so the
scheduler can account wall time, cache counters and engine round counts
uniformly across job kinds.

With ``ledger=True`` a job additionally traces itself into a private
:class:`~repro.obs.ledger.RunLedger` and ships the resulting event
segment home as picklable tuples (``JobResult.events``); the scheduler
splices the segments into one ordered sweep ledger at gather.  Both
backends run this exact code path, so the spliced event *order* — the
``(kind, name, cell_id)`` sequence — is identical however many workers
ran the sweep.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Any, Callable

from repro.errors import ReproError

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.obs.ledger import LedgerEvent


class UnknownBuilderError(ReproError):
    """A job named a spec builder the registry does not know."""


@dataclass(frozen=True)
class CacheStats:
    """Counters-only view of an :class:`ExecutionCache` — picklable.

    The cache's entries and checkpointers hold live machine snapshots and
    full execution traces; only these counters are shipped back from
    workers (see ``ExecutionCache.merge_stats``).
    """

    hits: int = 0
    alias_hits: int = 0
    misses: int = 0

    def merged(self, other: "CacheStats") -> "CacheStats":
        """The element-wise sum of two counter sets."""
        return CacheStats(
            hits=self.hits + other.hits,
            alias_hits=self.alias_hits + other.alias_hits,
            misses=self.misses + other.misses,
        )


def _correct_builders() -> dict[str, Callable[[int, int], Any]]:
    """The non-cheater builders every sweep layer shares."""
    from repro.protocols.dolev_strong import dolev_strong_spec
    from repro.protocols.interactive_consistency import (
        authenticated_ic_spec,
    )
    from repro.protocols.phase_king import phase_king_spec
    from repro.protocols.weak_consensus import (
        broadcast_weak_consensus_spec,
        naive_flooding_spec,
    )

    return {
        "correct": lambda n, t: broadcast_weak_consensus_spec(n, t),
        "weak-consensus": lambda n, t: broadcast_weak_consensus_spec(
            n, t
        ),
        "naive-flooding": lambda n, t: naive_flooding_spec(n, t),
        "dolev-strong": lambda n, t: dolev_strong_spec(n, t),
        "phase-king": lambda n, t: phase_king_spec(n, t),
        "ic": lambda n, t: authenticated_ic_spec(n, t),
    }


def resolve_builder(name: str) -> Callable[[int, int], Any]:
    """Resolve a registered builder name to its ``(n, t) -> spec`` callable.

    The registry is the union of the cheater registry
    (:data:`repro.experiments.CHEATERS`) and the correct-protocol
    builders shared with the CLI.  Imported lazily to keep this module —
    which :mod:`repro.experiments` itself imports — cycle-free.

    Raises:
        UnknownBuilderError: for unregistered names (in a worker this
            surfaces as a structured per-cell error, not a sweep abort).
    """
    from repro.experiments import CHEATERS

    if name in CHEATERS:
        return CHEATERS[name]
    correct = _correct_builders()
    if name in correct:
        return correct[name]
    known = sorted(set(CHEATERS) | set(correct))
    raise UnknownBuilderError(
        f"unknown spec builder {name!r}; registered: {', '.join(known)}"
    )


def registered_builders() -> list[str]:
    """All resolvable builder names (cheaters plus correct protocols)."""
    from repro.experiments import CHEATERS

    return sorted(set(CHEATERS) | set(_correct_builders()))


def _problem_builders() -> dict[str, Callable[[int, int], Any]]:
    """The standard agreement problems :class:`ClassifyJob` resolves."""
    from repro.validity.standard import (
        byzantine_broadcast_problem,
        correct_proposal_problem,
        interactive_consistency_problem,
        strong_consensus_problem,
        weak_consensus_problem,
    )

    return {
        "weak": weak_consensus_problem,
        "strong": strong_consensus_problem,
        "broadcast": byzantine_broadcast_problem,
        "ic": interactive_consistency_problem,
        "correct-proposal": correct_proposal_problem,
    }


def resolve_problem(name: str) -> Callable[[int, int], Any]:
    """Resolve a standard problem name to its ``(n, t) -> problem``.

    Raises:
        UnknownBuilderError: for unregistered names, mirroring
            :func:`resolve_builder`.
    """
    problems = _problem_builders()
    if name in problems:
        return problems[name]
    raise UnknownBuilderError(
        f"unknown standard problem {name!r}; registered: "
        f"{', '.join(sorted(problems))}"
    )


def registered_problems() -> list[str]:
    """All resolvable standard problem names."""
    return sorted(_problem_builders())


@dataclass(frozen=True)
class JobResult:
    """What one executed job sends back to the scheduler.

    Attributes:
        key: the job's ``(kind, builder, n, t)`` identity.
        value: the job's payload — an ``AttackOutcome`` or ``SweepPoint``.
        wall_seconds: the job's wall time inside the worker.
        cache: the worker's execution-cache counters (attack jobs only).
        rounds_simulated: engine rounds actually simulated.
        rounds_baseline: rounds a reuse-free pipeline would have run.
        certificate: the cell's attack certificate as canonical UTF-8
            JSON bytes (certifying attack jobs only).  Shipped as bytes
            — not as the live :class:`~repro.certify.format.Certificate`
            — so the scheduler's gather step verifies *exactly* the
            artifact that crossed the process boundary, and so both
            backends return byte-identical evidence.
        events: the cell's run-ledger segment (``ledger=True`` jobs
            only) — a tuple of frozen
            :class:`~repro.obs.ledger.LedgerEvent` records the scheduler
            splices into the sweep ledger in cell order.
    """

    key: tuple[str, str, int, int]
    value: Any
    wall_seconds: float
    cache: CacheStats | None = None
    rounds_simulated: int = 0
    rounds_baseline: int = 0
    certificate: bytes | None = None
    events: "tuple[LedgerEvent, ...] | None" = None


def _cell_tracer(enabled: bool, key: tuple[str, str, int, int]):
    """A ``(tracer, ledger)`` pair for one job cell.

    Disabled jobs get the shared no-op :data:`~repro.obs.tracer
    .NULL_TRACER` and no ledger; enabled jobs get a private
    :class:`~repro.obs.ledger.RunLedger` whose every event carries the
    cell's canonical label.  The scratch run id is rewritten when the
    scheduler splices the segment into the sweep ledger.
    """
    from repro.obs.ledger import RunLedger, cell_label
    from repro.obs.tracer import NULL_TRACER, LedgerTracer

    if not enabled:
        return NULL_TRACER, None
    ledger = RunLedger()
    return LedgerTracer(ledger, cell_id=cell_label(key)), ledger


@dataclass(frozen=True)
class AttackJob:
    """One lower-bound attack cell, rebuildable in any worker process.

    The option fields mirror
    :func:`~repro.lowerbound.driver.attack_weak_consensus` defaults, so a
    default-constructed job is bit-identical to the historical serial
    sweep loop.
    """

    builder: str
    n: int
    t: int
    verify: bool = True
    check: bool = True
    early_stop: bool = True
    reuse: bool = True
    profile: bool = False
    certify: bool = False
    ledger: bool = False

    @property
    def key(self) -> tuple[str, str, int, int]:
        """The cell identity ``("attack", builder, n, t)``."""
        return ("attack", self.builder, self.n, self.t)

    def run(self) -> JobResult:
        """Rebuild the spec and run the full attack pipeline.

        With ``certify`` the worker renders the attack certificate to
        canonical bytes and strips the live object off the outcome —
        the artifact travels once, as ``JobResult.certificate``, and the
        gather step re-verifies it before the sweep reports the cell.

        With ``ledger`` the worker traces the pipeline into a private
        :class:`~repro.obs.ledger.RunLedger` (every event stamped with
        this cell's :func:`~repro.obs.ledger.cell_label`) and ships the
        segment home as ``JobResult.events``.
        """
        from repro.lowerbound.driver import (
            ExecutionCache,
            attack_weak_consensus,
        )

        tracer, cell_ledger = _cell_tracer(self.ledger, self.key)
        spec = resolve_builder(self.builder)(self.n, self.t)
        cache = ExecutionCache()
        begin = time.perf_counter()
        outcome = attack_weak_consensus(
            spec,
            verify=self.verify,
            check=self.check,
            early_stop=self.early_stop,
            reuse=self.reuse,
            cache=cache,
            profile=self.profile,
            certify=self.certify,
            tracer=tracer,
        )
        wall = time.perf_counter() - begin
        certificate_bytes: bytes | None = None
        if outcome.certificate is not None:
            certificate_bytes = outcome.certificate.to_bytes()
            outcome = replace(outcome, certificate=None)
        return JobResult(
            key=self.key,
            value=outcome,
            wall_seconds=wall,
            cache=CacheStats(
                hits=cache.hits,
                alias_hits=cache.alias_hits,
                misses=cache.misses,
            ),
            rounds_simulated=outcome.rounds_simulated,
            rounds_baseline=outcome.rounds_baseline,
            certificate=certificate_bytes,
            events=(
                cell_ledger.segment()
                if cell_ledger is not None
                else None
            ),
        )


@dataclass(frozen=True)
class MeasureJob:
    """One message-complexity measurement cell (the E1/E7 sweep kernel)."""

    builder: str
    n: int
    t: int
    include_mixed: bool = True
    ledger: bool = False

    @property
    def key(self) -> tuple[str, str, int, int]:
        """The cell identity ``("measure", builder, n, t)``."""
        return ("measure", self.builder, self.n, self.t)

    def run(self) -> JobResult:
        """Rebuild the spec and measure its worst message count.

        With ``ledger`` the measurement is wrapped in a ``measure`` span
        and its worst message count and floor ratio land in the cell's
        event segment (``JobResult.events``).
        """
        from repro.analysis.complexity import (
            measure_point,
            mixed_workload,
            uniform_workloads,
        )

        tracer, cell_ledger = _cell_tracer(self.ledger, self.key)
        spec = resolve_builder(self.builder)(self.n, self.t)
        workloads = uniform_workloads(self.n)
        if self.include_mixed:
            workloads.append(mixed_workload(self.n))
        begin = time.perf_counter()
        with tracer.span(
            "measure", builder=self.builder, n=self.n, t=self.t
        ):
            point = measure_point(spec, workloads)
        wall = time.perf_counter() - begin
        tracer.counter("measure.worst_messages", value=point.worst_messages)
        tracer.gauge("measure.vs_floor", value=point.ratio_to_floor)
        return JobResult(
            key=self.key,
            value=point,
            wall_seconds=wall,
            events=(
                cell_ledger.segment()
                if cell_ledger is not None
                else None
            ),
        )


@dataclass(frozen=True)
class ClassifyVerdict:
    """The distilled, picklable outcome of one solvability cell.

    The full :class:`~repro.solvability.theorem.SolvabilityReport`
    carries live property objects; jobs ship only the decided bits, the
    same reduction ``repro classify`` prints.
    """

    problem: str
    n: int
    t: int
    trivial: bool
    cc_holds: bool
    authenticated_solvable: bool
    unauthenticated_solvable: bool

    def render(self) -> str:
        """One verdict line (the ``repro classify`` shape, condensed)."""
        return (
            f"{self.problem} n={self.n} t={self.t} "
            f"trivial={'Y' if self.trivial else 'N'} "
            f"CC={'Y' if self.cc_holds else 'N'} "
            f"auth={'Y' if self.authenticated_solvable else 'N'} "
            f"unauth={'Y' if self.unauthenticated_solvable else 'N'}"
        )


@dataclass(frozen=True)
class ClassifyJob:
    """One Theorem-4 solvability classification cell.

    ``builder`` names a standard problem from
    :func:`registered_problems` — the registry role ``builder`` plays
    for the other job kinds, kept under the same field name so the
    ``(kind, builder, n, t)`` cell identity is uniform across kinds.
    """

    builder: str
    n: int
    t: int
    ledger: bool = False

    @property
    def key(self) -> tuple[str, str, int, int]:
        """The cell identity ``("classify", problem, n, t)``."""
        return ("classify", self.builder, self.n, self.t)

    def run(self) -> JobResult:
        """Rebuild the problem and classify it.

        With ``ledger`` the classification is wrapped in a ``classify``
        span and the decided bits land in the cell's event segment.
        """
        from repro.solvability.theorem import classify

        tracer, cell_ledger = _cell_tracer(self.ledger, self.key)
        problem = resolve_problem(self.builder)(self.n, self.t)
        begin = time.perf_counter()
        with tracer.span(
            "classify", problem=self.builder, n=self.n, t=self.t
        ):
            report = classify(problem)
        wall = time.perf_counter() - begin
        verdict = ClassifyVerdict(
            problem=self.builder,
            n=self.n,
            t=self.t,
            trivial=report.trivial,
            cc_holds=report.cc.holds,
            authenticated_solvable=report.authenticated_solvable,
            unauthenticated_solvable=report.unauthenticated_solvable,
        )
        tracer.counter(
            "classify.solvable",
            value=int(verdict.authenticated_solvable),
        )
        return JobResult(
            key=self.key,
            value=verdict,
            wall_seconds=wall,
            events=(
                cell_ledger.segment()
                if cell_ledger is not None
                else None
            ),
        )


SweepJob = AttackJob | MeasureJob | ClassifyJob
"""The union of job kinds a scheduler (and the job service) accepts."""


def execute_job(job: SweepJob) -> JobResult:
    """Worker entry point: run one job and return its result.

    Module-level (hence picklable) so
    :class:`concurrent.futures.ProcessPoolExecutor` can ship it; also the
    serial backend's kernel, keeping both backends on one code path.
    """
    return job.run()
