"""Quantitative forms of the bounds (§1, §3, §6).

* Lemma 1 / Theorem 2: weak consensus (hence, by Theorem 3, every
  non-trivial agreement problem) needs at least ``t²/32`` messages in the
  worst case, already under omission failures.
* Dolev–Reischuk [51]: Byzantine broadcast needs ``Ω(n + t²)`` messages in
  the authenticated setting and ``Ω(nt)`` unauthenticated.

The helpers here are used by benches to annotate measurements and by the
driver to decide whether an algorithm's observed traffic even *could* be a
correct weak consensus.

>>> weak_consensus_floor(8)
2.0
>>> weak_consensus_floor(32)
32.0
>>> dolev_reischuk_floor(10, 3, authenticated=True)
19.0
>>> dolev_reischuk_floor(10, 3, authenticated=False)
30.0
>>> comparison = BoundComparison(t=16, observed=4)
>>> comparison.floor
8.0
>>> comparison.below_floor
True
>>> comparison.render()
't=16: observed 4 < floor t^2/32 = 8.00 (ratio 0.50)'
"""

from __future__ import annotations

from dataclasses import dataclass


def weak_consensus_floor(t: int) -> float:
    """Lemma 1's explicit constant: ``t² / 32`` messages."""
    return t * t / 32


def dolev_reischuk_floor(n: int, t: int, authenticated: bool) -> float:
    """The [51] floor recalled in §6 (asymptotic; constant set to 1)."""
    if authenticated:
        return float(n + t * t)
    return float(n * t)


@dataclass(frozen=True)
class BoundComparison:
    """An observed message count against the Lemma-1 floor.

    Attributes:
        t: the corruption budget.
        observed: worst message count observed across executions.
        floor: ``t²/32``.
    """

    t: int
    observed: int

    @property
    def floor(self) -> float:
        return weak_consensus_floor(self.t)

    @property
    def below_floor(self) -> bool:
        """Whether the observation is compatible only with an *incorrect*
        weak consensus algorithm (assuming the observation covers the
        algorithm's worst case)."""
        return self.observed < self.floor

    @property
    def ratio(self) -> float:
        """``observed / floor`` — ≥ 1 for bound-respecting algorithms."""
        floor = self.floor
        if floor == 0:
            return float("inf") if self.observed else 1.0
        return self.observed / floor

    def render(self) -> str:
        """One line for reports."""
        relation = "<" if self.below_floor else ">="
        return (
            f"t={self.t}: observed {self.observed} {relation} "
            f"floor t^2/32 = {self.floor:.2f} (ratio {self.ratio:.2f})"
        )
