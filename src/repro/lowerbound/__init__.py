"""Theorem 2 made executable: the Ω(t²) lower-bound attack pipeline.

* :mod:`repro.lowerbound.bound` — the ``t²/32`` floor and comparisons.
* :mod:`repro.lowerbound.partition` — the (A, B, C) partitions (Table 1).
* :mod:`repro.lowerbound.witnesses` — machine-checkable violation
  counterexamples.
* :mod:`repro.lowerbound.driver` — the Lemma 2–5 pipeline that breaks any
  sub-quadratic weak consensus candidate.
"""

from repro.lowerbound.bound import (
    BoundComparison,
    dolev_reischuk_floor,
    weak_consensus_floor,
)
from repro.lowerbound.driver import (
    AttackOutcome,
    LowerBoundDriver,
    attack_weak_consensus,
)
from repro.lowerbound.partition import (
    ABCPartition,
    canonical_partition,
    paper_partition,
)
from repro.lowerbound.witnesses import (
    ViolationKind,
    ViolationWitness,
    is_valid_witness,
    minimize_witness,
    verify_witness,
)

__all__ = [
    "ABCPartition",
    "AttackOutcome",
    "BoundComparison",
    "LowerBoundDriver",
    "ViolationKind",
    "ViolationWitness",
    "attack_weak_consensus",
    "canonical_partition",
    "dolev_reischuk_floor",
    "is_valid_witness",
    "minimize_witness",
    "paper_partition",
    "verify_witness",
    "weak_consensus_floor",
]
