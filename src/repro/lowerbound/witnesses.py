"""Violation witnesses: the lower bound's constructive output.

When the driver breaks a sub-quadratic weak consensus candidate, it does
not merely assert failure — it hands back a :class:`ViolationWitness`: a
concrete execution with at most ``t`` omission faults in which the
candidate demonstrably violates Termination, Agreement or Weak Validity
*among correct processes*.  :func:`verify_witness` re-checks everything
from scratch:

1. the execution satisfies every condition of the formal model (A.1.6);
2. every behavior in it is a genuine run of the candidate's state machine
   under some omission pattern (behavior condition 7, via replay);
3. the claimed property breach holds for the claimed correct processes.

A verified witness is inter-subjective evidence: any third party can
re-run the checks against the candidate's code.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.errors import ModelViolation
from repro.sim.execution import Execution, check_execution, check_transitions
from repro.sim.process import ProcessFactory
from repro.types import Payload, ProcessId


class ViolationKind(Enum):
    """Which weak-consensus property the witness breaks."""

    AGREEMENT = "agreement"
    TERMINATION = "termination"
    WEAK_VALIDITY = "weak-validity"


@dataclass(frozen=True)
class ViolationWitness:
    """A machine-checkable counterexample execution.

    Attributes:
        kind: the violated property.
        execution: the offending execution (≤ t omission faults).
        culprit: the correct process exhibiting the violation (the
            undecided process for Termination; one side for Agreement; the
            wrongly-deciding process for Weak Validity).
        counterpart: for Agreement, the other correct process; otherwise
            ``None``.
        note: a human-readable account of how the witness was built
            (which lemma's construction produced it).
    """

    kind: ViolationKind
    execution: Execution
    culprit: ProcessId
    counterpart: ProcessId | None = None
    note: str = ""

    def summary(self) -> str:
        """One line for reports."""
        decisions = {
            self.culprit: self.execution.decision(self.culprit)
        }
        if self.counterpart is not None:
            decisions[self.counterpart] = self.execution.decision(
                self.counterpart
            )
        return (
            f"{self.kind.value} violation: faulty="
            f"{sorted(self.execution.faulty)} decisions={decisions} "
            f"({self.note})"
        )


def verify_witness(
    witness: ViolationWitness, factory: ProcessFactory
) -> None:
    """Re-derive the witness's claim from scratch (see module docstring).

    Raises:
        ModelViolation: if any check fails — i.e. the witness is bogus.
    """
    execution = witness.execution
    check_execution(execution)
    check_transitions(execution, factory)
    correct = execution.correct
    if witness.culprit not in correct:
        raise ModelViolation(
            f"culprit p{witness.culprit} is not correct in the witness"
        )
    culprit_decision = execution.decision(witness.culprit)
    if witness.kind is ViolationKind.TERMINATION:
        if culprit_decision is not None:
            raise ModelViolation(
                f"claimed non-termination, but p{witness.culprit} "
                f"decided {culprit_decision!r}"
            )
        return
    if witness.kind is ViolationKind.AGREEMENT:
        if witness.counterpart is None:
            raise ModelViolation("agreement witness needs a counterpart")
        if witness.counterpart not in correct:
            raise ModelViolation(
                f"counterpart p{witness.counterpart} is not correct"
            )
        other_decision = execution.decision(witness.counterpart)
        if culprit_decision is None or other_decision is None:
            raise ModelViolation(
                "agreement witness has an undecided party "
                "(use a termination witness instead)"
            )
        if culprit_decision == other_decision:
            raise ModelViolation(
                f"claimed disagreement, but both decided "
                f"{culprit_decision!r}"
            )
        return
    # Weak Validity: all processes correct, unanimous proposal, culprit
    # decided something else.
    if execution.faulty:
        raise ModelViolation(
            "weak-validity witness must be fault-free "
            "(the property binds only then)"
        )
    proposals = set(execution.proposals().values())
    if len(proposals) != 1:
        raise ModelViolation(
            "weak-validity witness must have unanimous proposals, got "
            f"{sorted(map(repr, proposals))}"
        )
    unanimous: Payload = next(iter(proposals))
    if culprit_decision == unanimous:
        raise ModelViolation(
            f"claimed weak-validity violation, but p{witness.culprit} "
            f"decided the unanimous proposal {unanimous!r}"
        )


def is_valid_witness(
    witness: ViolationWitness, factory: ProcessFactory
) -> bool:
    """Predicate form of :func:`verify_witness`."""
    try:
        verify_witness(witness, factory)
    except ModelViolation:
        return False
    return True


def minimize_witness(
    witness: ViolationWitness, factory: ProcessFactory
) -> ViolationWitness:
    """Truncate an agreement/weak-validity witness to its shortest prefix.

    The violation is visible as soon as the involved processes have
    decided; later rounds only pad the counterexample.  Truncates the
    execution to the smallest horizon at which the witness still
    verifies, re-checking from scratch at that length.  Termination
    witnesses are returned unchanged — their whole point is the full
    horizon elapsing without a decision.

    Returns:
        An equivalent witness over a prefix execution (possibly the
        original if no truncation is possible).
    """
    if witness.kind is ViolationKind.TERMINATION:
        return witness
    execution = witness.execution
    involved = [witness.culprit]
    if witness.counterpart is not None:
        involved.append(witness.counterpart)
    decision_rounds = [
        execution.behavior(pid).decision_round for pid in involved
    ]
    if any(round_ is None for round_ in decision_rounds):
        return witness  # defensive; verify_witness would reject anyway
    needed = max(decision_rounds)
    if needed >= execution.rounds:
        return witness
    shortened = ViolationWitness(
        kind=witness.kind,
        execution=execution.prefix(needed),
        culprit=witness.culprit,
        counterpart=witness.counterpart,
        note=witness.note
        + f" (minimized to {needed}/{execution.rounds} rounds)",
    )
    verify_witness(shortened, factory)
    return shortened
