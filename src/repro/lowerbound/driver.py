"""The executable lower-bound argument (Lemmas 2–5, Theorem 2).

Given *any* candidate weak consensus algorithm (as a
:class:`~repro.protocols.base.ProtocolSpec`), the driver walks the paper's
proof as a concrete attack:

1. **Fault-free sanity** — the all-0 and all-1 executions must decide
   their proposals (Weak Validity + Termination); failures are immediate
   witnesses.
2. **Round-1 isolations** — run ``E_b^{G(1)}`` for both bits and both
   groups; in each, all correct processes must agree, and (Lemma 2) a
   majority of the isolated group must decide the correct processes' bit
   — otherwise the swap-omission construction is attempted to extract a
   witness.
3. **Lemma-3 consistency** — the four round-1 executions must share one
   correct-group decision ``d`` (they are pairwise mergeable).  On a
   mismatch, the two executions are *merged* (Algorithm 5) and the
   extraction runs inside the merged execution.
4. **Critical round** (Lemma 4) — with ``f = 1 - d``, scan
   ``E_f^{B(k)}`` for increasing ``k`` until the correct decision flips
   from ``d`` to ``f``; Lemma 2 is re-checked at every step.
5. **The final merge** (Lemma 5, Figure 2) — merge ``E_f^{B(R+1)}`` with
   ``E_f^{C(R)}``; group A's decision necessarily disagrees with the
   replayed majority of B or of C, and the extraction produces the
   witness.

Every produced witness is re-verified from scratch
(:func:`~repro.lowerbound.witnesses.verify_witness`).  If no witness is
found — e.g. because every extraction ran into the ``t/2``
receive-omission budget, which is exactly what ≥ ``t²/32``-message
algorithms buy themselves — the outcome reports the observed message
counts against the Lemma-1 floor.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ModelViolation, ReproError
from repro.lowerbound.bound import BoundComparison
from repro.lowerbound.partition import ABCPartition, canonical_partition
from repro.lowerbound.witnesses import (
    ViolationKind,
    ViolationWitness,
    verify_witness,
)
from repro.omission.isolation import isolate_group
from repro.omission.merge import MergeSpec, merge
from repro.omission.swap import swap_omission_checked
from repro.protocols.base import ProtocolSpec
from repro.sim.execution import Execution, majority_decision
from repro.types import Bit, Payload, ProcessId, Round


@dataclass(frozen=True)
class AttackOutcome:
    """The result of running the lower-bound pipeline on one candidate.

    Attributes:
        protocol: the candidate's name.
        n, t: system parameters.
        partition: the (A, B, C) partition used.
        witness: a verified violation witness, or ``None``.
        bound: observed worst message count vs the ``t²/32`` floor.
        default_bit: the Lemma-3 common decision ``d`` (if reached).
        critical_round: the Lemma-4 round ``R`` (if reached).
        log: the pipeline's step-by-step narrative.
    """

    protocol: str
    n: int
    t: int
    partition: ABCPartition
    witness: ViolationWitness | None
    bound: BoundComparison
    default_bit: Payload | None = None
    critical_round: Round | None = None
    log: tuple[str, ...] = ()

    @property
    def found_violation(self) -> bool:
        """Whether the candidate was broken."""
        return self.witness is not None

    def render(self) -> str:
        """A short report block."""
        lines = [
            f"attack on {self.protocol} (n={self.n}, t={self.t}; "
            f"{self.partition.describe()})",
            f"  {self.bound.render()}",
        ]
        if self.default_bit is not None:
            lines.append(f"  default bit d = {self.default_bit!r}")
        if self.critical_round is not None:
            lines.append(f"  critical round R = {self.critical_round}")
        if self.witness is not None:
            lines.append(f"  VIOLATION: {self.witness.summary()}")
        else:
            lines.append("  no violation found (bound respected)")
        return "\n".join(lines)


class _Found(Exception):
    """Internal: unwinds the pipeline when a witness is in hand."""

    def __init__(self, witness: ViolationWitness) -> None:
        super().__init__(witness.summary())
        self.witness = witness


@dataclass
class LowerBoundDriver:
    """Runs the Lemma 2–5 pipeline against one candidate algorithm.

    Attributes:
        spec: the candidate weak consensus algorithm.
        partition: the (A, B, C) split; defaults to
            :func:`~repro.lowerbound.partition.canonical_partition`.
        verify: re-verify any produced witness from scratch.
    """

    spec: ProtocolSpec
    partition: ABCPartition | None = None
    verify: bool = True
    _log: list[str] = field(default_factory=list, repr=False)
    _max_messages: int = field(default=0, repr=False)
    _cache: dict = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.partition is None:
            self.partition = canonical_partition(self.spec.n, self.spec.t)
        if (self.partition.n, self.partition.t) != (
            self.spec.n,
            self.spec.t,
        ):
            raise ValueError("partition does not match the spec's (n, t)")

    def attack(self) -> AttackOutcome:
        """Run the full pipeline; always returns (never raises _Found)."""
        witness: ViolationWitness | None = None
        default_bit: Payload | None = None
        critical_round: Round | None = None
        try:
            self._fault_free_checks()
            decisions = self._round_one_isolations()
            default_bit = self._lemma3_consistency(decisions)
            if default_bit is not None:
                critical_round = self._critical_round_scan(default_bit)
                if critical_round is not None:
                    self._final_merge(default_bit, critical_round)
            self._note("pipeline exhausted without a violation")
        except _Found as found:
            witness = found.witness
            if self.verify:
                verify_witness(witness, self.spec.factory)
                self._note("witness re-verified from scratch")
        assert self.partition is not None
        return AttackOutcome(
            protocol=self.spec.name,
            n=self.spec.n,
            t=self.spec.t,
            partition=self.partition,
            witness=witness,
            bound=BoundComparison(
                t=self.spec.t, observed=self._max_messages
            ),
            default_bit=default_bit,
            critical_round=critical_round,
            log=tuple(self._log),
        )

    # ------------------------------------------------------------------
    # pipeline stages
    # ------------------------------------------------------------------

    def _fault_free_checks(self) -> None:
        """Stage 1: Weak Validity and Termination in E_0 and E_1."""
        for bit in (0, 1):
            execution = self._run(bit, group=None, from_round=None)
            self._require_unanimous(
                execution, context=f"fault-free all-{bit}"
            )
            for pid in range(self.spec.n):
                decision = execution.decision(pid)
                if decision != bit:
                    self._found(
                        ViolationWitness(
                            kind=ViolationKind.WEAK_VALIDITY,
                            execution=execution,
                            culprit=pid,
                            note=(
                                f"all processes correct and propose {bit} "
                                f"but p{pid} decided {decision!r}"
                            ),
                        )
                    )

    def _round_one_isolations(self) -> dict[tuple[Bit, str], Payload]:
        """Stage 2: the four ``E_b^{G(1)}`` executions plus Lemma-2 checks."""
        decisions: dict[tuple[Bit, str], Payload] = {}
        for bit in (0, 1):
            for label in ("B", "C"):
                execution = self._run(bit, group=label, from_round=1)
                decided = self._require_unanimous(
                    execution, context=f"E_{bit}^{{{label}(1)}}"
                )
                decisions[(bit, label)] = decided
                self._lemma2_check(execution, label, 1, decided)
        return decisions

    def _lemma3_consistency(
        self, decisions: dict[tuple[Bit, str], Payload]
    ) -> Payload | None:
        """Stage 3: the four round-1 decisions must coincide (Lemma 3).

        Returns the common bit ``d`` when consistent; on a mismatch merges
        the offending mergeable pair and attempts extraction inside it,
        returning ``None`` if nothing could be extracted (pipeline over).
        """
        values = set(decisions.values())
        if len(values) == 1:
            d = values.pop()
            self._note(f"Lemma 3 consistent: default bit d = {d!r}")
            return d
        self._note(
            f"Lemma 3 violated across round-1 isolations: {decisions}"
        )
        for bit_b in (0, 1):
            for bit_c in (0, 1):
                d_b = decisions[(bit_b, "B")]
                d_c = decisions[(bit_c, "C")]
                if d_b == d_c:
                    continue
                self._merge_and_extract(
                    exec_b=self._run(bit_b, "B", 1),
                    exec_c=self._run(bit_c, "C", 1),
                    round_b=1,
                    round_c=1,
                    expect_b=d_b,
                    expect_c=d_c,
                )
        self._note("merge extraction inconclusive at round-1 stage")
        return None

    def _critical_round_scan(self, default_bit: Payload) -> Round | None:
        """Stage 4 (Lemma 4): find R with decisions d at B(R), f at B(R+1)."""
        family_bit = 1 - int(default_bit)  # binary weak consensus
        previous = default_bit
        for k in range(2, self.spec.rounds + 3):
            execution = self._run(family_bit, "B", k)
            decided = self._require_unanimous(
                execution, context=f"E_{family_bit}^{{B({k})}}"
            )
            self._lemma2_check(execution, "B", k, decided)
            if decided != previous:
                critical = k - 1
                self._note(
                    f"critical round R = {critical}: decisions "
                    f"{previous!r} at B({critical}) vs {decided!r} at "
                    f"B({critical + 1})"
                )
                return critical
        self._note(
            "no critical round found within the horizon — the decision "
            "never flipped, contradicting Weak Validity bookkeeping"
        )
        return None

    def _final_merge(
        self, default_bit: Payload, critical_round: Round
    ) -> None:
        """Stage 5 (Lemma 5 / Figure 2): merge B(R+1) with C(R)."""
        family_bit = 1 - int(default_bit)
        exec_c = self._run(family_bit, "C", critical_round)
        decided_c = self._require_unanimous(
            execution=exec_c,
            context=f"E_{family_bit}^{{C({critical_round})}}",
        )
        self._lemma2_check(exec_c, "C", critical_round, decided_c)
        if decided_c == default_bit:
            # The paper's main line: B at R+1 decides f, C at R decides d.
            self._merge_and_extract(
                exec_b=self._run(family_bit, "B", critical_round + 1),
                exec_c=exec_c,
                round_b=critical_round + 1,
                round_c=critical_round,
                expect_b=family_bit,
                expect_c=default_bit,
            )
        else:
            # Lemma 3 already fails for the same-round pair (B(R), C(R)).
            self._merge_and_extract(
                exec_b=self._run(family_bit, "B", critical_round),
                exec_c=exec_c,
                round_b=critical_round,
                round_c=critical_round,
                expect_b=default_bit,
                expect_c=decided_c,
            )
        self._note("final merge extraction inconclusive")

    # ------------------------------------------------------------------
    # shared machinery
    # ------------------------------------------------------------------

    def _merge_and_extract(
        self,
        exec_b: Execution,
        exec_c: Execution,
        round_b: Round,
        round_c: Round,
        expect_b: Payload,
        expect_c: Payload,
    ) -> None:
        """Merge two isolated executions and try both extractions.

        ``expect_b``/``expect_c`` are the decisions the replayed groups
        carry over by indistinguishability; group A must disagree with at
        least one of them when the expectations differ.
        """
        assert self.partition is not None
        spec = MergeSpec(
            group_b=self.partition.group_b,
            group_c=self.partition.group_c,
            round_b=round_b,
            round_c=round_c,
        )
        merged = merge(spec, exec_b, exec_c, self.spec.factory)
        self._observe(merged)
        self._note(
            f"merged B({round_b}) with C({round_c}); expecting B->"
            f"{expect_b!r}, C->{expect_c!r}"
        )
        decided = self._require_unanimous(
            merged, context=f"merge(B({round_b}), C({round_c}))"
        )
        if decided != expect_b:
            self._lemma2_extract(merged, "B", round_b, decided)
        if decided != expect_c:
            self._lemma2_extract(merged, "C", round_c, decided)

    def _lemma2_check(
        self,
        execution: Execution,
        group_label: str,
        from_round: Round,
        correct_decision: Payload,
    ) -> None:
        """If the isolated group's majority strays, try the extraction."""
        group = self._group(group_label)
        majority = majority_decision(execution, sorted(group))
        if majority != correct_decision:
            self._note(
                f"Lemma 2 premise violated: majority of {group_label} "
                f"decided {majority!r} vs correct {correct_decision!r}"
            )
            self._lemma2_extract(
                execution, group_label, from_round, correct_decision
            )

    def _lemma2_extract(
        self,
        execution: Execution,
        group_label: str,
        from_round: Round,
        correct_decision: Payload,
    ) -> None:
        """Lemma 2's constructive step: swap omissions to free a deviant.

        Scans the isolated group's members in order of how few messages
        from correct processes they receive-omitted (the paper's
        ``|M_{X→p}| < t/2`` counting argument picks exactly these), and
        for each deviant attempts ``swap_omission``; a successful swap
        yields a valid execution in which the deviant is *correct* yet
        disagrees with (or never decides unlike) a correct witness.
        """
        group = self._group(group_label)
        correct = execution.correct

        def omitted_from_correct(pid: ProcessId) -> int:
            behavior = execution.behavior(pid)
            return sum(
                1
                for message in behavior.all_receive_omitted()
                if message.sender in correct
            )

        candidates = sorted(
            (pid for pid in group
             if execution.decision(pid) != correct_decision),
            key=lambda pid: (omitted_from_correct(pid), pid),
        )
        for pid in candidates:
            try:
                swapped = swap_omission_checked(execution, pid)
            except ModelViolation as error:
                self._note(
                    f"extraction via p{pid} failed: {error} "
                    "(the message-count premise protects the algorithm "
                    "here)"
                )
                continue
            remaining_correct = sorted(
                correct - swapped.execution.faulty
            )
            witnesses = [
                q
                for q in remaining_correct
                if swapped.execution.decision(q) == correct_decision
            ]
            if not witnesses:
                self._note(
                    f"extraction via p{pid}: no correct witness survived "
                    "the swap"
                )
                continue
            counterpart = witnesses[0]
            if swapped.execution.decision(pid) is None:
                self._found(
                    ViolationWitness(
                        kind=ViolationKind.TERMINATION,
                        execution=swapped.execution,
                        culprit=pid,
                        note=(
                            f"swap freed p{pid} (isolated in {group_label} "
                            f"from round {from_round}) which never decides"
                        ),
                    )
                )
            self._found(
                ViolationWitness(
                    kind=ViolationKind.AGREEMENT,
                    execution=swapped.execution,
                    culprit=pid,
                    counterpart=counterpart,
                    note=(
                        f"swap freed p{pid} (isolated in {group_label} "
                        f"from round {from_round}); decides "
                        f"{swapped.execution.decision(pid)!r} vs "
                        f"p{counterpart}'s {correct_decision!r}"
                    ),
                )
            )

    def _require_unanimous(
        self, execution: Execution, context: str
    ) -> Payload:
        """All correct processes decided one value — or a direct witness."""
        undecided = [
            pid
            for pid in sorted(execution.correct)
            if execution.decision(pid) is None
        ]
        if undecided:
            self._found(
                ViolationWitness(
                    kind=ViolationKind.TERMINATION,
                    execution=execution,
                    culprit=undecided[0],
                    note=f"correct p{undecided[0]} undecided in {context}",
                )
            )
        by_value: dict[Payload, ProcessId] = {}
        for pid in sorted(execution.correct):
            by_value.setdefault(execution.decision(pid), pid)
        if len(by_value) > 1:
            values = sorted(by_value, key=repr)
            self._found(
                ViolationWitness(
                    kind=ViolationKind.AGREEMENT,
                    execution=execution,
                    culprit=by_value[values[0]],
                    counterpart=by_value[values[1]],
                    note=f"correct processes split in {context}",
                )
            )
        return next(iter(by_value))

    def _run(
        self,
        bit: Bit,
        group: str | None,
        from_round: Round | None,
    ) -> Execution:
        """Run (and cache) ``E_bit`` or ``E_bit^{G(k)}``."""
        key = (bit, group, from_round)
        if key in self._cache:
            return self._cache[key]
        adversary = None
        if group is not None:
            assert from_round is not None
            adversary = isolate_group(self._group(group), from_round)
        execution = self.spec.run_uniform(bit, adversary)
        self._observe(execution)
        self._cache[key] = execution
        return execution

    def _group(self, label: str) -> frozenset[ProcessId]:
        assert self.partition is not None
        if label == "B":
            return self.partition.group_b
        if label == "C":
            return self.partition.group_c
        raise ReproError(f"unknown group label {label!r}")

    def _observe(self, execution: Execution) -> None:
        self._max_messages = max(
            self._max_messages, execution.message_complexity()
        )

    def _note(self, message: str) -> None:
        self._log.append(message)

    def _found(self, witness: ViolationWitness) -> None:
        self._note(f"violation: {witness.summary()}")
        raise _Found(witness)


def attack_weak_consensus(
    spec: ProtocolSpec,
    partition: ABCPartition | None = None,
    *,
    verify: bool = True,
    minimize: bool = False,
) -> AttackOutcome:
    """Run the full lower-bound pipeline against ``spec``.

    Args:
        partition: the (A, B, C) split (default: canonical sizing).
        verify: re-verify any witness from scratch before returning.
        minimize: additionally truncate the witness execution to its
            shortest still-verifying prefix (agreement witnesses only).
    """
    driver = LowerBoundDriver(
        spec=spec, partition=partition, verify=verify
    )
    outcome = driver.attack()
    if minimize and outcome.witness is not None:
        from dataclasses import replace

        from repro.lowerbound.witnesses import minimize_witness

        outcome = replace(
            outcome,
            witness=minimize_witness(outcome.witness, spec.factory),
        )
    return outcome
